// A full integration-system setup in the style the paper's Section 1.1
// describes (the query-centric / TSIMMIS approach):
//
//   1. the source catalog is loaded from a text description,
//   2. a mediator exports virtual views defined as unions of conjunctions
//      over the sources,
//   3. a user query against a mediator view expands into a connection
//      query and runs through the full planning + execution pipeline,
//   4. alternatively, the universal-relation front door generates the
//      minimal connections directly from attributes (Section 2.2),
//   5. the catalog's hypergraph is emitted as Graphviz (Figure 1 style).

#include <cstdio>

#include "capability/catalog_text.h"
#include "mediator/mediator.h"
#include "planner/hypergraph.h"

namespace {

constexpr const char* kCatalog = R"(
% A small music-integration scenario (Example 2.1's shape).
source v1(Song, Cd) [bf] {
  (t1, c1) (t2, c3)
}
source v2(Song, Cd) [fb] {
  (t1, c4) (t2, c2) (t1, c5)
}
source v3(Cd, Artist, Price) [bff] {
  (c1, a1, "$15") (c3, a3, "$14")
}
source v4(Cd, Artist, Price) [fbf] {
  (c1, a1, "$13") (c2, a1, "$12") (c4, a3, "$10") (c5, a5, "$11")
}
)";

}  // namespace

int main() {
  // 1. Load the catalog.
  auto parsed = limcap::capability::ParseCatalog(kCatalog);
  if (!parsed.ok()) {
    std::fprintf(stderr, "catalog error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu sources:\n%s\n", parsed->catalog.size(),
              parsed->catalog.ToString().c_str());

  limcap::planner::DomainMap domains;
  domains.SetDomain("Song", "song");
  domains.SetDomain("Cd", "cd");
  domains.SetDomain("Artist", "artist");
  domains.SetDomain("Price", "price");

  // 2. Define a mediator view over the sources.
  limcap::mediator::Mediator mediator(&parsed->catalog, domains);
  limcap::mediator::MediatorView cd_info;
  cd_info.name = "cd_info";
  cd_info.exported_attributes = {"Song", "Cd", "Price"};
  cd_info.definitions = {limcap::planner::Connection({"v1", "v3"}),
                         limcap::planner::Connection({"v1", "v4"}),
                         limcap::planner::Connection({"v2", "v3"}),
                         limcap::planner::Connection({"v2", "v4"})};
  if (auto status = mediator.Define(cd_info); !status.ok()) {
    std::fprintf(stderr, "define error: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Query the mediator view.
  auto report = mediator.Answer(
      {"cd_info", {{"Song", limcap::Value::String("t1")}}, {"Cd", "Price"}});
  if (!report.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("cd_info[Song = t1] -> (Cd, Price): %s\n",
              report->exec.answer.ToString().c_str());
  std::printf("source queries: %zu (trace available like Table 2)\n\n",
              report->exec.log.total_queries());

  // 4. Universal-relation front door: same question from attributes
  //    alone — the minimal connections are generated, not hand-written.
  auto views = parsed->catalog.Views();
  auto generated = limcap::planner::BuildQueryFromAttributes(
      views, {{"Song", limcap::Value::String("t1")}}, {"Price"});
  if (generated.ok()) {
    std::printf("generated query: %s\n", generated->ToString().c_str());
    limcap::exec::QueryAnswerer answerer(&parsed->catalog, domains);
    auto answer = answerer.Answer(*generated);
    if (answer.ok()) {
      std::printf("its answer:      %s\n\n",
                  answer->exec.answer.ToString().c_str());
    }
  }

  // 5. The catalog hypergraph (pipe into `dot -Tpng` to render).
  limcap::planner::Hypergraph hypergraph(views);
  std::printf("hypergraph (Graphviz):\n%s", hypergraph.ToDot().c_str());
  return 0;
}
