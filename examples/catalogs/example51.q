% Example 5.1's query.
<{A = a}, {F, G}, {{v1, v2, v3}}>
