% Example 5.2's query.
<{B = b0}, {A, C, E}, {{v1, v2, v3}}>
