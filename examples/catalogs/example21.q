% Example 2.1's query: songs named t1, price, over the four
% two-source connections.
<{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>
