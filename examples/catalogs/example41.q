% Example 4.1's query.
<{A = a0}, {D}, {{v1, v3}, {v2, v3}}>
