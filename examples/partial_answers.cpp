// Section 7.2: partial answers under a source-access budget.
//
// Computing the maximal obtainable answer can take many source queries —
// the iteration keeps widening the domains. When a user only wants *some*
// answers, the evaluator can stop after a budget of source accesses and
// return whatever has been derived. This example sweeps the budget on a
// synthetic chain-of-bookstores instance and prints the tradeoff curve
// the paper discusses qualitatively: more source accesses, more answers,
// with diminishing returns.

#include <cstdio>

#include "common/text_table.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "workload/generator.h"

int main() {
  using limcap::workload::CatalogSpec;

  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 5;
  spec.tuples_per_view = 120;
  spec.domain_size = 25;
  spec.seed = 2026;
  limcap::workload::GeneratedInstance instance =
      limcap::workload::GenerateInstance(spec);

  // One connection across the whole chain: A0 -> A5.
  limcap::planner::Query query(
      {{"A0", limcap::workload::GeneratedInstance::DomainValue("A0", 3)}},
      {"A5"},
      {limcap::planner::Connection({"v1", "v2", "v3", "v4", "v5"})});
  if (!query.Validate(instance.catalog).ok()) {
    std::fprintf(stderr, "query invalid\n");
    return 1;
  }

  limcap::exec::QueryAnswerer answerer(&instance.catalog, instance.domains);

  // The maximal answer, for reference.
  auto maximal = answerer.Answer(query);
  if (!maximal.ok()) {
    std::fprintf(stderr, "error: %s\n", maximal.status().ToString().c_str());
    return 1;
  }
  std::size_t maximal_count = maximal->exec.answer.size();
  std::size_t maximal_queries = maximal->exec.log.total_queries();

  limcap::TextTable table(
      {"Budget (source queries)", "Answers", "% of maximal"});
  for (std::size_t budget : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    if (budget > maximal_queries + 8) break;
    limcap::exec::ExecOptions options;
    options.max_source_queries = budget;
    auto report = answerer.Answer(query, options);
    if (!report.ok()) continue;
    double percent = maximal_count == 0
                         ? 100.0
                         : 100.0 * double(report->exec.answer.size()) /
                               double(maximal_count);
    char percent_text[32];
    std::snprintf(percent_text, sizeof(percent_text), "%5.1f%%%s", percent,
                  report->exec.budget_exhausted ? "" : " (complete)");
    table.AddRow({std::to_string(budget),
                  std::to_string(report->exec.answer.size()), percent_text});
  }
  std::printf("chain of 5 bf-sources, input A0; maximal answer has %zu "
              "tuples after %zu source queries\n\n",
              maximal_count, maximal_queries);
  std::printf("%s", table.ToString().c_str());

  // Theorem 4.1 check: the chain connection is independent, so the
  // maximal obtainable answer equals the complete answer.
  auto complete = limcap::exec::CompleteAnswer(query, instance.full_data);
  if (complete.ok()) {
    std::printf("\ncomplete answer: %zu tuples — %s\n", complete->size(),
                maximal->exec.answer == *complete
                    ? "matches the obtainable answer (Theorem 4.1)"
                    : "DIFFERS (unexpected)");
  }
  return 0;
}
