// Example 1.1 from the paper: comparing two Web bookstores that cannot be
// scanned.
//
// amazon and bn only answer queries that bind an author (amazon) or a
// title (bn); neither accepts "return all your books". prenhall exports
// the authors of one publisher. Starting from the single binding
// Publisher = prentice_hall, the planner discovers that prenhall's
// authors unlock amazon, amazon's titles unlock bn, and bn's co-authors
// unlock amazon again — the repeated-access iteration the paper's
// footnote describes — and the Datalog evaluation drives it to fixpoint.

#include <cstdio>
#include <memory>

#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "planner/query.h"

namespace {

using limcap::Value;
using limcap::capability::InMemorySource;
using limcap::capability::SourceCatalog;
using limcap::capability::SourceView;
using limcap::planner::Connection;
using limcap::planner::Query;
using limcap::relational::Relation;
using limcap::relational::Row;

Value S(const char* text) { return Value::String(text); }
Value I(int64_t v) { return Value::Int64(v); }

void AddSource(SourceCatalog* catalog, const char* name,
               std::vector<std::string> attributes, const char* pattern,
               std::vector<Row> rows) {
  SourceView view = SourceView::MakeUnsafe(name, std::move(attributes),
                                           pattern);
  Relation data(view.schema());
  for (auto& row : rows) data.InsertUnsafe(std::move(row));
  catalog->RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(view, std::move(data))));
}

double Average(const Relation& prices) {
  if (prices.empty()) return 0;
  double sum = 0;
  for (const Row& row : prices.DecodedRows()) sum += double(row[0].int64());
  return sum / double(prices.size());
}

}  // namespace

int main() {
  SourceCatalog catalog;
  // prenhall.com: authors by publisher; a query must name the publisher.
  AddSource(&catalog, "prenhall", {"Publisher", "Author"}, "bf",
            {{S("prentice_hall"), S("ullman")},
             {S("prentice_hall"), S("widom")}});
  // amazon: must bind the author.
  AddSource(&catalog, "amazon", {"Author", "Title", "PriceA"}, "bff",
            {{S("ullman"), S("database_systems"), I(95)},
             {S("ullman"), S("automata_theory"), I(88)},
             {S("widom"), S("first_course_db"), I(70)},
             // Only reachable after bn reveals garcia as a co-author:
             {S("garcia"), S("distributed_dbs"), I(110)},
             // Never reachable: no chain of bindings leads to this author.
             {S("hidden_author"), S("secret_book"), I(9999)}});
  // bn: must bind the title; exposes (possibly different) authors.
  AddSource(&catalog, "bn", {"Title", "Author", "PriceB"}, "bff",
            {{S("database_systems"), S("garcia"), I(89)},
             {S("first_course_db"), S("widom"), I(72)},
             {S("distributed_dbs"), S("garcia"), I(99)}});

  limcap::planner::DomainMap domains;
  limcap::exec::QueryAnswerer answerer(&catalog, domains);

  // Average price at amazon for books reachable from the publisher.
  Query amazon_query({{"Publisher", S("prentice_hall")}}, {"PriceA"},
                     {Connection({"prenhall", "amazon"})});
  // Average price at bn. The connection {prenhall, bn} is NOT independent
  // (nothing in it binds Title); FIND_REL pulls amazon in as a relevant
  // off-connection view.
  Query bn_query({{"Publisher", S("prentice_hall")}}, {"PriceB"},
                 {Connection({"prenhall", "bn"})});

  auto amazon_report = answerer.Answer(amazon_query);
  auto bn_report = answerer.Answer(bn_query);
  if (!amazon_report.ok() || !bn_report.ok()) {
    std::fprintf(stderr, "error: %s %s\n",
                 amazon_report.status().ToString().c_str(),
                 bn_report.status().ToString().c_str());
    return 1;
  }

  std::printf("== relevant-view analysis for the bn connection ==\n%s\n",
              bn_report->plan.relevance.ToString().c_str());
  std::printf("== source-access trace for the bn query ==\n%s\n",
              bn_report->exec.log.ToTable(/*productive_only=*/false).c_str());

  std::printf("amazon prices: %s  (avg %.2f over %zu books)\n",
              amazon_report->exec.answer.ToString().c_str(),
              Average(amazon_report->exec.answer),
              amazon_report->exec.answer.size());
  std::printf("bn prices:     %s  (avg %.2f over %zu books)\n",
              bn_report->exec.answer.ToString().c_str(),
              Average(bn_report->exec.answer), bn_report->exec.answer.size());
  std::printf(
      "\nnote: hidden_author's $9999 book is priced at neither store's "
      "answer —\nno chain of bindings reaches it, exactly as the binding "
      "assumptions require.\n");
  return 0;
}
