// limcap_shell — a command-line driver for the whole system: load a
// catalog (text format), run connection queries (the paper's notation),
// and inspect plans and traces.
//
// Usage:
//   limcap_shell <catalog-file> "<query>" [--trace] [--plan] [--baseline]
//   limcap_shell                  # runs a built-in demo (Example 2.1)
//
// Example:
//   limcap_shell music.cat \
//     '<{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>' \
//     --trace --plan

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "capability/catalog_text.h"
#include "exec/baseline_executor.h"
#include "exec/query_answerer.h"
#include "planner/query_parser.h"

namespace {

constexpr const char* kDemoCatalog = R"(
source v1(Song, Cd) [bf] { (t1, c1) (t2, c3) }
source v2(Song, Cd) [fb] { (t1, c4) (t2, c2) (t1, c5) }
source v3(Cd, Artist, Price) [bff] { (c1, a1, "$15") (c3, a3, "$14") }
source v4(Cd, Artist, Price) [fbf] {
  (c1, a1, "$13") (c2, a1, "$12") (c4, a3, "$10") (c5, a5, "$11")
}
)";

constexpr const char* kDemoQuery =
    "<{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>";

int Fail(const limcap::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string catalog_text;
  std::string query_text;
  bool show_trace = false;
  bool show_plan = false;
  bool run_baseline = false;

  if (argc >= 3) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open catalog file %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    catalog_text = buffer.str();
    query_text = argv[2];
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) show_trace = true;
      if (std::strcmp(argv[i], "--plan") == 0) show_plan = true;
      if (std::strcmp(argv[i], "--baseline") == 0) run_baseline = true;
    }
  } else {
    std::printf("(no arguments — running the built-in Example 2.1 demo;\n"
                " usage: limcap_shell <catalog-file> \"<query>\" [--trace] "
                "[--plan] [--baseline])\n\n");
    catalog_text = kDemoCatalog;
    query_text = kDemoQuery;
    show_trace = show_plan = run_baseline = true;
  }

  auto parsed = limcap::capability::ParseCatalog(catalog_text);
  if (!parsed.ok()) return Fail(parsed.status());
  auto query = limcap::planner::ParseQuery(query_text);
  if (!query.ok()) return Fail(query.status());

  std::printf("catalog (%zu sources):\n%s\n", parsed->catalog.size(),
              parsed->catalog.ToString().c_str());
  std::printf("query: %s\n\n", query->ToString().c_str());

  limcap::exec::QueryAnswerer answerer(&parsed->catalog,
                                       limcap::planner::DomainMap());
  auto report = answerer.Answer(*query);
  if (!report.ok()) return Fail(report.status());

  if (show_plan) {
    std::printf("== relevance analysis ==\n%s\n",
                report->plan.relevance.ToString().c_str());
    std::printf("== optimized program (%zu rules; %zu removed as useless) "
                "==\n%s\n",
                report->plan.optimized_program.size(),
                report->plan.removed_rules.size(),
                report->plan.optimized_program.ToString().c_str());
  }
  if (show_trace) {
    std::printf("== source-access trace ==\n%s\n",
                report->exec.log.ToTable(/*productive_only=*/false).c_str());
  }

  std::printf("answer (%zu tuples): %s\n", report->exec.answer.size(),
              report->exec.answer.ToString().c_str());
  std::printf("source queries: %zu (%zu productive)\n",
              report->exec.log.total_queries(),
              report->exec.log.productive_queries());

  if (run_baseline) {
    limcap::exec::BaselineExecutor baseline(&parsed->catalog);
    auto per_join = baseline.Execute(*query);
    if (per_join.ok()) {
      std::printf(
          "\nper-join baseline: %zu tuples (%zu connections skipped): %s\n",
          per_join->answer.size(), per_join->skipped_connections.size(),
          per_join->answer.ToString().c_str());
    }
  }
  return 0;
}
