// Quickstart: the paper's Example 2.1 end-to-end in ~60 lines.
//
// Four musical-CD sources with limited query capabilities; we want the
// prices of the CDs containing song t1. Processing each join on its own
// (as capability-based mediators like TSIMMIS did) finds only $15; the
// limcap framework obtains $15, $13 and $10 by letting off-join sources
// feed bindings — saving the user $5 on the cheapest CD.

#include <cstdio>
#include <memory>

#include "capability/in_memory_source.h"
#include "exec/baseline_executor.h"
#include "exec/query_answerer.h"
#include "planner/query.h"

namespace {

using limcap::Value;
using limcap::capability::InMemorySource;
using limcap::capability::SourceCatalog;
using limcap::capability::SourceView;
using limcap::relational::Relation;

// Registers one source: a named relational view, its binding pattern
// ("bf" = first attribute must be bound), and its tuples.
void AddSource(SourceCatalog* catalog, const char* name,
               std::vector<std::string> attributes, const char* pattern,
               std::vector<limcap::relational::Row> rows) {
  SourceView view = SourceView::MakeUnsafe(name, std::move(attributes),
                                           pattern);
  Relation data(view.schema());
  for (auto& row : rows) data.InsertUnsafe(std::move(row));
  catalog->RegisterUnsafe(std::make_unique<InMemorySource>(
      InMemorySource::MakeUnsafe(view, std::move(data))));
}

Value S(const char* text) { return Value::String(text); }

}  // namespace

int main() {
  // 1. Describe the sources (Table 1 / Figure 1 of the paper).
  SourceCatalog catalog;
  AddSource(&catalog, "v1", {"Song", "Cd"}, "bf",
            {{S("t1"), S("c1")}, {S("t2"), S("c3")}});
  AddSource(&catalog, "v2", {"Song", "Cd"}, "fb",
            {{S("t1"), S("c4")}, {S("t2"), S("c2")}, {S("t1"), S("c5")}});
  AddSource(&catalog, "v3", {"Cd", "Artist", "Price"}, "bff",
            {{S("c1"), S("a1"), S("$15")}, {S("c3"), S("a3"), S("$14")}});
  AddSource(&catalog, "v4", {"Cd", "Artist", "Price"}, "fbf",
            {{S("c1"), S("a1"), S("$13")},
             {S("c2"), S("a1"), S("$12")},
             {S("c4"), S("a3"), S("$10")},
             {S("c5"), S("a5"), S("$11")}});

  // 2. State the query Q = <{Song = t1}, {Price}, {the four joins}>.
  limcap::planner::Query query(
      {{"Song", S("t1")}}, {"Price"},
      {limcap::planner::Connection({"v1", "v3"}),
       limcap::planner::Connection({"v1", "v4"}),
       limcap::planner::Connection({"v2", "v3"}),
       limcap::planner::Connection({"v2", "v4"})});

  // 3. Answer it. DomainMap() gives every attribute its own domain.
  limcap::exec::QueryAnswerer answerer(&catalog,
                                       limcap::planner::DomainMap());
  auto report = answerer.Answer(query);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("maximal obtainable answer: %s\n",
              report->exec.answer.ToString().c_str());
  std::printf("source queries issued:     %zu\n",
              report->exec.log.total_queries());

  // 4. Compare with the per-join baseline.
  limcap::exec::BaselineExecutor baseline(&catalog);
  auto per_join = baseline.Execute(query);
  if (per_join.ok()) {
    std::printf("per-join baseline answer:  %s (%zu joins skipped)\n",
                per_join->answer.ToString().c_str(),
                per_join->skipped_connections.size());
  }
  return 0;
}
