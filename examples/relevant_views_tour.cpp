// A tour of the paper's planning theory on its own worked examples:
// forward-closures, independence (Section 4), kernels, BF-chains,
// backward-closures, FIND_REL (Section 5), and program optimization
// (Section 6) — with every intermediate printed, the way a mediator
// would explain its plan.

#include <cstdio>

#include "paperdata/paper_examples.h"
#include "planner/closure.h"
#include "planner/find_rel.h"
#include "planner/program_optimizer.h"

namespace {

using limcap::paperdata::MakeExample41;
using limcap::paperdata::MakeExample51;
using limcap::paperdata::MakeExample52;
using limcap::paperdata::PaperExample;
using limcap::planner::AttributeSet;

std::string SetText(const AttributeSet& set) {
  std::string out = "{";
  for (const std::string& item : set) {
    if (out.size() > 1) out += ", ";
    out += item;
  }
  return out + "}";
}

void Tour(const char* title, PaperExample example) {
  std::printf("==================== %s ====================\n", title);
  std::printf("sources:\n%s", example.catalog.ToString().c_str());
  std::printf("query: %s\n\n", example.query.ToString().c_str());

  auto plan = limcap::planner::PlanQuery(example.query, example.views,
                                         example.domains);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return;
  }

  for (const auto& connection : example.query.connections()) {
    auto report = limcap::planner::FindRelevantViews(
        example.query, connection, example.views, example.domains);
    if (!report.ok()) continue;
    std::printf("-- FIND_REL for connection %s --\n%s",
                connection.ToString().c_str(), report->ToString().c_str());
    if (!report->kernel.empty()) {
      // Show every kernel (Lemma 5.3: all share one backward-closure).
      std::vector<limcap::capability::SourceView> views;
      for (const std::string& name : connection.view_names()) {
        for (const auto& view : example.views) {
          if (view.name() == name) views.push_back(view);
        }
      }
      auto kernels = limcap::planner::AllKernels(
          example.query.InputAttributes(), views);
      std::printf("all kernels:");
      for (const AttributeSet& kernel : kernels) {
        std::printf(" %s", SetText(kernel).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("Pi(Q, V)   — %zu rules:\n%s\n", plan->full_program.size(),
              plan->full_program.ToString().c_str());
  std::printf("Pi(Q, V_r) — %zu rules (after FIND_REL trimming)\n",
              plan->relevant_program.size());
  std::printf("optimized  — %zu rules (after useless-rule removal):\n%s\n",
              plan->optimized_program.size(),
              plan->optimized_program.ToString().c_str());
  std::printf("removed as useless:\n");
  for (const auto& rule : plan->removed_rules) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Tour("Example 4.1 (Figures 3, 4, 8)", MakeExample41());
  Tour("Example 5.1 (Figure 5)", MakeExample51());
  Tour("Example 5.2 (Figure 6, multiple kernels)", MakeExample52());
  return 0;
}
