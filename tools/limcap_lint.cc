// limcap_lint: static verification of Datalog programs and connection
// queries against a source catalog, before anything touches a source.
//
//   limcap_lint --catalog FILE [--query FILE | --program FILE]
//               [--goal NAME] [--json]
//
// Modes (by which inputs are given):
//   --catalog only              cold-start view reachability
//   --catalog + --query         build the full Π(Q, V) and verify it
//   --catalog + --program       verify a hand-written Datalog program
//
// Exit status: 0 = no error-severity diagnostics (warnings and notes
// are advisory), 1 = the report contains errors, 2 = the inputs are
// unusable (bad flags, unreadable file, parse failure).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "common/result.h"

namespace {

constexpr const char* kUsage =
    "usage: limcap_lint --catalog FILE [--query FILE | --program FILE]\n"
    "                   [--goal NAME] [--json]\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  limcap::analysis::LintRequest request;
  std::string catalog_path;
  std::string program_path;
  std::string query_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::cerr << "limcap_lint: " << arg << " needs an argument\n"
                  << kUsage;
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--catalog") {
      if (!next(&catalog_path)) return 2;
    } else if (arg == "--program") {
      if (!next(&program_path)) return 2;
      request.has_program = true;
    } else if (arg == "--query") {
      if (!next(&query_path)) return 2;
      request.has_query = true;
    } else if (arg == "--goal") {
      if (!next(&request.options.goal_predicate)) return 2;
      request.builder.goal_predicate = request.options.goal_predicate;
    } else if (arg == "--json") {
      request.json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "limcap_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (catalog_path.empty()) {
    std::cerr << "limcap_lint: --catalog is required\n" << kUsage;
    return 2;
  }
  if (!ReadFile(catalog_path, &request.catalog_text)) {
    std::cerr << "limcap_lint: cannot read catalog '" << catalog_path
              << "'\n";
    return 2;
  }
  if (request.has_program && !ReadFile(program_path, &request.program_text)) {
    std::cerr << "limcap_lint: cannot read program '" << program_path
              << "'\n";
    return 2;
  }
  if (request.has_query && !ReadFile(query_path, &request.query_text)) {
    std::cerr << "limcap_lint: cannot read query '" << query_path << "'\n";
    return 2;
  }

  limcap::Result<limcap::analysis::LintReport> report =
      limcap::analysis::Lint(request);
  if (!report.ok()) {
    std::cerr << "limcap_lint: " << report.status().message() << "\n";
    return 2;
  }
  std::cout << report->rendered;
  return report->ok() ? 0 : 1;
}
