// limcap_lint: static verification of Datalog programs and connection
// queries against a source catalog, before anything touches a source.
//
//   limcap_lint --catalog FILE [--query FILE | --program FILE]
//               [--goal NAME] [--runtime FILE] [--json] [--deep]
//
// Modes (by which inputs are given):
//   --catalog only              cold-start view reachability
//   --catalog + --query         build the full Π(Q, V) and verify it
//   --catalog + --program       verify a hand-written Datalog program
//
// --deep additionally runs the binding-flow abstract interpretation
// (LC030-LC032: statically irrelevant/unreachable fetch channels and
// per-source static bounds) and appends the per-channel pruning
// certificates — relevance witness chains and irrelevance/
// unreachability refutations — to the report.
//
// --runtime FILE additionally parses a source-access runtime config
// (runtime/runtime_config.h), checks that every per-view policy and
// latency override names a catalog view, and appends the effective
// per-view retry/breaker/latency table to the report.
//
// Exit status: 0 = no error-severity diagnostics (warnings and notes
// are advisory), 1 = the report contains errors, 2 = the inputs are
// unusable (bad flags, unreadable file, parse failure).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "capability/catalog_text.h"
#include "common/result.h"
#include "runtime/runtime_config.h"

namespace {

constexpr const char* kUsage =
    "usage: limcap_lint --catalog FILE [--query FILE | --program FILE]\n"
    "                   [--goal NAME] [--runtime FILE] [--json] [--deep]\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Parses and validates the --runtime config against the catalog's view
/// names, then renders the effective per-view policies. Returns the exit
/// code contribution: 0 ok, 1 validation errors, 2 unusable input.
int ReportRuntimeConfig(const std::string& runtime_text,
                        const std::string& catalog_text, bool json) {
  auto options = limcap::runtime::ParseRuntimeConfig(runtime_text);
  if (!options.ok()) {
    std::cerr << "limcap_lint: " << options.status().message() << "\n";
    return 2;
  }
  auto catalog = limcap::capability::ParseCatalog(catalog_text);
  if (!catalog.ok()) {
    // The lint pass has already reported this; don't double-report.
    return 2;
  }
  std::vector<std::string> names;
  std::set<std::string> known;
  for (const auto& view : catalog->views) {
    names.push_back(view.name());
    known.insert(view.name());
  }
  int errors = 0;
  for (const auto& [view, policy] : options->per_source) {
    if (known.count(view) == 0) {
      std::cerr << "limcap_lint: runtime config sets a policy for unknown "
                   "view '" << view << "'\n";
      ++errors;
    }
  }
  for (const auto& [view, latency] : options->latency.per_source_ms) {
    if (known.count(view) == 0) {
      std::cerr << "limcap_lint: runtime config sets a latency for unknown "
                   "view '" << view << "'\n";
      ++errors;
    }
  }
  std::cout << limcap::runtime::RenderRuntimePolicies(names, *options, json);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  limcap::analysis::LintRequest request;
  std::string catalog_path;
  std::string program_path;
  std::string query_path;
  std::string runtime_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::cerr << "limcap_lint: " << arg << " needs an argument\n"
                  << kUsage;
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--catalog") {
      if (!next(&catalog_path)) return 2;
    } else if (arg == "--program") {
      if (!next(&program_path)) return 2;
      request.has_program = true;
    } else if (arg == "--query") {
      if (!next(&query_path)) return 2;
      request.has_query = true;
    } else if (arg == "--goal") {
      if (!next(&request.options.goal_predicate)) return 2;
      request.builder.goal_predicate = request.options.goal_predicate;
    } else if (arg == "--runtime") {
      if (!next(&runtime_path)) return 2;
    } else if (arg == "--json") {
      request.json = true;
    } else if (arg == "--deep") {
      request.deep = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "limcap_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (catalog_path.empty()) {
    std::cerr << "limcap_lint: --catalog is required\n" << kUsage;
    return 2;
  }
  if (!ReadFile(catalog_path, &request.catalog_text)) {
    std::cerr << "limcap_lint: cannot read catalog '" << catalog_path
              << "'\n";
    return 2;
  }
  if (request.has_program && !ReadFile(program_path, &request.program_text)) {
    std::cerr << "limcap_lint: cannot read program '" << program_path
              << "'\n";
    return 2;
  }
  if (request.has_query && !ReadFile(query_path, &request.query_text)) {
    std::cerr << "limcap_lint: cannot read query '" << query_path << "'\n";
    return 2;
  }
  std::string runtime_text;
  if (!runtime_path.empty() && !ReadFile(runtime_path, &runtime_text)) {
    std::cerr << "limcap_lint: cannot read runtime config '" << runtime_path
              << "'\n";
    return 2;
  }

  limcap::Result<limcap::analysis::LintReport> report =
      limcap::analysis::Lint(request);
  if (!report.ok()) {
    std::cerr << "limcap_lint: " << report.status().message() << "\n";
    return 2;
  }
  std::cout << report->rendered;
  int exit_code = report->ok() ? 0 : 1;
  if (!runtime_path.empty()) {
    int runtime_code =
        ReportRuntimeConfig(runtime_text, request.catalog_text, request.json);
    exit_code = std::max(exit_code, runtime_code);
  }
  return exit_code;
}
