// limcap_serve: the mediator as a daemon. Listens on 127.0.0.1, speaks
// the length-prefixed JSON protocol of mediator/serve_protocol.h, and
// answers many concurrent connection queries on a shared ServeSession —
// worker pool, admission control (kLoadShed), per-request deadlines, a
// server-wide fetch governor, and graceful drain on SIGTERM/SIGINT or a
// client "shutdown" message.
//
//   limcap_serve [--port N] [--scenario mixed|paper] [--seed N]
//                [--workers N] [--max-queue N] [--max-in-flight N]
//                [--per-source-in-flight N] [--no-coalesce]
//                [--record DIR] [--record-budget BYTES]
//
// --record DIR captures every successfully answered request's source
// traffic as DIR/req-NNNNN.lcap (replay::ReplayArtifact, replayable
// offline with `limcap_explain --replay`), plus a record_index.json
// written once on drain. --record-budget bounds the total artifact
// bytes (default 256 MiB); over-budget captures are dropped whole.
//
// --port 0 (the default) binds an ephemeral port. Once listening the
// daemon prints "LISTENING <port>" on stdout and flushes, so a harness
// can start it with --port 0 and scrape the real port.
//
// The catalog is built in-process from the scenario: "mixed" is the
// workload generator's merged mixed catalog (paper Example 2.1 + chain +
// random topologies; clients regenerate the matching queries from the
// same --seed), "paper" is Example 2.1 alone.
//
// Shutdown: SIGTERM, SIGINT, or a "shutdown" frame stop admission, drain
// every accepted request (new submissions are refused with kLoadShed),
// answer pending "shutdown" frames with "bye", and exit 0 after printing
// a final stats line.

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "mediator/mediator.h"
#include "mediator/serve_protocol.h"
#include "mediator/serve_session.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace {

using limcap::Json;
using limcap::Status;
using limcap::mediator::Mediator;
using limcap::mediator::ParseWireRequest;
using limcap::mediator::ReadFrame;
using limcap::mediator::RenderResponse;
using limcap::mediator::RenderStatus;
using limcap::mediator::ServeOptions;
using limcap::mediator::ServeResponse;
using limcap::mediator::ServeSession;
using limcap::mediator::WireRequest;
using limcap::mediator::WriteFrame;

constexpr const char* kUsage =
    "usage: limcap_serve [--port N] [--scenario mixed|paper] [--seed N]\n"
    "                    [--workers N] [--max-queue N] [--max-in-flight N]\n"
    "                    [--per-source-in-flight N] [--no-coalesce]\n"
    "                    [--adaptive]\n"
    "                    [--record DIR] [--record-budget BYTES]\n";

/// Self-pipe for signal-safe shutdown: the handler writes one byte, the
/// poll loop wakes. Also written by connection readers on a "shutdown"
/// frame, so both paths drain identically.
int g_shutdown_pipe[2] = {-1, -1};

void RequestShutdown() {
  char byte = 0;
  ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)n;
}

void HandleSignal(int) { RequestShutdown(); }

/// One client connection: a reader thread submitting to the session,
/// responses written back from worker callbacks under the write mutex
/// (frames from concurrent queries must not interleave).
struct Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::thread reader;
  /// Set when this connection sent a "shutdown" frame; main answers it
  /// with "bye" after the drain.
  std::atomic<bool> wants_bye{false};
  std::atomic<uint64_t> bye_id{0};
};

void WriteReply(const std::shared_ptr<Connection>& connection,
                const Json& reply) {
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  // A failed write (client gone) is the client's problem; the reader
  // will see the close and exit.
  (void)WriteFrame(connection->fd, reply.Dump());
}

Json ErrorReply(uint64_t id, Status status) {
  ServeResponse response;
  response.report = std::move(status);
  return RenderResponse(id, response);
}

void ReaderLoop(std::shared_ptr<Connection> connection,
                ServeSession* session) {
  for (;;) {
    limcap::Result<std::string> frame = ReadFrame(connection->fd);
    if (!frame.ok()) {
      if (frame.status().code() == limcap::StatusCode::kProtocolError) {
        // Tell the peer why before closing: a framing violation is
        // unrecoverable on this stream (we cannot resynchronize), but
        // it should not look like a silent hang-up.
        WriteReply(connection, ErrorReply(0, frame.status()));
      }
      return;  // clean EOF, peer reset, protocol violation, or shutdown
    }
    limcap::Result<Json> message = Json::Parse(*frame);
    if (!message.ok()) {
      WriteReply(connection, ErrorReply(0, message.status()));
      continue;
    }
    const std::string type = message->GetString("type");
    const uint64_t id =
        static_cast<uint64_t>(message->GetNumber("id", 0));
    if (type == "query") {
      limcap::Result<WireRequest> wire = ParseWireRequest(*message);
      if (!wire.ok()) {
        WriteReply(connection, ErrorReply(id, wire.status()));
        continue;
      }
      const uint64_t reply_id = wire->id;
      Status admitted = session->Submit(
          std::move(wire->request),
          [connection, reply_id](ServeResponse response) {
            WriteReply(connection, RenderResponse(reply_id, response));
          });
      if (!admitted.ok()) {
        // Load-shed at admission: the refusal is the response.
        WriteReply(connection, ErrorReply(reply_id, admitted));
      }
    } else if (type == "status") {
      WriteReply(connection, RenderStatus(id, *session));
    } else if (type == "shutdown") {
      connection->bye_id = id;
      connection->wants_bye = true;
      RequestShutdown();
    } else {
      WriteReply(connection,
                 ErrorReply(id, Status::InvalidArgument(
                                    "unknown message type \"" + type + "\"")));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string scenario = "mixed";
  uint64_t seed = 1;
  ServeOptions serve_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "limcap_serve: " << arg << " needs an argument\n"
                  << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--workers") {
      serve_options.workers = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--max-queue") {
      serve_options.max_queue = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--max-in-flight") {
      serve_options.governor.max_in_flight =
          std::strtoul(next(), nullptr, 10);
    } else if (arg == "--per-source-in-flight") {
      serve_options.governor.per_source_max_in_flight =
          std::strtoul(next(), nullptr, 10);
    } else if (arg == "--no-coalesce") {
      serve_options.governor.cross_query_coalesce = false;
    } else if (arg == "--adaptive") {
      serve_options.exec.runtime.adaptive.enabled = true;
    } else if (arg == "--record") {
      serve_options.record_dir = next();
    } else if (arg == "--record-budget") {
      serve_options.record_budget_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "limcap_serve: unknown flag " << arg << "\n" << kUsage;
      return 2;
    }
  }

  // Scenario catalogs. Both live on the stack for the daemon's lifetime;
  // the catalog never mutates while serving (ServeSession's contract).
  limcap::workload::MixedWorkload mixed;
  limcap::paperdata::PaperExample paper;
  const limcap::capability::SourceCatalog* catalog = nullptr;
  limcap::planner::DomainMap domains;
  if (scenario == "mixed") {
    limcap::workload::MixedWorkloadSpec spec;
    spec.seed = seed;
    spec.num_requests = 0;  // the daemon only needs the catalog
    auto workload = limcap::workload::GenerateMixedWorkload(spec);
    if (!workload.ok()) {
      std::cerr << "limcap_serve: workload generation failed: "
                << workload.status().ToString() << "\n";
      return 2;
    }
    mixed = std::move(*workload);
    catalog = &mixed.catalog;
    domains = mixed.domains;
  } else if (scenario == "paper") {
    paper = limcap::paperdata::MakeExample21();
    catalog = &paper.catalog;
    domains = paper.domains;
  } else {
    std::cerr << "limcap_serve: unknown scenario \"" << scenario << "\"\n"
              << kUsage;
    return 2;
  }

  if (!serve_options.record_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(serve_options.record_dir, ec);
    if (ec) {
      std::cerr << "limcap_serve: cannot create record dir "
                << serve_options.record_dir << ": " << ec.message() << "\n";
      return 2;
    }
    serve_options.record_scenario = scenario;
    serve_options.record_seed = seed;
  }

  Mediator mediator(catalog, domains);
  ServeSession session(&mediator, serve_options);

  if (::pipe(g_shutdown_pipe) != 0) {
    std::perror("limcap_serve: pipe");
    return 2;
  }
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("limcap_serve: socket");
    return 2;
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::perror("limcap_serve: bind/listen");
    return 2;
  }
  socklen_t address_len = sizeof(address);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address),
                &address_len);
  std::printf("LISTENING %u\n", ntohs(address.sin_port));
  std::fflush(stdout);

  std::vector<std::shared_ptr<Connection>> connections;
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_shutdown_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::perror("limcap_serve: poll");
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown requested
    if (fds[0].revents == 0) continue;
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    auto connection = std::make_shared<Connection>();
    connection->fd = client_fd;
    connection->reader = std::thread(ReaderLoop, connection, &session);
    connections.push_back(std::move(connection));
  }

  // Graceful drain: stop listening, complete every accepted request
  // (readers still submit while we drain — refused with kLoadShed), then
  // answer pending shutdown frames and hang up.
  ::close(listen_fd);
  session.Shutdown();
  for (const std::shared_ptr<Connection>& connection : connections) {
    if (connection->wants_bye) {
      Json bye = Json::MakeObject();
      bye.Set("type", "bye");
      bye.Set("id", connection->bye_id.load());
      WriteReply(connection, bye);
    }
    ::shutdown(connection->fd, SHUT_RDWR);  // wake the blocked reader
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    connection->reader.join();
    ::close(connection->fd);
  }

  const ServeSession::Stats stats = session.stats();
  Json summary = Json::MakeObject();
  summary.Set("type", "exit");
  summary.Set("accepted", stats.accepted);
  summary.Set("rejected", stats.rejected);
  summary.Set("completed", stats.completed);
  summary.Set("failed", stats.failed);
  summary.Set("cross_query_coalesced", stats.governor.cross_query_coalesced);
  summary.Set("recorded", stats.recorded);
  summary.Set("record_dropped", stats.record_dropped);
  std::printf("%s\n", summary.Dump().c_str());
  return 0;
}
