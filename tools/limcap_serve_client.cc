// limcap_serve_client: drives a running limcap_serve daemon with the
// generated workload and reports latency/throughput.
//
//   limcap_serve_client --port N [--scenario mixed|paper] [--seed N]
//                       [--count N] [--concurrency C] [--deadline-ms D]
//                       [--max-shed F] [--status] [--shutdown]
//
// The client regenerates the daemon's scenario from the same --seed —
// the workload generator is deterministic, so "mixed" with matching
// seeds produces exactly the queries the daemon's merged catalog can
// answer — and sends them as paper-notation text over C concurrent
// connections (one synchronous request stream per connection).
//
// Output: one JSON summary line on stdout —
//   {"sent":N,"ok":..,"shed":..,"failed":..,"p50_ms":..,"p99_ms":..,
//    "qps":..,"wall_ms":..[,"status":{...}][,"bye":true]}
// "shed" counts kLoadShed refusals (admission control working as
// designed), "failed" everything else non-OK. --status appends a server
// status snapshot; --shutdown sends a shutdown frame afterwards and
// waits for the server's "bye" (exit 1 if it never comes).
//
// --max-shed F (a fraction in [0,1], default off) turns the shed rate
// into a pass/fail gate for harnesses: when shed/sent exceeds F the
// client exits 3, so a CI job can assert "under this load, admission
// control sheds at most F" without parsing the summary.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "mediator/serve_protocol.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

namespace {

using limcap::Json;
using limcap::StatusCode;
using limcap::mediator::ReadFrame;
using limcap::mediator::WriteFrame;

constexpr const char* kUsage =
    "usage: limcap_serve_client --port N [--scenario mixed|paper]\n"
    "                           [--seed N] [--count N] [--concurrency C]\n"
    "                           [--deadline-ms D] [--max-shed F]\n"
    "                           [--status] [--shutdown]\n";

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Outcome {
  bool responded = false;
  bool ok = false;
  bool shed = false;
  double latency_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string scenario = "mixed";
  uint64_t seed = 1;
  std::size_t count = 64;
  std::size_t concurrency = 4;
  double deadline_ms = 0;
  double max_shed = -1;  // negative = gate off
  bool want_status = false;
  bool want_shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "limcap_serve_client: " << arg << " needs an argument\n"
                  << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--count") {
      count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--concurrency") {
      concurrency = std::max<std::size_t>(1, std::strtoul(next(), nullptr, 10));
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next());
    } else if (arg == "--max-shed") {
      max_shed = std::atof(next());
    } else if (arg == "--status") {
      want_status = true;
    } else if (arg == "--shutdown") {
      want_shutdown = true;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "limcap_serve_client: unknown flag " << arg << "\n"
                << kUsage;
      return 2;
    }
  }
  if (port <= 0) {
    std::cerr << "limcap_serve_client: --port is required\n" << kUsage;
    return 2;
  }

  // The request sequence, as wire text.
  std::vector<std::string> queries;
  if (scenario == "mixed") {
    limcap::workload::MixedWorkloadSpec spec;
    spec.seed = seed;
    spec.num_requests = count;
    auto workload = limcap::workload::GenerateMixedWorkload(spec);
    if (!workload.ok()) {
      std::cerr << "limcap_serve_client: workload generation failed: "
                << workload.status().ToString() << "\n";
      return 2;
    }
    queries.reserve(count);
    for (const limcap::workload::MixedRequest& request : workload->requests) {
      queries.push_back(request.query.ToString());
    }
  } else if (scenario == "paper") {
    const std::string text = limcap::paperdata::MakeExample21().query.ToString();
    queries.assign(count, text);
  } else {
    std::cerr << "limcap_serve_client: unknown scenario \"" << scenario
              << "\"\n" << kUsage;
    return 2;
  }

  // One synchronous request stream per connection; request i rides
  // connection i % C, so C requests are in flight server-side.
  std::vector<Outcome> outcomes(queries.size());
  std::atomic<bool> io_failed{false};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> streams;
  streams.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    streams.emplace_back([&, c] {
      const int fd = Connect(port);
      if (fd < 0) {
        io_failed = true;
        return;
      }
      for (std::size_t i = c; i < queries.size(); i += concurrency) {
        Json request = Json::MakeObject();
        request.Set("type", "query");
        request.Set("id", static_cast<uint64_t>(i));
        request.Set("query", queries[i]);
        if (deadline_ms > 0) request.Set("deadline_ms", deadline_ms);
        const auto start = std::chrono::steady_clock::now();
        if (!WriteFrame(fd, request.Dump()).ok()) {
          io_failed = true;
          break;
        }
        limcap::Result<std::string> frame = ReadFrame(fd);
        if (!frame.ok()) {
          io_failed = true;
          break;
        }
        limcap::Result<Json> reply = Json::Parse(*frame);
        if (!reply.ok()) {
          io_failed = true;
          break;
        }
        Outcome& outcome = outcomes[i];
        outcome.responded = true;
        outcome.latency_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        outcome.ok = reply->GetBool("ok", false);
        outcome.shed =
            !outcome.ok &&
            static_cast<int>(reply->GetNumber("code", 0)) ==
                static_cast<int>(StatusCode::kLoadShed);
      }
      ::close(fd);
    });
  }
  for (std::thread& stream : streams) stream.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  std::size_t ok = 0, shed = 0, failed = 0, responded = 0;
  std::vector<double> latencies;
  latencies.reserve(outcomes.size());
  for (const Outcome& outcome : outcomes) {
    if (!outcome.responded) continue;
    ++responded;
    latencies.push_back(outcome.latency_ms);
    if (outcome.ok) {
      ++ok;
    } else if (outcome.shed) {
      ++shed;
    } else {
      ++failed;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    if (latencies.empty()) return 0.0;
    const std::size_t index = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
    return latencies[index];
  };

  Json summary = Json::MakeObject();
  summary.Set("sent", static_cast<uint64_t>(queries.size()));
  summary.Set("responded", static_cast<uint64_t>(responded));
  summary.Set("ok", static_cast<uint64_t>(ok));
  summary.Set("shed", static_cast<uint64_t>(shed));
  summary.Set("failed", static_cast<uint64_t>(failed));
  summary.Set("p50_ms", percentile(0.50));
  summary.Set("p99_ms", percentile(0.99));
  summary.Set("wall_ms", wall_ms);
  summary.Set("qps", wall_ms > 0 ? 1000.0 * static_cast<double>(responded) /
                                       wall_ms
                                 : 0.0);

  bool control_failed = false;
  if (want_status || want_shutdown) {
    const int fd = Connect(port);
    if (fd < 0) {
      control_failed = true;
    } else {
      if (want_status) {
        Json request = Json::MakeObject();
        request.Set("type", "status");
        request.Set("id", static_cast<uint64_t>(queries.size()));
        if (WriteFrame(fd, request.Dump()).ok()) {
          limcap::Result<std::string> frame = ReadFrame(fd);
          limcap::Result<Json> reply =
              frame.ok() ? Json::Parse(*frame)
                         : limcap::Result<Json>(frame.status());
          if (reply.ok()) {
            summary.Set("status", *std::move(reply));
          } else {
            control_failed = true;
          }
        } else {
          control_failed = true;
        }
      }
      if (want_shutdown) {
        Json request = Json::MakeObject();
        request.Set("type", "shutdown");
        request.Set("id", static_cast<uint64_t>(queries.size()) + 1);
        bool bye = false;
        if (WriteFrame(fd, request.Dump()).ok()) {
          limcap::Result<std::string> frame = ReadFrame(fd);
          if (frame.ok()) {
            limcap::Result<Json> reply = Json::Parse(*frame);
            bye = reply.ok() && reply->GetString("type") == "bye";
          }
        }
        summary.Set("bye", bye);
        if (!bye) control_failed = true;
      }
      ::close(fd);
    }
  }

  const double shed_rate =
      queries.empty() ? 0.0
                      : static_cast<double>(shed) /
                            static_cast<double>(queries.size());
  const bool shed_exceeded = max_shed >= 0 && shed_rate > max_shed;
  if (max_shed >= 0) {
    summary.Set("shed_rate", shed_rate);
    summary.Set("max_shed", max_shed);
    summary.Set("max_shed_exceeded", shed_exceeded);
  }

  std::printf("%s\n", summary.Dump().c_str());
  if (io_failed || control_failed || responded != queries.size()) return 1;
  if (shed_exceeded) return 3;
  return 0;
}
