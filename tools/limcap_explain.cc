// limcap_explain: answer a connection query against a catalog and print
// the annotated story — which views FIND_REL kept and why (kernels,
// b-closures), the optimized Datalog program, the execution timeline
// with per-source metrics, and the answer.
//
//   limcap_explain --catalog FILE --query FILE [--runtime FILE]
//                  [--goal NAME] [--adaptive] [--no-timing]
//                  [--trace-out FILE]
//   limcap_explain --replay FILE.lcap [--no-timing] [--trace-out FILE]
//
// --no-timing omits wall-clock numbers from the timeline, making the
// report deterministic (the golden tests run this mode). --adaptive
// turns on the runtime-adaptive dispatcher (dynamic relevance pruning,
// cost-aware ordering, hedged requests) and its report section.
// --trace-out additionally writes the span tree as Chrome trace_event
// JSON, loadable in chrome://tracing or Perfetto.
//
// --replay re-executes a `.lcap` capture (limcap_serve --record, or
// replay::TraceRecorder) entirely offline: the catalog is rebuilt from
// the manifest, every source query is answered from the recording (a
// miss is a planner divergence and fails the run), recorded faults are
// re-raised and recorded latencies replayed on the simulated clock, and
// the report opens with a Replay section giving the recorded-vs-replayed
// fingerprint verdict.
//
// Exit status: 0 = answered (a partial answer still counts; for --replay
// the fingerprints must also MATCH with zero misses), 1 = the execution
// failed or the replay diverged, 2 = the inputs are unusable (bad flags,
// unreadable file, parse failure).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/result.h"
#include "exec/explain.h"
#include "obs/export.h"
#include "replay/replay.h"

namespace {

constexpr const char* kUsage =
    "usage: limcap_explain --catalog FILE --query FILE [--runtime FILE]\n"
    "                      [--goal NAME] [--adaptive] [--no-timing]\n"
    "                      [--trace-out FILE]\n"
    "       limcap_explain --replay FILE.lcap [--no-timing]\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  limcap::exec::ExplainRequest request;
  std::string catalog_path;
  std::string query_path;
  std::string runtime_path;
  std::string trace_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::cerr << "limcap_explain: " << arg << " needs an argument\n"
                  << kUsage;
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--catalog") {
      if (!next(&catalog_path)) return 2;
    } else if (arg == "--query") {
      if (!next(&query_path)) return 2;
    } else if (arg == "--runtime") {
      if (!next(&runtime_path)) return 2;
    } else if (arg == "--goal") {
      if (!next(&request.options.builder.goal_predicate)) return 2;
    } else if (arg == "--no-timing") {
      request.include_timing = false;
    } else if (arg == "--adaptive") {
      request.options.runtime.adaptive.enabled = true;
    } else if (arg == "--replay") {
      if (!next(&replay_path)) return 2;
    } else if (arg == "--trace-out") {
      if (!next(&trace_path)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "limcap_explain: unknown flag '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  if (!replay_path.empty()) {
    if (!catalog_path.empty() || !query_path.empty() ||
        !runtime_path.empty()) {
      std::cerr << "limcap_explain: --replay rebuilds catalog, query and "
                   "runtime from the artifact; drop --catalog/--query/"
                   "--runtime\n"
                << kUsage;
      return 2;
    }
    limcap::Result<limcap::replay::ReplayRunReport> replayed =
        limcap::replay::ReplayFile(replay_path, request.include_timing);
    if (!replayed.ok()) {
      std::cerr << "limcap_explain: " << replayed.status().ToString() << "\n";
      // A broken/inconsistent artifact is an input problem; a failed
      // re-execution is not.
      const limcap::StatusCode code = replayed.status().code();
      return (code == limcap::StatusCode::kInvalidArgument ||
              code == limcap::StatusCode::kNotFound)
                 ? 2
                 : 1;
    }
    std::cout << replayed->rendered;
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "limcap_explain: cannot write trace '" << trace_path
                  << "'\n";
        return 2;
      }
      out << limcap::obs::ChromeTraceJson(replayed->tracer);
    }
    // A divergent replay is a finding, not a fallback: the report above
    // shows it, the exit status makes harnesses fail on it.
    return (replayed->fingerprint_match && replayed->replay_misses == 0) ? 0
                                                                         : 1;
  }

  if (catalog_path.empty() || query_path.empty()) {
    std::cerr << "limcap_explain: --catalog and --query are required\n"
              << kUsage;
    return 2;
  }
  if (!ReadFile(catalog_path, &request.catalog_text)) {
    std::cerr << "limcap_explain: cannot read catalog '" << catalog_path
              << "'\n";
    return 2;
  }
  if (!ReadFile(query_path, &request.query_text)) {
    std::cerr << "limcap_explain: cannot read query '" << query_path
              << "'\n";
    return 2;
  }
  if (!runtime_path.empty() &&
      !ReadFile(runtime_path, &request.runtime_text)) {
    std::cerr << "limcap_explain: cannot read runtime config '"
              << runtime_path << "'\n";
    return 2;
  }

  limcap::Result<limcap::exec::ExplainReport> report =
      limcap::exec::Explain(request);
  if (!report.ok()) {
    std::cerr << "limcap_explain: " << report.status().ToString() << "\n";
    // Parse/validation problems are input problems; execution failures
    // are not.
    return report.status().code() == limcap::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  std::cout << report->rendered;
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "limcap_explain: cannot write trace '" << trace_path
                << "'\n";
      return 2;
    }
    out << report->chrome_trace;
  }
  return 0;
}
