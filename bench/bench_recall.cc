// X1 — answer recall: the per-join baseline ([10, 14, 16]) vs. the
// paper's framework, against the complete-answer oracle, across random
// instances.
//
// This quantifies the paper's Section 2 claim: because the baseline
// executes each join using only its own views, it skips every
// non-independent connection and loses answers, while the framework's
// recursive program recovers every obtainable tuple. The shape to expect:
// framework recall ≥ baseline recall everywhere, with the gap widening as
// binding restrictions tighten (higher bound-probability).

#include <cstdio>

#include "common/text_table.h"
#include "exec/baseline_executor.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;
using limcap::workload::GenerateQuery;
using limcap::workload::QuerySpec;

struct Totals {
  std::size_t complete = 0;
  std::size_t framework = 0;
  std::size_t baseline = 0;
  std::size_t instances = 0;
  std::size_t skipped_connections = 0;
  std::size_t framework_wins = 0;  // strictly more answers than baseline
};

int failures = 0;
limcap::benchreport::Reporter reporter("bench_recall");

Totals Sweep(CatalogSpec::Topology topology, double bound_probability,
             std::size_t seeds) {
  Totals totals;
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    CatalogSpec spec;
    spec.topology = topology;
    spec.bound_probability = bound_probability;
    spec.num_views = 10;
    spec.num_attributes = 8;
    spec.tuples_per_view = 40;
    spec.domain_size = 15;
    spec.seed = seed * 31 + 1;
    GeneratedInstance instance = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.num_connections = 3;
    query_spec.views_per_connection = 2;
    query_spec.seed = seed * 17 + 2;
    auto query = GenerateQuery(instance, query_spec);
    if (!query.ok()) continue;

    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    limcap::exec::BaselineExecutor baseline_exec(&instance.catalog);
    auto framework = answerer.Answer(*query);
    auto baseline = baseline_exec.Execute(*query);
    auto complete = limcap::exec::CompleteAnswer(*query, instance.full_data);
    if (!framework.ok() || !baseline.ok() || !complete.ok()) {
      std::fprintf(stderr, "instance seed %zu failed: %s %s %s\n", seed,
                   framework.status().ToString().c_str(),
                   baseline.status().ToString().c_str(),
                   complete.status().ToString().c_str());
      ++failures;
      continue;
    }
    // Invariants: baseline ⊆ framework ⊆ complete.
    for (const auto& row : baseline->answer.DecodedRows()) {
      if (!framework->exec.answer.Contains(row)) ++failures;
    }
    for (const auto& row : framework->exec.answer.DecodedRows()) {
      if (!complete->Contains(row)) ++failures;
    }
    ++totals.instances;
    totals.complete += complete->size();
    totals.framework += framework->exec.answer.size();
    totals.baseline += baseline->answer.size();
    totals.skipped_connections += baseline->skipped_connections.size();
    if (framework->exec.answer.size() > baseline->answer.size()) {
      ++totals.framework_wins;
    }
  }
  return totals;
}

std::string Percent(std::size_t part, std::size_t whole) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%5.1f%%",
                whole == 0 ? 100.0 : 100.0 * double(part) / double(whole));
  return buffer;
}

}  // namespace

int main() {
  std::printf(
      "X1: answer recall vs the complete-answer oracle, 20 random\n"
      "instances per row (10 views, 3 connections of 2 views each).\n\n");
  limcap::TextTable table({"Topology", "P(bound)", "Instances",
                           "Framework recall", "Baseline recall",
                           "Framework strictly better", "Joins skipped"});
  struct RowSpec {
    CatalogSpec::Topology topology;
    const char* name;
    double bound_probability;
  };
  for (const RowSpec& row : std::initializer_list<RowSpec>{
           {CatalogSpec::Topology::kStar, "star", 0.2},
           {CatalogSpec::Topology::kStar, "star", 0.5},
           {CatalogSpec::Topology::kStar, "star", 0.8},
           {CatalogSpec::Topology::kRandom, "random", 0.2},
           {CatalogSpec::Topology::kRandom, "random", 0.5},
           {CatalogSpec::Topology::kRandom, "random", 0.8},
       }) {
    Totals totals = Sweep(row.topology, row.bound_probability, 20);
    char p[16];
    std::snprintf(p, sizeof(p), "%.1f", row.bound_probability);
    table.AddRow({row.name, p, std::to_string(totals.instances),
                  Percent(totals.framework, totals.complete),
                  Percent(totals.baseline, totals.complete),
                  std::to_string(totals.framework_wins) + "/" +
                      std::to_string(totals.instances),
                  std::to_string(totals.skipped_connections)});
    reporter.AddRow(std::string(row.name) + "_p" + p)
        .Set("instances", double(totals.instances))
        .Set("complete_answers", double(totals.complete))
        .Set("framework_answers", double(totals.framework))
        .Set("baseline_answers", double(totals.baseline))
        .Set("framework_wins", double(totals.framework_wins))
        .Set("skipped_connections", double(totals.skipped_connections));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("invariant violations (baseline ⊄ framework or framework ⊄ "
              "complete): %d\n",
              failures);
  reporter.Invariant("baseline subset of framework subset of complete",
                     failures == 0);
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
