// Reproduces the paper's Example 2.1 artifacts:
//   E1 — Table 1 (the four CD sources) and the Figure 1 instance,
//   E2 — Figure 2 (the 15-rule program Π(Q, V)),
//   E3 — Table 2 (the source-query trace),
//   E4 — Table 3 (final IDB extents and the answer {$15, $13, $10}),
// plus the comparisons the paper narrates: the complete answer
// {$15, $13, $11, $10} and the per-join baseline's {$15}.
//
// The binary self-checks every artifact and exits non-zero on mismatch.

#include <cstdio>
#include <set>
#include <string>

#include "common/text_table.h"
#include "datalog/parser.h"
#include "exec/baseline_executor.h"
#include "exec/oracle.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"

#include "bench_report.h"

namespace {

using limcap::TextTable;
using limcap::Value;
using limcap::paperdata::MakeExample21;
using limcap::relational::Row;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_paper_example21");

void Check(bool ok, const char* what) {
  reporter.Invariant(what, ok);
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++failures;
}

std::set<Row> Rows(const limcap::relational::Relation& relation) {
  auto decoded = relation.DecodedRows();
  return std::set<Row>(decoded.begin(), decoded.end());
}

std::set<Row> Prices(std::initializer_list<const char*> prices) {
  std::set<Row> rows;
  for (const char* price : prices) rows.insert({Value::String(price)});
  return rows;
}

constexpr const char* kFigure2 =
    "ans(P) :- v1^(t1, C), v3^(C, A, P)."
    "ans(P) :- v1^(t1, C), v4^(C, A, P)."
    "ans(P) :- v2^(t1, C), v3^(C, A, P)."
    "ans(P) :- v2^(t1, C), v4^(C, A, P)."
    "v1^(S, C) :- song(S), v1(S, C)."
    "cd(C) :- song(S), v1(S, C)."
    "v2^(S, C) :- cd(C), v2(S, C)."
    "song(S) :- cd(C), v2(S, C)."
    "v3^(C, A, P) :- cd(C), v3(C, A, P)."
    "artist(A) :- cd(C), v3(C, A, P)."
    "price(P) :- cd(C), v3(C, A, P)."
    "v4^(C, A, P) :- artist(A), v4(C, A, P)."
    "cd(C) :- artist(A), v4(C, A, P)."
    "price(P) :- artist(A), v4(C, A, P)."
    "song(t1).";

}  // namespace

int main() {
  limcap::paperdata::PaperExample example = MakeExample21();

  std::printf("=== E1: Table 1 — four sources of musical CDs ===\n");
  TextTable table1({"Source", "Contents", "Must Bind"});
  for (const auto& view : example.views) {
    std::string must_bind;
    for (const std::string& attribute : view.BoundAttributes()) {
      if (!must_bind.empty()) must_bind += ", ";
      must_bind += attribute;
    }
    table1.AddRow({"s" + view.name().substr(1),
                   view.name() + view.schema().ToString(), must_bind});
  }
  std::printf("%s\n", table1.ToString().c_str());

  std::printf("query Q = %s\n\n", example.query.ToString().c_str());

  std::printf("=== E2: Figure 2 — the program Pi(Q, V) ===\n");
  auto plan = limcap::planner::PlanQuery(example.query, example.views,
                                         example.domains);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan->full_program.ToString().c_str());
  Check(plan->full_program.size() == 15, "program has 15 rules as in Fig. 2");
  auto golden = limcap::datalog::ParseProgram(kFigure2);
  Check(golden.ok() && plan->full_program == *golden,
        "program matches Figure 2 rule-for-rule (up to renaming)");
  Check(plan->relevance.relevant_union.size() == 4,
        "all four views are relevant (no trimming possible here)");

  std::printf("\n=== E3: Table 2 — evaluating the program ===\n");
  // Execute Figure 2's program itself (the optimized program computes the
  // same answer but elides the pure-bookkeeping price/domain rules that
  // Table 3 reports).
  limcap::exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto report = answerer.AnswerUnoptimized(example.query);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("(productive queries; the paper's Table 2 shows one valid "
              "order — ours is round-based)\n%s\n",
              report->exec.log.ToTable(/*productive_only=*/true).c_str());
  std::set<std::string> productive;
  for (const auto& record : report->exec.log.records()) {
    if (record.tuples_returned > 0) productive.insert(record.RenderedQuery());
  }
  Check(productive == std::set<std::string>{
                          "v1(t1, C)", "v1(t2, C)", "v2(S, c2)", "v2(S, c4)",
                          "v3(c1, A, P)", "v3(c3, A, P)", "v4(C, a1, P)",
                          "v4(C, a3, P)"},
        "the 8 productive source queries are exactly Table 2's");
  std::printf("  (total queries incl. unproductive probes: %zu)\n",
              report->exec.log.total_queries());

  std::printf("\n=== E4: Table 3 — results of the program ===\n");
  TextTable table3({"IDB", "Results"});
  for (const char* predicate :
       {"v1^", "v2^", "v3^", "v4^", "song", "cd", "artist", "price", "ans"}) {
    std::string rendered;
    for (const auto& row : report->exec.store.Facts(predicate)) {
      if (!rendered.empty()) rendered += " ";
      rendered += limcap::relational::RowToString(
          report->exec.store.Decode(row));
    }
    table3.AddRow({predicate, rendered});
  }
  std::printf("%s\n", table3.ToString().c_str());

  Check(Rows(report->exec.answer) == Prices({"$15", "$13", "$10"}),
        "obtainable answer is {$15, $13, $10}");

  auto complete = limcap::exec::CompleteAnswer(example.query, example.catalog);
  Check(complete.ok() &&
            Rows(*complete) == Prices({"$15", "$13", "$11", "$10"}),
        "complete answer is {$15, $13, $11, $10} ($11 unobtainable)");

  limcap::exec::BaselineExecutor baseline(&example.catalog);
  auto per_join = baseline.Execute(example.query);
  Check(per_join.ok() && Rows(per_join->answer) == Prices({"$15"}),
        "per-join baseline ([10,14,16]) obtains only {$15}");
  Check(per_join.ok() && per_join->skipped_connections.size() == 3,
        "baseline skips 3 of the 4 joins as inexecutable");

  std::printf("\n%s\n", failures == 0
                            ? "Example 2.1 reproduced exactly."
                            : "MISMATCHES FOUND — see above.");
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
