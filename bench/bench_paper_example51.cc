// Reproduces the paper's Example 5.1 (Figure 5) — E6 in DESIGN.md:
// the connection T = {v1, v2, v3} with kernel {D}; v4 (pattern ff,
// frees D) is relevant, while v5 — although it can bind E — is provably
// irrelevant (Theorem 5.1). We verify the claim operationally: executing
// without v5 returns the same answer; executing without v4 returns none.
//
// Self-checking; exits non-zero on mismatch.

#include <cstdio>
#include <memory>
#include <set>

#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/find_rel.h"

#include "bench_report.h"

namespace {

using limcap::capability::InMemorySource;
using limcap::capability::SourceCatalog;
using limcap::paperdata::MakeExample51;
using limcap::paperdata::PaperExample;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_paper_example51");

void Check(bool ok, const char* what) {
  reporter.Invariant(what, ok);
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++failures;
}

/// Copy of the example's catalog without one view.
PaperExample Without(const PaperExample& example, const std::string& drop) {
  PaperExample out;
  out.domains = example.domains;
  out.query = example.query;
  for (const auto& view : example.views) {
    if (view.name() == drop) continue;
    auto* source = dynamic_cast<InMemorySource*>(
        example.catalog.Find(view.name()).value());
    out.views.push_back(view);
    out.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, source->data())));
  }
  return out;
}

}  // namespace

int main() {
  PaperExample example = MakeExample51();

  std::printf("=== E6: Figure 5 — the source views of Example 5.1 ===\n%s\n",
              example.catalog.ToString().c_str());
  std::printf("query Q = %s\n\n", example.query.ToString().c_str());

  auto report = limcap::planner::FindRelevantViews(
      example.query, example.query.connections()[0], example.views,
      example.domains);
  if (!report.ok()) {
    std::fprintf(stderr, "FIND_REL failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("FIND_REL:\n%s\n", report->ToString().c_str());

  Check(!report->independent, "T = {v1, v2, v3} is not independent");
  Check(report->kernel == limcap::planner::AttributeSet{"D"},
        "the kernel of T is {D}");
  Check(report->kernel_bclosure == std::set<std::string>{"v4"},
        "b-closure({D}) = {v4}");
  Check(report->relevant_views ==
            std::set<std::string>{"v1", "v2", "v3", "v4"},
        "relevant views are {v1, v2, v3, v4}; v5 is irrelevant");

  // Operational verification of (ir)relevance.
  limcap::exec::QueryAnswerer full(&example.catalog, example.domains);
  auto with_all = full.Answer(example.query);

  PaperExample no_v5 = Without(example, "v5");
  limcap::exec::QueryAnswerer without_v5(&no_v5.catalog, no_v5.domains);
  auto answer_no_v5 = without_v5.Answer(no_v5.query);

  PaperExample no_v4 = Without(example, "v4");
  limcap::exec::QueryAnswerer without_v4(&no_v4.catalog, no_v4.domains);
  auto answer_no_v4 = without_v4.Answer(no_v4.query);

  if (!with_all.ok() || !answer_no_v5.ok() || !answer_no_v4.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("answer with all views:  %s\n",
              with_all->exec.answer.ToString().c_str());
  std::printf("answer without v5:      %s\n",
              answer_no_v5->exec.answer.ToString().c_str());
  std::printf("answer without v4:      %s\n\n",
              answer_no_v4->exec.answer.ToString().c_str());

  Check(with_all->exec.answer.size() == 1,
        "the obtainable answer has the one tuple <f, g>");
  Check(with_all->exec.answer == answer_no_v5->exec.answer,
        "removing the irrelevant v5 does not change the answer");
  Check(answer_no_v4->exec.answer.empty(),
        "removing the relevant v4 loses the whole answer");
  Check(with_all->exec.log.QueriesTo("v5") == 0,
        "the optimized plan never queries v5");

  std::printf("\n%s\n", failures == 0 ? "Example 5.1 reproduced exactly."
                                      : "MISMATCHES FOUND — see above.");
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
