// Reproduces the paper's Example 4.1 artifacts:
//   E5 — Figures 3 and 4: the five-view catalog and the 15-rule program;
//        the independence analysis (T1 independent, T2 not);
//   E9 — Figure 8: the optimized program (9 rules) after FIND_REL
//        trimming (drops v5's rules) and useless-rule removal (drops
//        domB, domD, v4^, domE), with the answer preserved.
//
// Self-checking; exits non-zero on mismatch.

#include <cstdio>
#include <set>

#include "datalog/parser.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/closure.h"

#include "bench_report.h"

namespace {

using limcap::Value;
using limcap::paperdata::MakeExample41;
using limcap::relational::Row;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_paper_example41");

void Check(bool ok, const char* what) {
  reporter.Invariant(what, ok);
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++failures;
}

constexpr const char* kFigure4 =
    "ans(D) :- v1^(a0, C), v3^(C, D)."
    "ans(D) :- v2^(a0, B, C), v3^(C, D)."
    "v1^(A, C) :- domA(A), v1(A, C)."
    "domC(C) :- domA(A), v1(A, C)."
    "v2^(A, B, C) :- domC(C), v2(A, B, C)."
    "domA(A) :- domC(C), v2(A, B, C)."
    "domB(B) :- domC(C), v2(A, B, C)."
    "v3^(C, D) :- domC(C), v3(C, D)."
    "domD(D) :- domC(C), v3(C, D)."
    "v4^(C, E) :- v4(C, E)."
    "domC(C) :- v4(C, E)."
    "domE(E) :- v4(C, E)."
    "v5^(E, F) :- domE(E), v5(E, F)."
    "domF(F) :- domE(E), v5(E, F)."
    "domA(a0).";

constexpr const char* kFigure8 =
    "ans(D) :- v1^(a0, C), v3^(C, D)."
    "ans(D) :- v2^(a0, B, C), v3^(C, D)."
    "v1^(A, C) :- domA(A), v1(A, C)."
    "domC(C) :- domA(A), v1(A, C)."
    "v2^(A, B, C) :- domC(C), v2(A, B, C)."
    "domA(A) :- domC(C), v2(A, B, C)."
    "v3^(C, D) :- domC(C), v3(C, D)."
    "domC(C) :- v4(C, E)."
    "domA(a0).";

}  // namespace

int main() {
  limcap::paperdata::PaperExample example = MakeExample41();

  std::printf("=== E5: Figure 3 — the source views of Example 4.1 ===\n%s\n",
              example.catalog.ToString().c_str());
  std::printf("query Q = %s\n\n", example.query.ToString().c_str());

  // Independence analysis (Section 4).
  auto views_named = [&](std::initializer_list<const char*> names) {
    std::vector<limcap::capability::SourceView> out;
    for (const char* name : names) {
      for (const auto& view : example.views) {
        if (view.name() == name) out.push_back(view);
      }
    }
    return out;
  };
  bool t1_independent =
      limcap::planner::IsIndependent({"A"}, views_named({"v1", "v3"}));
  bool t2_independent =
      limcap::planner::IsIndependent({"A"}, views_named({"v2", "v3"}));
  Check(t1_independent, "T1 = {v1, v3} is independent (Theorem 4.1 applies)");
  Check(!t2_independent, "T2 = {v2, v3} is not independent");

  auto plan = limcap::planner::PlanQuery(example.query, example.views,
                                         example.domains);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== E5: Figure 4 — Pi(Q, V), %zu rules ===\n%s\n",
              plan->full_program.size(),
              plan->full_program.ToString().c_str());
  auto fig4 = limcap::datalog::ParseProgram(kFigure4);
  Check(fig4.ok() && plan->full_program == *fig4,
        "program matches Figure 4 rule-for-rule");

  std::printf("\n=== E9: Figure 8 — the optimized program, %zu rules ===\n%s\n",
              plan->optimized_program.size(),
              plan->optimized_program.ToString().c_str());
  auto fig8 = limcap::datalog::ParseProgram(kFigure8);
  Check(fig8.ok() && plan->optimized_program == *fig8,
        "optimized program matches Figure 8 rule-for-rule");
  Check(plan->relevance.relevant_union ==
            std::set<std::string>{"v1", "v2", "v3", "v4"},
        "V_r = {v1, v2, v3, v4}: v5 trimmed by FIND_REL");
  Check(plan->removed_rules.size() == 4,
        "4 useless rules removed (domB, domD, v4^, domE)");

  // The optimization preserves the answer and saves source accesses.
  limcap::exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto optimized = answerer.Answer(example.query);
  auto unoptimized = answerer.AnswerUnoptimized(example.query);
  if (!optimized.ok() || !unoptimized.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  Check(optimized->exec.answer == unoptimized->exec.answer,
        "optimized and unoptimized programs compute the same answer");
  Check(optimized->exec.log.QueriesTo("v5") == 0 &&
            unoptimized->exec.log.QueriesTo("v5") > 0,
        "only the unoptimized program wastes queries on v5");
  std::printf(
      "\nsource queries: optimized %zu vs unoptimized %zu; answer %s\n",
      optimized->exec.log.total_queries(),
      unoptimized->exec.log.total_queries(),
      optimized->exec.answer.ToString().c_str());

  std::printf("\n%s\n", failures == 0 ? "Example 4.1 reproduced exactly."
                                      : "MISMATCHES FOUND — see above.");
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
