// End-to-end answering latency through the interned execution path:
// Mediator::Answer from user query to decoded report, one session
// dictionary from the mediator down to the sources and back.
//
// Two workloads:
//   P1 — Example 2.1 phrased as a mediator view (cd_info defined by the
//        four source joins), the paper's running example.
//   P2 — a generated 400-view chain catalog where one query walks a
//        multi-view connection, the repeated-access shape that stresses
//        per-round query construction.
//
// Each run also reports the dictionary counters so the benchmark doubles
// as a check of the single-translation invariant (post-ingest
// translations must be zero) and quantifies what lazy log rendering
// saves versus eager rendering. Output is one JSON row per measurement.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "mediator/mediator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::Value;
using limcap::ValueDictionary;
using limcap::mediator::Mediator;
using limcap::mediator::MediatorQuery;
using limcap::mediator::MediatorView;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_exec_pipeline");

struct Timing {
  double min_us = 0;
  double mean_us = 0;
  double p50_us = 0;
};

/// Times `fn` (which answers one query and returns the report) over
/// `iters` runs after one warmup.
template <typename Fn>
Timing Measure(std::size_t iters, Fn&& fn) {
  fn();  // warmup
  std::vector<double> samples;
  samples.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  Timing timing;
  timing.min_us = samples.front();
  timing.p50_us = samples[samples.size() / 2];
  double sum = 0;
  for (double s : samples) sum += s;
  timing.mean_us = sum / samples.size();
  return timing;
}

void EmitRow(const std::string& bench, std::size_t iters,
             const Timing& timing, const limcap::exec::AnswerReport& report) {
  const auto& dict = report.exec.session_dict;
  std::printf(
      "{\"bench\": \"%s\", \"iters\": %zu, \"min_us\": %.1f, "
      "\"p50_us\": %.1f, \"mean_us\": %.1f, \"answer_rows\": %zu, "
      "\"source_queries\": %zu, \"dict_size\": %zu, "
      "\"encodes\": %llu, \"decodes\": %llu, "
      "\"post_ingest_translations\": %llu}\n",
      bench.c_str(), iters, timing.min_us, timing.p50_us, timing.mean_us,
      report.exec.answer.size(), report.exec.log.total_queries(),
      dict ? dict->size() : 0,
      dict ? (unsigned long long)dict->encode_count() : 0ull,
      dict ? (unsigned long long)dict->decode_count() : 0ull,
      (unsigned long long)report.exec.post_ingest_translations);
  reporter.AddRow(bench)
      .Set("iters", double(iters))
      .Set("min_us", timing.min_us)
      .Set("p50_us", timing.p50_us)
      .Set("mean_us", timing.mean_us)
      .Set("answer_rows", double(report.exec.answer.size()))
      .Set("source_queries", double(report.exec.log.total_queries()))
      .Set("dict_size", dict ? double(dict->size()) : 0);
  const bool single_translation = report.exec.post_ingest_translations == 0;
  reporter.Invariant(bench + ": no post-ingest translations",
                     single_translation);
  if (!single_translation) {
    std::fprintf(stderr, "FAIL: %s translated values after ingest\n",
                 bench.c_str());
    ++failures;
  }
}

void BenchExample21() {
  auto example = limcap::paperdata::MakeExample21();
  Mediator mediator(&example.catalog, example.domains);
  MediatorView cd_info;
  cd_info.name = "cd_info";
  cd_info.exported_attributes = {"Song", "Price"};
  cd_info.definitions = example.query.connections();
  if (!mediator.Define(std::move(cd_info)).ok()) {
    std::fprintf(stderr, "FAIL: cd_info definition rejected\n");
    ++failures;
    return;
  }
  MediatorQuery query;
  query.view = "cd_info";
  query.selections = {{"Song", Value::String("t1")}};
  query.outputs = {"Price"};

  constexpr std::size_t kIters = 200;
  limcap::Result<limcap::exec::AnswerReport> last =
      limcap::Status::Internal("never ran");
  Timing timing = Measure(kIters, [&] { last = mediator.Answer(query); });
  if (!last.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", last.status().ToString().c_str());
    ++failures;
    return;
  }
  if (last->exec.answer.size() != 3) {
    std::fprintf(stderr, "FAIL: expected the 3-price answer, got %zu\n",
                 last->exec.answer.size());
    ++failures;
  }
  EmitRow("example21_mediator", kIters, timing, *last);

  // Acceptance check: with tracing enabled, the same answering run must
  // yield a Chrome-loadable trace whose span aggregates reconcile
  // exactly with EvalStats and FetchReport.
  limcap::obs::Tracer tracer;
  limcap::obs::MetricsRegistry metrics;
  limcap::exec::ExecOptions traced_options;
  traced_options.tracer = &tracer;
  traced_options.metrics = &metrics;
  auto traced = mediator.Answer(query, traced_options);
  if (!traced.ok()) {
    std::fprintf(stderr, "FAIL: traced run: %s\n",
                 traced.status().ToString().c_str());
    ++failures;
    return;
  }
  const auto& eval = traced->exec.datalog_stats;
  const auto& fetch = traced->exec.fetch_report;
  const bool aggregates_match =
      tracer.CountSpans("eval.round") == eval.iterations &&
      tracer.SumCounter("eval.round", "activations") ==
          double(eval.rule_activations) &&
      tracer.CountSpans("fetch.batch") == fetch.batches &&
      tracer.SumCounter("fetch", "attempts") == double(fetch.total_attempts) &&
      tracer.SumCounter("fetch", "retries") == double(fetch.total_retries);
  reporter.Invariant("example21 trace aggregates match EvalStats/FetchReport",
                     aggregates_match);
  if (!aggregates_match) {
    std::fprintf(stderr,
                 "FAIL: example21 span aggregates diverge from stats\n");
    ++failures;
  }
  const std::string chrome = limcap::obs::ChromeTraceJson(tracer);
  const bool chrome_ok = chrome.find("\"traceEvents\"") != std::string::npos &&
                         chrome.find("\"answer\"") != std::string::npos;
  reporter.Invariant("example21 Chrome trace exported", chrome_ok);
  if (!chrome_ok) {
    std::fprintf(stderr, "FAIL: example21 Chrome trace export malformed\n");
    ++failures;
  }
  reporter.AddRow("example21_traced")
      .Set("spans", double(tracer.spans().size()))
      .Set("eval_rounds", double(eval.iterations))
      .Set("fetch_batches", double(fetch.batches))
      .Set("chrome_trace_bytes", double(chrome.size()));
}

void BenchGeneratedChain() {
  limcap::workload::CatalogSpec spec;
  spec.topology = limcap::workload::CatalogSpec::Topology::kChain;
  spec.num_views = 400;
  spec.tuples_per_view = 20;
  spec.domain_size = 12;
  spec.seed = 20260807;
  auto instance = limcap::workload::GenerateInstance(spec);

  // In a bf-chain only a walk entered at its first attribute is fully
  // queryable; probe generator seeds until one produces an answerable
  // query (deterministic: the probe order is fixed).
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 1;
  query_spec.views_per_connection = 4;
  limcap::Result<limcap::planner::Query> generated =
      limcap::Status::NotFound("no seed probed");
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    query_spec.seed = seed;
    auto candidate = limcap::workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto probe = answerer.Answer(*candidate);
    if (probe.ok() && !probe->exec.answer.empty()) {
      generated = *candidate;
      break;
    }
  }
  if (!generated.ok()) {
    std::fprintf(stderr, "FAIL: no answerable generated query in 64 seeds\n");
    ++failures;
    return;
  }

  Mediator mediator(&instance.catalog, instance.domains);
  MediatorView view;
  view.name = "walk";
  for (const auto& input : generated->inputs()) {
    view.exported_attributes.push_back(input.attribute);
  }
  for (const auto& output : generated->outputs()) {
    view.exported_attributes.push_back(output);
  }
  view.definitions = generated->connections();
  if (!mediator.Define(std::move(view)).ok()) {
    std::fprintf(stderr, "FAIL: generated view rejected\n");
    ++failures;
    return;
  }
  MediatorQuery query;
  query.view = "walk";
  query.selections = generated->inputs();
  query.outputs = generated->outputs();

  constexpr std::size_t kIters = 50;
  limcap::Result<limcap::exec::AnswerReport> last =
      limcap::Status::Internal("never ran");
  Timing lazy = Measure(kIters, [&] { last = mediator.Answer(query); });
  if (!last.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", last.status().ToString().c_str());
    ++failures;
    return;
  }
  EmitRow("chain400_mediator", kIters, lazy, *last);

  // Same query with eager log rendering: the difference is exactly what
  // the lazy access log avoids paying on the hot path.
  limcap::exec::ExecOptions eager_options;
  eager_options.eager_render_log = true;
  limcap::Result<limcap::exec::AnswerReport> eager_last =
      limcap::Status::Internal("never ran");
  Timing eager = Measure(
      kIters, [&] { eager_last = mediator.Answer(query, eager_options); });
  if (!eager_last.ok()) {
    std::fprintf(stderr, "FAIL: %s\n",
                 eager_last.status().ToString().c_str());
    ++failures;
    return;
  }
  const auto& dict = eager_last->exec.session_dict;
  std::printf(
      "{\"bench\": \"chain400_mediator_eager_log\", \"iters\": %zu, "
      "\"min_us\": %.1f, \"p50_us\": %.1f, \"mean_us\": %.1f, "
      "\"decodes\": %llu, \"lazy_decodes_saved\": %llu}\n",
      kIters, eager.min_us, eager.p50_us, eager.mean_us,
      dict ? (unsigned long long)dict->decode_count() : 0ull,
      dict && last->exec.session_dict &&
              dict->decode_count() > last->exec.session_dict->decode_count()
          ? (unsigned long long)(dict->decode_count() -
                                 last->exec.session_dict->decode_count())
          : 0ull);
  reporter.AddRow("chain400_mediator_eager_log")
      .Set("min_us", eager.min_us)
      .Set("p50_us", eager.p50_us)
      .Set("mean_us", eager.mean_us);

  // Acceptance check: an attached-but-disabled Tracer must cost at most
  // 5% over no tracer at all on the 400-view chain (ISSUE: the disabled
  // hot path is two branches, no allocation). Interleaved min-of-N
  // pairs cancel machine drift; the absolute floor absorbs scheduler
  // jitter on runs this short; three attempts keep a one-off stall from
  // failing the bench.
  limcap::obs::Tracer disabled(/*enabled=*/false);
  limcap::exec::ExecOptions disabled_options;
  disabled_options.tracer = &disabled;
  constexpr std::size_t kOverheadIters = 30;
  constexpr int kAttempts = 3;
  constexpr double kSlackFloorUs = 200.0;
  double base_min_us = 0, traced_min_us = 0, overhead = 0;
  bool within_budget = false;
  for (int attempt = 0; attempt < kAttempts && !within_budget; ++attempt) {
    base_min_us = 1e300;
    traced_min_us = 1e300;
    for (std::size_t i = 0; i < kOverheadIters; ++i) {
      auto start = std::chrono::steady_clock::now();
      last = mediator.Answer(query);
      auto mid = std::chrono::steady_clock::now();
      auto traced = mediator.Answer(query, disabled_options);
      auto stop = std::chrono::steady_clock::now();
      if (!last.ok() || !traced.ok()) {
        std::fprintf(stderr, "FAIL: overhead probe run failed\n");
        ++failures;
        return;
      }
      base_min_us = std::min(
          base_min_us,
          std::chrono::duration<double, std::micro>(mid - start).count());
      traced_min_us = std::min(
          traced_min_us,
          std::chrono::duration<double, std::micro>(stop - mid).count());
    }
    overhead = base_min_us > 0 ? traced_min_us / base_min_us - 1.0 : 0.0;
    within_budget = traced_min_us <= base_min_us * 1.05 + kSlackFloorUs;
  }
  if (!disabled.empty()) {
    std::fprintf(stderr, "FAIL: disabled tracer recorded spans\n");
    ++failures;
  }
  reporter.Invariant("disabled tracer recorded nothing", disabled.empty());
  std::printf("{\"bench\": \"chain400_disabled_tracer_overhead\", "
              "\"base_min_us\": %.1f, \"traced_min_us\": %.1f, "
              "\"overhead_pct\": %.2f}\n",
              base_min_us, traced_min_us, 100.0 * overhead);
  reporter.AddRow("chain400_disabled_tracer_overhead")
      .Set("base_min_us", base_min_us)
      .Set("traced_min_us", traced_min_us)
      .Set("overhead_pct", 100.0 * overhead);
  reporter.Invariant("disabled tracer overhead <= 5%", within_budget);
  if (!within_budget) {
    std::fprintf(stderr,
                 "FAIL: disabled tracer costs %.2f%% (budget 5%%)\n",
                 100.0 * overhead);
    ++failures;
  }
}

}  // namespace

int main() {
  BenchExample21();
  BenchGeneratedChain();
  reporter.SetFailures(failures);
  reporter.Write();
  if (failures != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
