// The shared benchmark reporter: every bench_*.cc writes one
// machine-readable BENCH_<name>.json next to whatever it prints for
// humans, so CI (and regression tooling) consumes every benchmark the
// same way. Two shapes:
//
//   * self-checking harnesses use Reporter — named rows of numeric
//     fields plus pass/fail invariants, serialized on Write();
//   * google-benchmark binaries use LIMCAP_BENCHMARK_MAIN_WITH_REPORT
//     (in place of BENCHMARK_MAIN), which injects gbench's native JSON
//     writer targeting the same BENCH_<name>.json naming scheme unless
//     the caller already passed --benchmark_out.
//
// LIMCAP_BENCH_OUT_DIR overrides the output directory (default:
// bench/out/ under the working directory, created on demand — keeps
// local runs from littering the repo root; the four committed
// paper-example baselines at the root are regenerated deliberately
// with LIMCAP_BENCH_OUT_DIR=.).

#ifndef LIMCAP_BENCH_BENCH_REPORT_H_
#define LIMCAP_BENCH_BENCH_REPORT_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace limcap::benchreport {

inline std::string OutputPath(const std::string& bench_name) {
  std::string path;
  if (const char* dir = std::getenv("LIMCAP_BENCH_OUT_DIR")) {
    path = dir;
    if (!path.empty() && path.back() != '/') path += '/';
  } else {
    path = "bench/out/";
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    // On failure (read-only cwd) fall back to the working directory
    // rather than losing the report.
    if (ec) path.clear();
  }
  return path + "BENCH_" + bench_name + ".json";
}

/// Collects one harness run's results and writes them as one JSON
/// object:
///
///   {"bench": "...", "rows": [{"name": "...", k: v, ...}, ...],
///    "invariants": [{"name": "...", "passed": true}, ...],
///    "failures": 0}
///
/// Numbers render as %.6g (integers stay integral); every row keeps its
/// field order.
class Reporter {
 public:
  explicit Reporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Row {
   public:
    Row& Set(const std::string& key, double value) {
      numbers_.emplace_back(key, value);
      return *this;
    }
    Row& Set(const std::string& key, std::string value) {
      strings_.emplace_back(key, std::move(value));
      return *this;
    }

   private:
    friend class Reporter;
    std::string name_;
    std::vector<std::pair<std::string, double>> numbers_;
    std::vector<std::pair<std::string, std::string>> strings_;
  };

  Row& AddRow(const std::string& name) {
    rows_.emplace_back();
    rows_.back().name_ = name;
    return rows_.back();
  }

  /// Records a self-check outcome; a failed invariant also counts as a
  /// failure in the summary.
  void Invariant(const std::string& name, bool passed) {
    invariants_.emplace_back(name, passed);
    if (!passed) ++failures_;
  }
  void AddFailures(int count) { failures_ += count; }
  /// Overrides the failure count — for harnesses whose own counter also
  /// covers checks that never became invariants.
  void SetFailures(int count) { failures_ = count; }
  int failures() const { return failures_; }

  /// Writes BENCH_<name>.json. Returns false (and reports on stderr)
  /// when the file cannot be written.
  bool Write() const {
    const std::string path = OutputPath(bench_name_);
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs(Render().c_str(), out);
    std::fclose(out);
    return true;
  }

  std::string Render() const {
    std::string out = "{\"bench\": \"" + Escape(bench_name_) + "\"";
    out += ", \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      if (i > 0) out += ", ";
      out += "{\"name\": \"" + Escape(row.name_) + "\"";
      for (const auto& [key, value] : row.numbers_) {
        out += ", \"" + Escape(key) + "\": " + Number(value);
      }
      for (const auto& [key, value] : row.strings_) {
        out += ", \"" + Escape(key) + "\": \"" + Escape(value) + "\"";
      }
      out += "}";
    }
    out += "], \"invariants\": [";
    for (std::size_t i = 0; i < invariants_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"name\": \"" + Escape(invariants_[i].first) +
             "\", \"passed\": " +
             (invariants_[i].second ? "true" : "false") + "}";
    }
    out += "], \"failures\": " + std::to_string(failures_) + "}\n";
    return out;
  }

 private:
  static std::string Escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  static std::string Number(double value) {
    char buffer[32];
    if (value == static_cast<long long>(value)) {
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    }
    return buffer;
  }

  std::string bench_name_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, bool>> invariants_;
  int failures_ = 0;
};

}  // namespace limcap::benchreport

// Only meaningful in translation units that already include
// benchmark/benchmark.h (the timing benchmarks).
#ifdef BENCHMARK_BENCHMARK_H_
namespace limcap::benchreport {

/// BENCHMARK_MAIN with the BENCH_<name>.json contract: unless the user
/// passed --benchmark_out, gbench's JSON writer targets the shared
/// naming scheme (console output is unchanged).
inline int GBenchMainWithReport(const char* bench_name, int argc,
                                char** argv) {
  std::vector<std::string> storage(argv, argv + argc);
  bool has_out = false;
  for (const std::string& arg : storage) {
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    storage.push_back("--benchmark_out=" + OutputPath(bench_name));
    storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& arg : storage) args.push_back(arg.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace limcap::benchreport

#define LIMCAP_BENCHMARK_MAIN_WITH_REPORT(name)                       \
  int main(int argc, char** argv) {                                   \
    return limcap::benchreport::GBenchMainWithReport(name, argc, argv); \
  }
#endif  // BENCHMARK_BENCHMARK_H_

#endif  // LIMCAP_BENCH_BENCH_REPORT_H_
