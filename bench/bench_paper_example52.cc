// Reproduces the paper's Example 5.2 (Figure 6) — E7 in DESIGN.md:
// the connection T = {v1, v2, v3} over the cyclic catalog has exactly
// three kernels, {A}, {C} and {E}, and — per Lemma 5.3 — all three have
// the same backward-closure {v1, v2, v3, v4}, so FIND_REL's answer does
// not depend on which kernel it picks.
//
// Self-checking; exits non-zero on mismatch.

#include <cstdio>
#include <set>

#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "planner/closure.h"
#include "planner/find_rel.h"

#include "bench_report.h"

namespace {

using limcap::paperdata::MakeExample52;
using limcap::planner::AttributeSet;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_paper_example52");

void Check(bool ok, const char* what) {
  reporter.Invariant(what, ok);
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) ++failures;
}

std::string SetText(const AttributeSet& set) {
  std::string out = "{";
  for (const std::string& item : set) {
    if (out.size() > 1) out += ", ";
    out += item;
  }
  return out + "}";
}

}  // namespace

int main() {
  limcap::paperdata::PaperExample example = MakeExample52();

  std::printf("=== E7: Figure 6 — multiple kernels of a connection ===\n%s\n",
              example.catalog.ToString().c_str());
  std::printf("query Q = %s\n\n", example.query.ToString().c_str());

  std::vector<limcap::capability::SourceView> connection_views;
  for (const char* name : {"v1", "v2", "v3"}) {
    for (const auto& view : example.views) {
      if (view.name() == name) connection_views.push_back(view);
    }
  }

  auto kernels = limcap::planner::AllKernels({"B"}, connection_views);
  std::printf("kernels of T = {v1, v2, v3}:");
  for (const AttributeSet& kernel : kernels) {
    std::printf(" %s", SetText(kernel).c_str());
  }
  std::printf("\n");
  Check(kernels ==
            std::vector<AttributeSet>{{"A"}, {"C"}, {"E"}},
        "T has exactly the kernels {A}, {C}, {E}");

  std::set<std::string> expected_bclosure{"v1", "v2", "v3", "v4"};
  bool all_match = true;
  for (const AttributeSet& kernel : kernels) {
    auto bclosure = limcap::planner::ComputeBClosure(kernel, example.views);
    std::printf("b-closure(%s) = {", SetText(kernel).c_str());
    bool first = true;
    for (const auto& view : bclosure) {
      std::printf("%s%s", first ? "" : ", ", view.c_str());
      first = false;
    }
    std::printf("}\n");
    if (bclosure != expected_bclosure) all_match = false;
  }
  Check(all_match,
        "all kernels share the backward-closure {v1, v2, v3, v4} "
        "(Lemma 5.3)");

  auto report = limcap::planner::FindRelevantViews(
      example.query, example.query.connections()[0], example.views,
      example.domains);
  Check(report.ok() && report->relevant_views == expected_bclosure,
        "FIND_REL returns all four views as relevant");

  // End-to-end: the cycle v1 -> v2 -> v3 -> v1 is broken by v4's free E.
  limcap::exec::QueryAnswerer answerer(&example.catalog, example.domains);
  auto answer = answerer.Answer(example.query);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("\nanswer: %s\n", answer->exec.answer.ToString().c_str());
  Check(answer->exec.answer.size() == 1 &&
            answer->exec.answer.Contains({limcap::Value::String("a1"),
                                          limcap::Value::String("c1"),
                                          limcap::Value::String("e1")}),
        "the cycle is unlocked through v4 and yields <a1, c1, e1>");

  std::printf("\n%s\n", failures == 0 ? "Example 5.2 reproduced exactly."
                                      : "MISMATCHES FOUND — see above.");
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
