// X4 — Datalog engine ablations: naive vs semi-naive bottom-up
// evaluation, and program-construction cost.
//
// The paper's framework rests on evaluating a recursive program; the
// engine choice dominates runtime once domains grow. We measure:
//   * transitive closure over chains and random graphs (the classic
//     recursive workload) under both strategies,
//   * evaluation of a generated Π(Q, V) over materialized EDB relations,
//   * BuildProgram cost as the catalog grows.

#include <benchmark/benchmark.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "exec/oracle.h"
#include "planner/program_builder.h"
#include "workload/generator.h"

namespace {

using limcap::Value;
using limcap::datalog::Evaluator;
using limcap::datalog::FactStore;
using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;

const char* kTransitiveClosure =
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Z) :- tc(X, Y), e(Y, Z).\n";

void RunTransitiveClosure(benchmark::State& state,
                          const Evaluator::Options& options) {
  const int n = static_cast<int>(state.range(0));
  auto program = limcap::datalog::ParseProgram(kTransitiveClosure);
  limcap::datalog::EvalStats last_stats;
  for (auto _ : state) {
    state.PauseTiming();
    FactStore store;
    for (int i = 0; i < n - 1; ++i) {
      store.Insert("e", {Value::Int64(i), Value::Int64(i + 1)}).ok();
    }
    auto evaluator = Evaluator::Create(*program, &store, options);
    state.ResumeTiming();
    if (!(*evaluator)->Run().ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(store.Count("tc"));
    state.PauseTiming();
    last_stats = (*evaluator)->stats();
    state.ResumeTiming();
  }
  state.counters["derived"] = static_cast<double>(n * (n - 1) / 2);
  state.counters["probes"] = static_cast<double>(last_stats.probes);
  state.counters["activations"] =
      static_cast<double>(last_stats.rule_activations);
  state.counters["rounds"] = static_cast<double>(last_stats.iterations);
  state.counters["eval_threads"] =
      static_cast<double>(last_stats.threads_used);
}

void BM_TransitiveClosureNaive(benchmark::State& state) {
  RunTransitiveClosure(state, {Evaluator::Mode::kNaive, 0});
}
void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  RunTransitiveClosure(state, {Evaluator::Mode::kSemiNaive, 0});
}
void BM_TransitiveClosureParallel(benchmark::State& state) {
  RunTransitiveClosure(state, {Evaluator::Mode::kParallelSemiNaive, 4});
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(32)->Arg(64)->Arg(128)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_TransitiveClosureSemiNaive)->Arg(32)->Arg(64)->Arg(128)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_TransitiveClosureParallel)->Arg(32)->Arg(64)->Arg(128)->Unit(
    benchmark::kMillisecond);

/// Evaluates a generated Π(Q, V) with the EDB fully materialized (the
/// pure Datalog cost, no source round-trips), both modes.
void RunPiEvaluation(benchmark::State& state, Evaluator::Mode mode) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.num_views = 12;
  spec.num_attributes = 8;
  spec.tuples_per_view = static_cast<std::size_t>(state.range(0));
  spec.domain_size = spec.tuples_per_view / 2 + 1;
  spec.seed = 3;
  GeneratedInstance instance = GenerateInstance(spec);
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 2;
  query_spec.views_per_connection = 3;
  auto query = limcap::workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) {
    state.SkipWithError("no valid query");
    return;
  }
  auto program = limcap::planner::BuildProgram(*query, instance.views,
                                               instance.domains);
  if (!program.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    FactStore store;
    for (const auto& [name, data] : instance.full_data) {
      for (const auto& row : data.DecodedRows()) store.Insert(name, row).ok();
    }
    auto evaluator = Evaluator::Create(*program, &store, mode);
    state.ResumeTiming();
    if (!(*evaluator)->Run().ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(store.TotalCount());
  }
}

void BM_PiEvaluationNaive(benchmark::State& state) {
  RunPiEvaluation(state, Evaluator::Mode::kNaive);
}
void BM_PiEvaluationSemiNaive(benchmark::State& state) {
  RunPiEvaluation(state, Evaluator::Mode::kSemiNaive);
}
BENCHMARK(BM_PiEvaluationNaive)->Arg(100)->Arg(400)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_PiEvaluationSemiNaive)->Arg(100)->Arg(400)->Unit(
    benchmark::kMillisecond);

void BM_BuildProgram(benchmark::State& state) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = static_cast<std::size_t>(state.range(0));
  spec.tuples_per_view = 1;
  GeneratedInstance instance = GenerateInstance(spec);
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= spec.num_views; ++i) {
    names.push_back("v" + std::to_string(i));
  }
  limcap::planner::Query query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A" + std::to_string(spec.num_views)},
      {limcap::planner::Connection(names)});
  for (auto _ : state) {
    auto program = limcap::planner::BuildProgram(query, instance.views,
                                                 instance.domains);
    benchmark::DoNotOptimize(program);
  }
  state.counters["rules"] =
      static_cast<double>(3 * spec.num_views + 2);  // alpha+domain+conn+fact
}
BENCHMARK(BM_BuildProgram)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

/// Storage ablation backing the dictionary-encoding design choice: the
/// engine's FactStore keeps rows as vectors of 32-bit interned ids, while
/// the public Relation keeps full Values. Same workload — insert N
/// two-column string rows, then probe every distinct key — on both.
void BM_FactStoreInsertProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    limcap::datalog::FactStore store;
    for (int i = 0; i < n; ++i) {
      store
          .Insert("p", {Value::String("key_" + std::to_string(i % 500)),
                        Value::String("val_" + std::to_string(i))})
          .ok();
    }
    std::size_t hits = 0;
    for (int k = 0; k < 500; ++k) {
      limcap::ValueId id;
      if (store.dict().Lookup(Value::String("key_" + std::to_string(k)),
                              &id)) {
        hits += store.Probe("p", {0}, {id}, store.Count("p")).size();
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FactStoreInsertProbe)->Arg(10000)->Arg(50000)->Unit(
    benchmark::kMillisecond);

void BM_RelationInsertProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    limcap::relational::Relation relation(
        limcap::relational::Schema::MakeUnsafe({"K", "V"}));
    for (int i = 0; i < n; ++i) {
      relation.InsertUnsafe({Value::String("key_" + std::to_string(i % 500)),
                             Value::String("val_" + std::to_string(i))});
    }
    std::size_t hits = 0;
    for (int k = 0; k < 500; ++k) {
      hits += relation
                  .Probe({0}, {Value::String("key_" + std::to_string(k))})
                  .size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsertProbe)->Arg(10000)->Arg(50000)->Unit(
    benchmark::kMillisecond);

void BM_ParseProgram(benchmark::State& state) {
  // Parser throughput on a realistic generated program rendered to text.
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = static_cast<std::size_t>(state.range(0));
  spec.tuples_per_view = 1;
  GeneratedInstance instance = GenerateInstance(spec);
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= spec.num_views; ++i) {
    names.push_back("v" + std::to_string(i));
  }
  limcap::planner::Query query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A" + std::to_string(spec.num_views)},
      {limcap::planner::Connection(names)});
  auto program = limcap::planner::BuildProgram(query, instance.views,
                                               instance.domains);
  std::string text = program->ToString();
  for (auto _ : state) {
    auto parsed = limcap::datalog::ParseProgram(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseProgram)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

#include "bench_report.h"

LIMCAP_BENCHMARK_MAIN_WITH_REPORT("bench_datalog_eval")
