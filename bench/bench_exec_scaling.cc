// Source-driven evaluation scaling (the Section 3.3 loop end to end):
// wall time and source accesses as the catalog deepens (chain length)
// and widens (tuples per view), plus the optimized-vs-unoptimized and
// semi-naive-vs-naive deltas on the same workloads.

#include <benchmark/benchmark.h>

#include "exec/query_answerer.h"
#include "workload/generator.h"

namespace {

using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;

struct ChainSetup {
  GeneratedInstance instance;
  limcap::planner::Query query;
};

ChainSetup MakeChain(std::size_t views, std::size_t tuples,
                     std::size_t domain) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = views;
  spec.tuples_per_view = tuples;
  spec.domain_size = domain;
  spec.seed = 17;
  ChainSetup setup{GenerateInstance(spec), limcap::planner::Query()};
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= views; ++i) {
    names.push_back("v" + std::to_string(i));
  }
  setup.query = limcap::planner::Query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A" + std::to_string(views)},
      {limcap::planner::Connection(std::move(names))});
  return setup;
}

void RunChain(benchmark::State& state, bool optimized,
              limcap::datalog::Evaluator::Mode mode) {
  ChainSetup setup = MakeChain(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)),
                               static_cast<std::size_t>(state.range(1)) / 3 +
                                   2);
  limcap::exec::QueryAnswerer answerer(&setup.instance.catalog,
                                       setup.instance.domains);
  limcap::exec::ExecOptions options;
  options.mode = mode;
  double queries = 0;
  double answers = 0;
  for (auto _ : state) {
    auto report = optimized ? answerer.Answer(setup.query, options)
                            : answerer.AnswerUnoptimized(setup.query,
                                                         options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    queries = static_cast<double>(report->exec.log.total_queries());
    answers = static_cast<double>(report->exec.answer.size());
    benchmark::DoNotOptimize(report);
  }
  state.counters["src_queries"] = queries;
  state.counters["answers"] = answers;
}

void BM_ChainOptimizedSemiNaive(benchmark::State& state) {
  RunChain(state, true, limcap::datalog::Evaluator::Mode::kSemiNaive);
}
void BM_ChainOptimizedNaive(benchmark::State& state) {
  RunChain(state, true, limcap::datalog::Evaluator::Mode::kNaive);
}
void BM_ChainUnoptimized(benchmark::State& state) {
  RunChain(state, false, limcap::datalog::Evaluator::Mode::kSemiNaive);
}

BENCHMARK(BM_ChainOptimizedSemiNaive)
    ->Args({4, 50})
    ->Args({8, 50})
    ->Args({16, 50})
    ->Args({8, 25})
    ->Args({8, 100})
    ->Args({8, 200})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainOptimizedNaive)
    ->Args({8, 50})
    ->Args({8, 200})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainUnoptimized)
    ->Args({8, 50})
    ->Args({8, 200})
    ->Unit(benchmark::kMillisecond);

/// Star catalogs with random adornments: the mixed realistic case.
void BM_StarEndToEnd(benchmark::State& state) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kStar;
  spec.num_views = static_cast<std::size_t>(state.range(0));
  spec.num_attributes = spec.num_views / 2 + 3;
  spec.tuples_per_view = 60;
  spec.domain_size = 20;
  spec.seed = 29;
  GeneratedInstance instance = GenerateInstance(spec);
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 3;
  query_spec.views_per_connection = 2;
  query_spec.seed = 31;
  auto query = limcap::workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) {
    state.SkipWithError("no valid query");
    return;
  }
  limcap::exec::QueryAnswerer answerer(&instance.catalog, instance.domains);
  for (auto _ : state) {
    auto report = answerer.Answer(*query);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_StarEndToEnd)->Arg(8)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

}  // namespace

#include "bench_report.h"

LIMCAP_BENCHMARK_MAIN_WITH_REPORT("bench_exec_scaling")
