// X2 — what the Section 5/6 optimizations save.
//
// Catalog: a 5-view bf-chain (the query's independent connection) plus m
// "distractor" views — ff-pattern views over the mid-chain attribute A2
// and a private attribute. The distractors are queryable, so the
// brute-force Π(Q, V) dutifully fetches them and chases the useless
// bindings they inject into domA2 (extra chain queries that can never
// reach the answer); FIND_REL proves the chain connection independent and
// trims every distractor. We report source queries, datalog facts, and
// wall time for:
//   full      — Π(Q, V)            (Section 3, unoptimized)
//   optimized — Π(Q, V_r) + dead-rule elimination (Section 6)
// sweeping m. Expected shape: the full program's cost grows linearly in
// m while the optimized one is flat, with identical answers.

#include <chrono>
#include <cstdio>
#include <memory>

#include "capability/in_memory_source.h"
#include "common/text_table.h"
#include "exec/query_answerer.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::Value;
using limcap::capability::InMemorySource;
using limcap::capability::SourceView;
using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_optimization");

struct Setup {
  GeneratedInstance instance;
  limcap::planner::Query query;
};

Setup MakeSetup(std::size_t distractors) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = 5;
  spec.tuples_per_view = 60;
  spec.domain_size = 20;
  spec.seed = 99;
  Setup setup{limcap::workload::GenerateInstance(spec),
              limcap::planner::Query(
                  {{"A0", GeneratedInstance::DomainValue("A0", 1)}}, {"A5"},
                  {limcap::planner::Connection(
                      {"v1", "v2", "v3", "v4", "v5"})})};

  // Distractors: dN(A2, ZN) [ff] with fresh values of A2 that never join
  // back to anything reachable from a0 — pure wasted work for the
  // unoptimized program.
  limcap::Rng rng(4242);
  for (std::size_t d = 0; d < distractors; ++d) {
    std::string name = "d" + std::to_string(d + 1);
    std::string private_attribute = "Z" + std::to_string(d + 1);
    SourceView view =
        SourceView::MakeUnsafe(name, {"A2", private_attribute}, "ff");
    limcap::relational::Relation data(view.schema());
    for (int t = 0; t < 40; ++t) {
      data.InsertUnsafe(
          {Value::String("junk_a2_" + std::to_string(rng.Below(200))),
           Value::String("z_" + std::to_string(rng.Below(50)))});
    }
    setup.instance.views.push_back(view);
    setup.instance.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, std::move(data))));
  }
  return setup;
}

struct Measured {
  std::size_t queries;
  std::size_t facts;
  double millis;
  std::size_t answers;
};

Measured Measure(const Setup& setup, bool optimized) {
  limcap::exec::QueryAnswerer answerer(&setup.instance.catalog,
                                       setup.instance.domains);
  auto start = std::chrono::steady_clock::now();
  auto report = optimized ? answerer.Answer(setup.query)
                          : answerer.AnswerUnoptimized(setup.query);
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    ++failures;
    return {};
  }
  return {report->exec.log.total_queries(), report->exec.store.TotalCount(),
          elapsed, report->exec.answer.size()};
}

}  // namespace

int main() {
  std::printf(
      "X2: cost of Pi(Q, V) vs the optimized program, sweeping the number\n"
      "of irrelevant 'distractor' views in the catalog. The query's\n"
      "connection is an independent 5-view chain.\n\n");
  limcap::TextTable table({"Distractors", "Full queries", "Opt queries",
                           "Full facts", "Opt facts", "Full ms", "Opt ms",
                           "Answers equal"});
  for (std::size_t m : {0u, 2u, 4u, 8u, 16u, 32u}) {
    Setup setup = MakeSetup(m);
    Measured full = Measure(setup, /*optimized=*/false);
    Measured optimized = Measure(setup, /*optimized=*/true);
    bool equal = full.answers == optimized.answers;
    if (!equal) ++failures;
    if (optimized.queries > full.queries) ++failures;
    char full_ms[32];
    char opt_ms[32];
    std::snprintf(full_ms, sizeof(full_ms), "%.2f", full.millis);
    std::snprintf(opt_ms, sizeof(opt_ms), "%.2f", optimized.millis);
    table.AddRow({std::to_string(m), std::to_string(full.queries),
                  std::to_string(optimized.queries),
                  std::to_string(full.facts),
                  std::to_string(optimized.facts), full_ms, opt_ms,
                  equal ? "yes" : "NO"});
    reporter.AddRow("distractors_" + std::to_string(m))
        .Set("full_queries", double(full.queries))
        .Set("opt_queries", double(optimized.queries))
        .Set("full_facts", double(full.facts))
        .Set("opt_facts", double(optimized.facts))
        .Set("full_ms", full.millis)
        .Set("opt_ms", optimized.millis);
    reporter.Invariant(
        "answers equal, opt <= full (" + std::to_string(m) + " distractors)",
        equal && optimized.queries <= full.queries);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: 'Full queries' grows with distractors, "
              "'Opt queries' stays flat.\n");
  std::printf("violations: %d\n", failures);
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
