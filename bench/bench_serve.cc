// Serving throughput harness: the mixed workload (paper Example 2.1 +
// bf-chain + random-topology queries, one seeded arrival order) driven
// through a ServeSession at increasing worker counts. Every request is
// submitted up front with an unbounded-enough queue, so the measured
// window is pure sustained service: wall clock from first Submit to
// last callback.
//
// Each catalog source is wrapped in a decorator that sleeps a real
// (wall-clock) delay per Execute, modeling the remote round-trips the
// in-memory stand-ins elide. That is what makes worker scaling
// hardware-independent: queries are dominated by blocked time, which
// workers overlap, so a single-core CI runner still shows the pool
// winning. The delay changes no answer bytes (fingerprints ignore
// timings by design).
//
// Self-checks (the acceptance bars for the serving layer actually
// scaling):
//   * every request completes with an OK report at every worker count;
//   * per-request answers are bit-identical (exec::OrderedFingerprint)
//     across worker counts — concurrency changes throughput, never
//     answers;
//   * the >=4-worker run sustains at least 2x the 1-worker qps.
//
// Output: one JSON row per worker count (human-readable) plus
// BENCH_serve.json via the shared reporter.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "capability/source.h"
#include "capability/source_catalog.h"
#include "exec/fingerprint.h"
#include "mediator/mediator.h"
#include "mediator/serve_session.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::mediator::Mediator;
using limcap::mediator::ServeOptions;
using limcap::mediator::ServeRequest;
using limcap::mediator::ServeResponse;
using limcap::mediator::ServeSession;

int failures = 0;
limcap::benchreport::Reporter reporter("serve");

// Wall-clock round-trip per source call. Small enough to keep the
// harness fast, large enough to dominate the per-call CPU work.
constexpr auto kRoundTrip = std::chrono::microseconds(100);

/// Delegates to a real source after sleeping one simulated round-trip.
/// The underlying source (and its catalog) must outlive the decorator;
/// concurrent Execute is safe because the in-tree sources serialize
/// internally and the sleep touches no shared state.
class SlowSource : public limcap::capability::Source {
 public:
  explicit SlowSource(limcap::capability::Source* wrapped)
      : wrapped_(wrapped) {}

  const limcap::capability::SourceView& view() const override {
    return wrapped_->view();
  }

  limcap::Result<limcap::relational::Relation> Execute(
      const limcap::capability::SourceQuery& query) override {
    std::this_thread::sleep_for(kRoundTrip);
    return wrapped_->Execute(query);
  }

 private:
  limcap::capability::Source* wrapped_;
};

/// A catalog of SlowSource decorators over `fast`, in the same
/// registration order (so the capability fingerprint — and with it plan
/// caching — behaves identically).
limcap::capability::SourceCatalog WrapSlow(
    const limcap::capability::SourceCatalog& fast) {
  limcap::capability::SourceCatalog slow;
  for (const std::string& name : fast.ViewNames()) {
    auto source = fast.Find(name);
    slow.RegisterUnsafe(std::make_unique<SlowSource>(*source));
  }
  return slow;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cross_query_coalesced = 0;
  std::vector<std::string> fingerprints;  // by request index
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

RunResult Drive(const limcap::capability::SourceCatalog& catalog,
                const limcap::workload::MixedWorkload& workload,
                std::size_t workers) {
  Mediator mediator(&catalog, workload.domains);
  ServeOptions options;
  options.workers = workers;
  options.max_queue = workload.requests.size() + 1;
  ServeSession session(&mediator, options);

  const std::size_t n = workload.requests.size();
  RunResult result;
  result.fingerprints.resize(n);
  std::vector<double> latencies(n, 0);
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t remaining = n;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    ServeRequest request;
    request.query = workload.requests[i].query;
    const auto submitted = std::chrono::steady_clock::now();
    limcap::Status admitted = session.Submit(
        std::move(request), [&, i, submitted](ServeResponse response) {
          const auto finished = std::chrono::steady_clock::now();
          std::lock_guard<std::mutex> lock(mutex);
          latencies[i] = std::chrono::duration<double, std::milli>(
                             finished - submitted)
                             .count();
          if (response.report.ok()) {
            result.fingerprints[i] =
                limcap::exec::OrderedFingerprint(response.report->exec);
          }
          if (--remaining == 0) all_done.notify_all();
        });
    Check(admitted.ok(), "every request admitted (queue sized to fit)");
    if (!admitted.ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) all_done.notify_all();
    }
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return remaining == 0; });
  }
  const auto stop = std::chrono::steady_clock::now();
  session.Shutdown();

  const ServeSession::Stats stats = session.stats();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.qps = result.wall_ms > 0
                   ? 1000.0 * static_cast<double>(n) / result.wall_ms
                   : 0;
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  result.completed = stats.completed;
  result.failed = stats.failed;
  result.cross_query_coalesced = stats.governor.cross_query_coalesced;
  return result;
}

void EmitRow(std::size_t workers, const RunResult& run) {
  const std::string name = "workers_" + std::to_string(workers);
  std::printf(
      "{\"bench\": \"serve/%s\", \"completed\": %llu, \"failed\": %llu, "
      "\"wall_ms\": %.1f, \"qps\": %.1f, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"cross_query_coalesced\": %llu}\n",
      name.c_str(), static_cast<unsigned long long>(run.completed),
      static_cast<unsigned long long>(run.failed), run.wall_ms, run.qps,
      run.p50_ms, run.p99_ms,
      static_cast<unsigned long long>(run.cross_query_coalesced));
  reporter.AddRow(name)
      .Set("workers", static_cast<double>(workers))
      .Set("completed", static_cast<double>(run.completed))
      .Set("failed", static_cast<double>(run.failed))
      .Set("wall_ms", run.wall_ms)
      .Set("qps", run.qps)
      .Set("p50_ms", run.p50_ms)
      .Set("p99_ms", run.p99_ms)
      .Set("cross_query_coalesced",
           static_cast<double>(run.cross_query_coalesced));
}

}  // namespace

int main() {
  limcap::workload::MixedWorkloadSpec spec;
  spec.seed = 20260809;
  spec.num_requests = 96;
  auto workload = limcap::workload::GenerateMixedWorkload(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  const std::size_t n = workload->requests.size();
  const limcap::capability::SourceCatalog slow_catalog =
      WrapSlow(workload->catalog);

  // Untimed warm-up pass: fills the OS caches and faults in the binary
  // so the 1-worker baseline isn't penalized for going first. Each
  // timed run still builds its own Mediator (cold plan cache) — both
  // worker counts pay identical planning work.
  (void)Drive(slow_catalog, *workload, 2);

  const RunResult serial = Drive(slow_catalog, *workload, 1);
  const RunResult pooled = Drive(slow_catalog, *workload, 4);
  EmitRow(1, serial);
  EmitRow(4, pooled);

  Check(serial.completed == n && serial.failed == 0,
        "1-worker run completes every request OK");
  Check(pooled.completed == n && pooled.failed == 0,
        "4-worker run completes every request OK");
  reporter.Invariant("all_requests_ok",
                     serial.completed == n && pooled.completed == n &&
                         serial.failed == 0 && pooled.failed == 0);

  bool identical = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (serial.fingerprints[i] != pooled.fingerprints[i]) {
      identical = false;
      std::fprintf(stderr, "fingerprint diverges at request %zu (%s)\n",
                   i,
                   limcap::workload::MixedRequestClassName(
                       workload->requests[i].query_class));
    }
  }
  Check(identical, "answers bit-identical across worker counts");
  reporter.Invariant("bit_identical_across_worker_counts", identical);

  const double speedup =
      serial.qps > 0 ? pooled.qps / serial.qps : 0;
  std::printf("{\"bench\": \"serve/scaling\", \"speedup\": %.2f}\n",
              speedup);
  reporter.AddRow("scaling").Set("speedup", speedup);
  Check(speedup >= 2.0, "4 workers sustain >= 2x the 1-worker qps");
  reporter.Invariant("four_workers_at_least_2x", speedup >= 2.0);

  reporter.Write();
  if (failures != 0) {
    std::fprintf(stderr, "%d self-check(s) failed\n", failures);
    return 1;
  }
  std::printf("bench_serve: all self-checks passed\n");
  return 0;
}
