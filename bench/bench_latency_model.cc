// Wall-clock analysis under network latencies: the evaluator's fetch
// rounds bound the achievable parallelism (queries within a round are
// independent). This harness reports estimated makespans for the paper's
// Example 2.1 and for synthetic chains/stars, under a 50 ms-per-query
// model — the integration-system argument for batching source accesses
// per round rather than issuing them one at a time.

#include <cstdio>

#include "common/text_table.h"
#include "exec/latency_model.h"
#include "exec/query_answerer.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

int failures = 0;
limcap::benchreport::Reporter reporter("bench_latency_model");

void Report(limcap::TextTable* table, const char* name,
            const limcap::exec::ExecResult& exec) {
  limcap::exec::LatencyModel model;  // 50 ms per query
  limcap::exec::MakespanReport makespan =
      limcap::exec::EstimateMakespan(exec.log, model);
  char sequential[32], parallel[32], per_source[32], speedup[32];
  std::snprintf(sequential, sizeof(sequential), "%.0f ms",
                makespan.sequential_ms);
  std::snprintf(parallel, sizeof(parallel), "%.0f ms", makespan.parallel_ms);
  std::snprintf(per_source, sizeof(per_source), "%.0f ms",
                makespan.per_source_serial_ms);
  std::snprintf(speedup, sizeof(speedup), "%.1fx", makespan.ParallelSpeedup());
  table->AddRow({name, std::to_string(exec.log.total_queries()),
                 std::to_string(makespan.rounds), sequential, per_source,
                 parallel, speedup});
  reporter.AddRow(name)
      .Set("queries", double(exec.log.total_queries()))
      .Set("rounds", double(makespan.rounds))
      .Set("sequential_ms", makespan.sequential_ms)
      .Set("per_source_serial_ms", makespan.per_source_serial_ms)
      .Set("parallel_ms", makespan.parallel_ms)
      .Set("speedup", makespan.ParallelSpeedup());
  const bool ordered =
      makespan.parallel_ms <= makespan.per_source_serial_ms + 1e-9 &&
      makespan.per_source_serial_ms <= makespan.sequential_ms + 1e-9;
  if (!ordered) ++failures;  // makespans must be ordered
  reporter.Invariant(std::string(name) + " makespans ordered", ordered);
}

}  // namespace

int main() {
  limcap::TextTable table({"Workload", "Queries", "Rounds", "Sequential",
                           "Per-source serial", "Fully parallel",
                           "Speedup"});

  {
    auto example = limcap::paperdata::MakeExample21();
    limcap::exec::QueryAnswerer answerer(&example.catalog, example.domains);
    auto report = answerer.Answer(example.query);
    if (report.ok()) Report(&table, "Example 2.1", report->exec);
  }

  for (std::size_t views : {4u, 8u, 16u}) {
    limcap::workload::CatalogSpec spec;
    spec.topology = limcap::workload::CatalogSpec::Topology::kChain;
    spec.num_views = views;
    spec.tuples_per_view = 60;
    spec.domain_size = 20;
    spec.seed = 7;
    auto instance = limcap::workload::GenerateInstance(spec);
    std::vector<std::string> names;
    for (std::size_t i = 1; i <= views; ++i) {
      names.push_back("v" + std::to_string(i));
    }
    limcap::planner::Query query(
        {{"A0", limcap::workload::GeneratedInstance::DomainValue("A0", 1)}},
        {"A" + std::to_string(views)},
        {limcap::planner::Connection(std::move(names))});
    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto report = answerer.Answer(query);
    if (report.ok()) {
      std::string name = "chain x" + std::to_string(views);
      Report(&table, name.c_str(), report->exec);
    }
  }

  std::printf("Estimated wall-clock under 50 ms/query network latency.\n"
              "Queries within a fetch round are independent and can be "
              "issued concurrently.\n\n%s\n",
              table.ToString().c_str());
  std::printf("invariants (parallel <= per-source serial <= sequential): "
              "%s\n",
              failures == 0 ? "hold" : "VIOLATED");
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
