// Cost-model calibration harness: analytic estimates of source accesses
// (planner/cost_model) vs the measured accesses of the brute-force
// evaluation, across random instances and topologies. The estimator is a
// System-R-style cardinality model run as a fixpoint; the target is
// order-of-magnitude fidelity — good enough to decide budgets
// (Section 7.2) before touching any source.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/text_table.h"
#include "exec/query_answerer.h"
#include "planner/cost_model.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::workload::CatalogSpec;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_cost_model");

struct RowResult {
  std::size_t instances = 0;
  double geo_mean_ratio = 1;  // accumulates log-ratios
  double worst_ratio = 1;
  double sum_actual = 0;
  double sum_estimated = 0;
};

RowResult Sweep(CatalogSpec::Topology topology, std::size_t seeds) {
  RowResult result;
  double log_sum = 0;
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    CatalogSpec spec;
    spec.topology = topology;
    spec.num_views = 9;
    spec.num_attributes = 8;
    spec.tuples_per_view = 40;
    spec.domain_size = 15;
    spec.seed = seed * 131 + 3;
    auto instance = limcap::workload::GenerateInstance(spec);
    limcap::workload::QuerySpec query_spec;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 2;
    query_spec.seed = seed * 7 + 2;
    auto query = limcap::workload::GenerateQuery(instance, query_spec);
    if (!query.ok()) continue;

    auto stats = limcap::planner::CollectCatalogStats(instance.catalog);
    if (!stats.ok()) continue;
    auto estimate = limcap::planner::EstimateExecution(
        *query, instance.views, instance.domains, *stats);

    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto report = answerer.AnswerUnoptimized(*query);
    if (!report.ok()) {
      ++failures;
      continue;
    }
    double actual = double(report->exec.log.total_queries());
    if (actual < 3 || estimate.total_queries <= 0) continue;
    double ratio = estimate.total_queries / actual;
    log_sum += std::log(ratio);
    result.worst_ratio = std::max({result.worst_ratio, ratio, 1.0 / ratio});
    result.sum_actual += actual;
    result.sum_estimated += estimate.total_queries;
    ++result.instances;
  }
  if (result.instances > 0) {
    result.geo_mean_ratio = std::exp(log_sum / double(result.instances));
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Cost-model calibration: estimated vs measured source "
              "queries\n(brute-force program, random instances).\n\n");
  limcap::TextTable table({"Topology", "Instances", "Avg actual",
                           "Avg estimated", "Geo-mean est/actual",
                           "Worst |ratio|"});
  struct Named {
    CatalogSpec::Topology topology;
    const char* name;
  };
  for (const Named& row : {Named{CatalogSpec::Topology::kChain, "chain"},
                           Named{CatalogSpec::Topology::kStar, "star"},
                           Named{CatalogSpec::Topology::kRandom, "random"}}) {
    RowResult result = Sweep(row.topology, 24);
    char actual[32], estimated[32], geo[32], worst[32];
    std::snprintf(actual, sizeof(actual), "%.1f",
                  result.instances ? result.sum_actual / result.instances : 0);
    std::snprintf(estimated, sizeof(estimated), "%.1f",
                  result.instances
                      ? result.sum_estimated / result.instances
                      : 0);
    std::snprintf(geo, sizeof(geo), "%.2fx", result.geo_mean_ratio);
    std::snprintf(worst, sizeof(worst), "%.1fx", result.worst_ratio);
    table.AddRow({row.name, std::to_string(result.instances), actual,
                  estimated, geo, worst});
    reporter.AddRow(row.name)
        .Set("instances", double(result.instances))
        .Set("geo_mean_ratio", result.geo_mean_ratio)
        .Set("worst_ratio", result.worst_ratio);
    const bool in_contract =
        result.instances == 0 ||
        (result.geo_mean_ratio <= 10 && result.geo_mean_ratio >= 0.1);
    if (!in_contract) ++failures;  // estimator drifted out of its contract
    reporter.Invariant(std::string(row.name) + " geo-mean within 10x",
                       in_contract);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("contract: geometric-mean ratio within 10x per topology; "
              "violations: %d\n", failures);
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
