// Simulated-makespan comparison of the asynchronous source-access
// runtime on the 400-view chain catalog: the same query answered with
//
//   serial      — one source call at a time (the legacy dispatch),
//   concurrent  — each fetch round's frontier dispatched on the thread
//                 pool under the global and per-source in-flight caps,
//   faulty      — concurrent, with every source failing each query's
//                 first attempt (retries absorb the faults).
//
// Time is the scheduler's deterministic simulated clock (50 ms base
// round trip), so the numbers are reproducible anywhere; wall-clock per
// answering run is reported alongside. Self-checks: the three runs must
// return identical answers and source-query counts, and the concurrent
// makespan must beat serial by at least 2x — the acceptance bar for the
// runtime actually overlapping a round's independent fetches.
//
// A second section measures what the binding-flow static prune
// (StaticAnalysisMode::kPrune) saves in source queries on the ungated
// Π(Q, V), on the chain and on a random topology, with decoy sources
// standing in for the reachable-but-irrelevant views real catalogs
// carry. Self-checks: pruning preserves the answer, saves >=10% of the
// fetches on at least one workload, and the analysis itself stays under
// 100 ms on the 400-view chain.
//
// A third section measures the adaptive dispatch layer
// (RuntimeOptions::adaptive): dynamic relevance skips on a decoyed join
// that static analysis cannot prune (self-check: adaptive fetches <
// static fetches with skips > 0 and the same answer), and hedged
// requests on a one-source walk under seeded latency spikes
// (self-check: the hedged run's simulated makespan beats the unhedged
// run's with at least one hedge fired and the same answer).
// Output is one JSON row per configuration.

#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "analysis/binding_flow.h"
#include "capability/catalog_text.h"
#include "capability/in_memory_source.h"
#include "common/value.h"
#include "exec/query_answerer.h"
#include "planner/program_builder.h"
#include "runtime/fault_injection.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::capability::InMemorySource;
using limcap::capability::SourceCatalog;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_async_runtime");

struct Run {
  limcap::Result<limcap::exec::AnswerReport> report =
      limcap::Status::Internal("never ran");
  double wall_ms = 0;
};

Run AnswerOnce(const SourceCatalog& catalog,
               const limcap::planner::DomainMap& domains,
               const limcap::planner::Query& query,
               const limcap::exec::ExecOptions& options) {
  limcap::exec::QueryAnswerer answerer(&catalog, domains);
  Run run;
  auto start = std::chrono::steady_clock::now();
  run.report = answerer.Answer(query, options);
  auto stop = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return run;
}

void EmitRow(const std::string& bench, const Run& run) {
  const limcap::runtime::FetchReport& fetch =
      run.report->exec.fetch_report;
  std::printf(
      "{\"bench\": \"%s\", \"answer_rows\": %zu, \"source_queries\": %zu, "
      "\"batches\": %zu, \"attempts\": %zu, \"retries\": %zu, "
      "\"coalesced\": %zu, \"simulated_makespan_ms\": %.1f, "
      "\"simulated_sequential_ms\": %.1f, \"speedup\": %.2f, "
      "\"skipped_dynamic\": %zu, \"hedged\": %zu, \"hedge_wins\": %zu, "
      "\"degraded\": %s, \"wall_ms\": %.1f}\n",
      bench.c_str(), run.report->exec.answer.size(),
      run.report->exec.log.total_queries(), fetch.batches,
      fetch.total_attempts, fetch.total_retries, fetch.coalesced_hits,
      fetch.simulated_makespan_ms, fetch.simulated_sequential_ms,
      fetch.SequentialSpeedup(), fetch.skipped_dynamic, fetch.hedged,
      fetch.hedge_wins, fetch.degraded() ? "true" : "false",
      run.wall_ms);
  reporter.AddRow(bench)
      .Set("answer_rows", double(run.report->exec.answer.size()))
      .Set("source_queries", double(run.report->exec.log.total_queries()))
      .Set("batches", double(fetch.batches))
      .Set("attempts", double(fetch.total_attempts))
      .Set("retries", double(fetch.total_retries))
      .Set("coalesced", double(fetch.coalesced_hits))
      .Set("simulated_makespan_ms", fetch.simulated_makespan_ms)
      .Set("simulated_sequential_ms", fetch.simulated_sequential_ms)
      .Set("speedup", fetch.SequentialSpeedup())
      .Set("skipped_dynamic", double(fetch.skipped_dynamic))
      .Set("hedged", double(fetch.hedged))
      .Set("hedge_wins", double(fetch.hedge_wins))
      .Set("degraded", fetch.degraded() ? "true" : "false")
      .Set("wall_ms", run.wall_ms);
}

Run AnswerUnoptimizedOnce(const SourceCatalog& catalog,
                          const limcap::planner::DomainMap& domains,
                          const limcap::planner::Query& query,
                          const limcap::exec::ExecOptions& options) {
  limcap::exec::QueryAnswerer answerer(&catalog, domains);
  Run run;
  auto start = std::chrono::steady_clock::now();
  run.report = answerer.AnswerUnoptimized(query, options);
  auto stop = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return run;
}

/// A copy of `instance`'s catalog plus `count` decoy sources, each "bf"
/// on a free-position attribute of one of `query`'s connection views (so
/// the decoy is reachable once the walk populates that domain) with a
/// fresh second attribute feeding nothing. The decoys — like every
/// catalog view outside the walk that the walk's domains unlock — are
/// fetched by the ungated unoptimized run and statically irrelevant, so
/// kPrune's channel dropping is what separates the two configurations.
SourceCatalog DecoyedCatalog(
    const limcap::workload::GeneratedInstance& instance,
    const limcap::planner::Query& query, std::size_t count) {
  SourceCatalog catalog;
  for (const auto& view : instance.views) {
    catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view,
                                   instance.full_data.at(view.name()))));
  }
  std::size_t made = 0;
  for (const std::string& name : query.connections()[0].view_names()) {
    if (made >= count) break;
    for (const auto& view : instance.views) {
      if (view.name() != name) continue;
      const auto free = view.templates()[0].FreePositions();
      if (free.empty()) break;
      const std::string bound_attr = view.schema().attribute(free[0]);
      ++made;
      auto decoy = limcap::capability::SourceView::MakeUnsafe(
          "decoy" + std::to_string(made),
          {bound_attr, "DecoyF" + std::to_string(made)}, "bf");
      limcap::relational::Relation data(decoy.schema());
      catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(std::move(decoy), std::move(data))));
      break;
    }
  }
  return catalog;
}

/// Fetch-count savings of StaticAnalysisMode::kPrune on the full
/// Π(Q, V): ungated versus pruned unoptimized execution over the
/// decoyed catalog. Returns the fractional reduction in source queries;
/// emits one row per configuration and checks answer preservation.
double RunPruneComparison(const std::string& label,
                          const SourceCatalog& catalog,
                          const limcap::planner::DomainMap& domains,
                          const limcap::planner::Query& query) {
  limcap::exec::ExecOptions off;
  Run ungated = AnswerUnoptimizedOnce(catalog, domains, query, off);
  limcap::exec::ExecOptions prune;
  prune.static_analysis = limcap::exec::StaticAnalysisMode::kPrune;
  Run pruned = AnswerUnoptimizedOnce(catalog, domains, query, prune);
  for (const Run* run : {&ungated, &pruned}) {
    if (!run->report.ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", label.c_str(),
                   run->report.status().ToString().c_str());
      ++failures;
      return 0;
    }
  }
  EmitRow(label + "_ungated", ungated);
  EmitRow(label + "_pruned", pruned);

  const bool answers_match =
      ungated.report->exec.answer == pruned.report->exec.answer;
  reporter.Invariant(label + ": prune preserves the answer", answers_match);
  if (!answers_match) {
    std::fprintf(stderr, "FAIL: %s: prune changed the answer\n",
                 label.c_str());
    ++failures;
  }
  const double before =
      double(ungated.report->exec.log.total_queries());
  const double after = double(pruned.report->exec.log.total_queries());
  const double savings = before > 0 ? 1.0 - after / before : 0.0;
  const std::size_t pruned_channels =
      pruned.report->analysis.binding_flow.PrunedChannels().size();
  std::printf("{\"bench\": \"%s_summary\", \"source_queries_ungated\": %.0f, "
              "\"source_queries_pruned\": %.0f, \"fetch_savings\": %.3f, "
              "\"pruned_channels\": %zu}\n",
              label.c_str(), before, after, savings, pruned_channels);
  reporter.AddRow(label + "_summary")
      .Set("source_queries_ungated", before)
      .Set("source_queries_pruned", after)
      .Set("fetch_savings", savings)
      .Set("pruned_channels", double(pruned_channels));
  return savings;
}

}  // namespace

int main() {
  limcap::workload::CatalogSpec spec;
  spec.topology = limcap::workload::CatalogSpec::Topology::kChain;
  spec.num_views = 400;
  spec.tuples_per_view = 20;
  spec.domain_size = 12;
  spec.seed = 20260807;
  auto instance = limcap::workload::GenerateInstance(spec);

  // In a bf-chain only a walk entered at its first attribute is fully
  // queryable; probe generator seeds (deterministic: the probe order is
  // fixed) and keep the answerable query with the widest fetch rounds —
  // the binding fan-out down the walk is what concurrency can overlap.
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 1;
  query_spec.views_per_connection = 8;
  limcap::Result<limcap::planner::Query> query =
      limcap::Status::NotFound("no seed probed");
  std::size_t best_queries = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    query_spec.seed = seed;
    auto candidate = limcap::workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto probe = answerer.Answer(*candidate);
    if (probe.ok() && !probe->exec.answer.empty() &&
        probe->exec.log.total_queries() > best_queries) {
      best_queries = probe->exec.log.total_queries();
      query = *candidate;
    }
  }
  if (!query.ok()) {
    std::fprintf(stderr, "FAIL: no answerable generated query in 64 seeds\n");
    return 1;
  }

  limcap::exec::ExecOptions serial_options;
  Run serial = AnswerOnce(instance.catalog, instance.domains, *query,
                          serial_options);

  limcap::exec::ExecOptions concurrent_options;
  concurrent_options.runtime.concurrent = true;
  concurrent_options.runtime.max_in_flight = 16;
  concurrent_options.runtime.per_source_max_in_flight = 8;
  Run concurrent = AnswerOnce(instance.catalog, instance.domains, *query,
                              concurrent_options);

  // Same chain with every source failing each distinct query's first
  // attempt; one retry per fetch absorbs every fault.
  limcap::runtime::FaultSpec faults;
  faults.fail_first_per_query = 1;
  SourceCatalog flaky;
  for (const auto& view : instance.views) {
    auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        view, instance.full_data.at(view.name())));
    flaky.RegisterUnsafe(std::make_unique<limcap::runtime::FaultInjectingSource>(
        std::move(inner), faults));
  }
  limcap::exec::ExecOptions faulty_options = concurrent_options;
  faulty_options.continue_on_source_error = true;
  faulty_options.runtime.retry.max_attempts = 2;
  faulty_options.runtime.retry.jitter = 0;
  Run faulty = AnswerOnce(flaky, instance.domains, *query, faulty_options);

  for (const Run* run : {&serial, &concurrent, &faulty}) {
    if (!run->report.ok()) {
      std::fprintf(stderr, "FAIL: %s\n",
                   run->report.status().ToString().c_str());
      return 1;
    }
  }
  EmitRow("chain400_serial", serial);
  EmitRow("chain400_concurrent", concurrent);
  EmitRow("chain400_concurrent_faulty", faulty);

  // Self-checks.
  const bool answers_match =
      (serial.report->exec.answer == concurrent.report->exec.answer) &&
      (serial.report->exec.answer == faulty.report->exec.answer);
  reporter.Invariant("answers identical across configurations", answers_match);
  if (!answers_match) {
    std::fprintf(stderr, "FAIL: answers differ across configurations\n");
    ++failures;
  }
  const bool queries_match = serial.report->exec.log.total_queries() ==
                             concurrent.report->exec.log.total_queries();
  reporter.Invariant("serial and concurrent issue equal source queries",
                     queries_match);
  if (!queries_match) {
    std::fprintf(stderr, "FAIL: concurrent run issued a different number "
                         "of source queries\n");
    ++failures;
  }
  const bool recovered = !faulty.report->exec.fetch_report.degraded() &&
                         faulty.report->exec.fetch_report.total_retries > 0;
  reporter.Invariant("faulty run recovers via retries", recovered);
  if (!recovered) {
    std::fprintf(stderr, "FAIL: faulty run should recover via retries\n");
    ++failures;
  }
  const double serial_makespan =
      serial.report->exec.fetch_report.simulated_makespan_ms;
  const double concurrent_makespan =
      concurrent.report->exec.fetch_report.simulated_makespan_ms;
  const double speedup =
      concurrent_makespan > 0 ? serial_makespan / concurrent_makespan : 1.0;
  std::printf("{\"bench\": \"chain400_summary\", "
              "\"serial_makespan_ms\": %.1f, "
              "\"concurrent_makespan_ms\": %.1f, "
              "\"serial_over_concurrent\": %.2f}\n",
              serial_makespan, concurrent_makespan, speedup);
  reporter.AddRow("chain400_summary")
      .Set("serial_makespan_ms", serial_makespan)
      .Set("concurrent_makespan_ms", concurrent_makespan)
      .Set("serial_over_concurrent", speedup);
  reporter.Invariant("concurrent dispatch at least 2x faster than serial",
                     speedup >= 2.0);
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: concurrent dispatch only %.2fx faster (need 2x)\n",
                 speedup);
    ++failures;
  }
  // ------------------------------------------------------------------
  // Static prune: fetch-count savings of StaticAnalysisMode::kPrune on
  // the ungated Π(Q, V), chain and random topologies. The ungated
  // unoptimized run fetches every reachable catalog view (the chain
  // cascades past the walk's end; the decoys ride the walk's domains);
  // kPrune drops the statically irrelevant channels before scheduling.
  SourceCatalog chain_decoyed = DecoyedCatalog(instance, *query, 3);
  const double chain_savings = RunPruneComparison(
      "chain400_prune", chain_decoyed, instance.domains, *query);

  limcap::workload::CatalogSpec random_spec;
  random_spec.topology = limcap::workload::CatalogSpec::Topology::kRandom;
  random_spec.num_views = 8;
  random_spec.num_attributes = 7;
  random_spec.tuples_per_view = 25;
  random_spec.domain_size = 12;
  random_spec.seed = 4242;
  auto random_instance = limcap::workload::GenerateInstance(random_spec);
  limcap::workload::QuerySpec random_query_spec;
  random_query_spec.num_connections = 1;
  random_query_spec.views_per_connection = 3;
  limcap::Result<limcap::planner::Query> random_query =
      limcap::Status::NotFound("no seed probed");
  for (uint64_t seed = 1; seed <= 64 && !random_query.ok(); ++seed) {
    random_query_spec.seed = seed;
    auto candidate =
        limcap::workload::GenerateQuery(random_instance, random_query_spec);
    if (!candidate.ok()) continue;
    limcap::exec::QueryAnswerer answerer(&random_instance.catalog,
                                         random_instance.domains);
    auto probe = answerer.AnswerUnoptimized(*candidate);
    if (probe.ok() && !probe->exec.answer.empty()) random_query = *candidate;
  }
  double random_savings = 0;
  if (random_query.ok()) {
    SourceCatalog random_decoyed =
        DecoyedCatalog(random_instance, *random_query, 3);
    random_savings = RunPruneComparison(
        "random_prune", random_decoyed, random_instance.domains, *random_query);
  } else {
    std::fprintf(stderr,
                 "FAIL: no answerable random-topology query in 64 seeds\n");
    ++failures;
  }
  const double best_savings =
      chain_savings > random_savings ? chain_savings : random_savings;
  reporter.Invariant("static prune saves >=10% of source queries on at "
                     "least one workload",
                     best_savings >= 0.10);
  if (best_savings < 0.10) {
    std::fprintf(stderr,
                 "FAIL: best fetch savings %.3f below the 10%% bar\n",
                 best_savings);
    ++failures;
  }

  // Analysis cost: the binding-flow pass itself on the full 400-view
  // chain Π(Q, V) must stay under the 100 ms budget that justifies
  // running it by default.
  auto chain_program = limcap::planner::BuildProgram(*query, instance.views,
                                                     instance.domains);
  if (!chain_program.ok()) {
    std::fprintf(stderr, "FAIL: BuildProgram: %s\n",
                 chain_program.status().ToString().c_str());
    ++failures;
  } else {
    // CPU time, best of three: the budget is on the pass's cost, not on
    // scheduler luck when ctest packs this harness beside other suites.
    limcap::analysis::BindingFlowResult flow;
    double analysis_ms = 1e9;
    for (int i = 0; i < 3; ++i) {
      const std::clock_t start = std::clock();
      flow = limcap::analysis::AnalyzeBindingFlow(
          *chain_program, instance.views, instance.domains);
      const std::clock_t stop = std::clock();
      const double ms = 1000.0 * double(stop - start) / CLOCKS_PER_SEC;
      if (ms < analysis_ms) analysis_ms = ms;
    }
    std::printf("{\"bench\": \"chain400_binding_flow\", \"rules\": %zu, "
                "\"channels\": %zu, \"analysis_ms\": %.2f}\n",
                chain_program->rules().size(), flow.channels.size(),
                analysis_ms);
    reporter.AddRow("chain400_binding_flow")
        .Set("rules", double(chain_program->rules().size()))
        .Set("channels", double(flow.channels.size()))
        .Set("analysis_ms", analysis_ms);
    reporter.Invariant("binding-flow analysis under 100ms on the 400-view "
                       "chain",
                       analysis_ms <= 100.0);
    if (analysis_ms > 100.0) {
      std::fprintf(stderr,
                   "FAIL: binding-flow analysis took %.2f ms (budget 100)\n",
                   analysis_ms);
      ++failures;
    }
  }

  // ------------------------------------------------------------------
  // Adaptive dispatch, part 1: dynamic relevance beyond static pruning.
  // A two-connection join where the second connection feeds decoy Cd
  // values into the shared domain: STATICALLY every v2/x combination is
  // relevant (the channels all reach the goal), so kPrune keeps them
  // all — but at dispatch time the frozen alpha extents certify most
  // combos useless. The fetch gap between the static run and the
  // adaptive run is therefore pure runtime relevance.
  {
    constexpr std::size_t kJunk = 60;
    std::string text = "source v1(Song, Cd) [bf] { (t1, c1) }\n";
    text += "source v2(Cd, Price) [bf] { (c1, p5) }\n";
    text += "source w(Song, Cd) [bf] {";
    for (std::size_t j = 0; j < kJunk; ++j) {
      text += " (t1, j" + std::to_string(j) + ")";
    }
    text += " }\nsource x(Cd, Price) [bf] { (c1, p7) }\n";
    auto parsed = limcap::capability::ParseCatalog(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FAIL: junk-feeder catalog: %s\n",
                   parsed.status().ToString().c_str());
      ++failures;
    } else {
      const limcap::planner::Query junk_query(
          {{"Song", limcap::Value::String("t1")}}, {"Price"},
          {limcap::planner::Connection({"v1", "v2"}),
           limcap::planner::Connection({"w", "x"})});
      const limcap::planner::DomainMap no_domains;
      limcap::exec::ExecOptions static_options;
      Run static_run = AnswerOnce(parsed->catalog, no_domains, junk_query,
                                  static_options);
      limcap::exec::ExecOptions adaptive_options;
      adaptive_options.runtime.adaptive.enabled = true;
      Run adaptive_run = AnswerOnce(parsed->catalog, no_domains, junk_query,
                                    adaptive_options);
      bool runs_ok = true;
      for (const Run* run : {&static_run, &adaptive_run}) {
        if (!run->report.ok()) {
          std::fprintf(stderr, "FAIL: junk-feeder run: %s\n",
                       run->report.status().ToString().c_str());
          ++failures;
          runs_ok = false;
        }
      }
      if (runs_ok) {
        EmitRow("junkfeeder_static", static_run);
        EmitRow("junkfeeder_adaptive", adaptive_run);
        const bool answers_match = static_run.report->exec.answer ==
                                   adaptive_run.report->exec.answer;
        reporter.Invariant("adaptive dispatch preserves the junk-feeder "
                           "answer",
                           answers_match);
        if (!answers_match) {
          std::fprintf(stderr,
                       "FAIL: adaptive dispatch changed the answer\n");
          ++failures;
        }
        const std::size_t static_fetches =
            static_run.report->exec.log.total_queries();
        const std::size_t adaptive_fetches =
            adaptive_run.report->exec.log.total_queries();
        const std::size_t skips =
            adaptive_run.report->exec.fetch_report.skipped_dynamic;
        const double savings =
            static_fetches > 0
                ? 1.0 - double(adaptive_fetches) / double(static_fetches)
                : 0.0;
        std::printf("{\"bench\": \"junkfeeder_summary\", "
                    "\"source_queries_static\": %zu, "
                    "\"source_queries_adaptive\": %zu, "
                    "\"dynamic_skips\": %zu, \"fetch_savings\": %.3f}\n",
                    static_fetches, adaptive_fetches, skips, savings);
        reporter.AddRow("junkfeeder_summary")
            .Set("source_queries_static", double(static_fetches))
            .Set("source_queries_adaptive", double(adaptive_fetches))
            .Set("dynamic_skips", double(skips))
            .Set("fetch_savings", savings);
        reporter.Invariant("dynamic relevance skips fetches static "
                           "analysis keeps",
                           skips > 0 && adaptive_fetches < static_fetches);
        if (skips == 0 || adaptive_fetches >= static_fetches) {
          std::fprintf(stderr,
                       "FAIL: adaptive dispatch saved nothing beyond "
                       "static analysis (%zu vs %zu fetches, %zu skips)\n",
                       adaptive_fetches, static_fetches, skips);
          ++failures;
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Adaptive dispatch, part 2: hedged requests under latency spikes. A
  // one-source walk (hub's rows form a linked chain over one shared
  // domain, one fetch per round) warms the per-source latency profile
  // across rounds; seeded spikes then blow individual calls past the
  // learned p95, and the hedge caps them near p95 + base. Same seeded
  // spikes both runs — hedging is the only difference.
  {
    constexpr std::size_t kHops = 100;
    limcap::runtime::FaultSpec spikes;
    spikes.latency_spike_rate = 0.03;
    spikes.latency_spike_ms = 450;
    spikes.seed = 9;
    auto spiky_catalog = [&spikes] {
      SourceCatalog catalog;
      auto hub = limcap::capability::SourceView::MakeUnsafe(
          "hub", {"K", "K2"}, "bf");
      limcap::relational::Relation rows(hub.schema());
      for (std::size_t i = 0; i < kHops; ++i) {
        rows.InsertUnsafe({limcap::Value::String("k" + std::to_string(i)),
                           limcap::Value::String("k" + std::to_string(i + 1))});
      }
      auto inner = std::make_unique<InMemorySource>(
          InMemorySource::MakeUnsafe(std::move(hub), std::move(rows)));
      catalog.RegisterUnsafe(
          std::make_unique<limcap::runtime::FaultInjectingSource>(
              std::move(inner), spikes));
      return catalog;
    };
    // Both attributes draw from one domain, so each fetched K2 re-enters
    // the frontier as next round's K.
    limcap::planner::DomainMap walk_domains;
    walk_domains.SetDomain("K", "domNode");
    walk_domains.SetDomain("K2", "domNode");
    const limcap::planner::Query walk_query(
        {{"K", limcap::Value::String("k0")}}, {"K2"},
        {limcap::planner::Connection({"hub"})});

    limcap::exec::ExecOptions unhedged_options;
    unhedged_options.runtime.adaptive.enabled = true;
    unhedged_options.runtime.adaptive.hedge = false;
    // Dynamic pruning correctly certifies the walk's tail useless (only
    // hub(k0, _) rows can reach the answer); keep it fetching anyway —
    // this section wants a long same-source call stream to warm the
    // latency profile, and measures hedging alone.
    unhedged_options.runtime.adaptive.dynamic_pruning = false;
    SourceCatalog unhedged_catalog = spiky_catalog();
    Run unhedged = AnswerOnce(unhedged_catalog, walk_domains, walk_query,
                              unhedged_options);
    limcap::exec::ExecOptions hedged_options = unhedged_options;
    hedged_options.runtime.adaptive.hedge = true;
    SourceCatalog hedged_catalog = spiky_catalog();
    Run hedged = AnswerOnce(hedged_catalog, walk_domains, walk_query,
                            hedged_options);
    bool runs_ok = true;
    for (const Run* run : {&unhedged, &hedged}) {
      if (!run->report.ok()) {
        std::fprintf(stderr, "FAIL: spiky walk run: %s\n",
                     run->report.status().ToString().c_str());
        ++failures;
        runs_ok = false;
      }
    }
    if (runs_ok) {
      EmitRow("spiky_walk_unhedged", unhedged);
      EmitRow("spiky_walk_hedged", hedged);
      const bool answers_match =
          unhedged.report->exec.answer == hedged.report->exec.answer;
      reporter.Invariant("hedging preserves the walk answer", answers_match);
      if (!answers_match) {
        std::fprintf(stderr, "FAIL: hedging changed the answer\n");
        ++failures;
      }
      const double unhedged_ms =
          unhedged.report->exec.fetch_report.simulated_makespan_ms;
      const double hedged_ms =
          hedged.report->exec.fetch_report.simulated_makespan_ms;
      const std::size_t hedge_count =
          hedged.report->exec.fetch_report.hedged;
      std::printf("{\"bench\": \"spiky_walk_summary\", "
                  "\"unhedged_makespan_ms\": %.1f, "
                  "\"hedged_makespan_ms\": %.1f, \"hedged_fetches\": %zu, "
                  "\"makespan_saved_ms\": %.1f}\n",
                  unhedged_ms, hedged_ms, hedge_count,
                  unhedged_ms - hedged_ms);
      reporter.AddRow("spiky_walk_summary")
          .Set("unhedged_makespan_ms", unhedged_ms)
          .Set("hedged_makespan_ms", hedged_ms)
          .Set("hedged_fetches", double(hedge_count))
          .Set("makespan_saved_ms", unhedged_ms - hedged_ms);
      reporter.Invariant("hedging wins makespan under latency spikes",
                         hedge_count > 0 && hedged_ms < unhedged_ms);
      if (hedge_count == 0 || hedged_ms >= unhedged_ms) {
        std::fprintf(stderr,
                     "FAIL: hedging saved nothing under spikes "
                     "(%.1f vs %.1f ms, %zu hedged)\n",
                     hedged_ms, unhedged_ms, hedge_count);
        ++failures;
      }
    }
  }

  reporter.SetFailures(failures);
  reporter.Write();
  if (failures != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
