// Simulated-makespan comparison of the asynchronous source-access
// runtime on the 400-view chain catalog: the same query answered with
//
//   serial      — one source call at a time (the legacy dispatch),
//   concurrent  — each fetch round's frontier dispatched on the thread
//                 pool under the global and per-source in-flight caps,
//   faulty      — concurrent, with every source failing each query's
//                 first attempt (retries absorb the faults).
//
// Time is the scheduler's deterministic simulated clock (50 ms base
// round trip), so the numbers are reproducible anywhere; wall-clock per
// answering run is reported alongside. Self-checks: the three runs must
// return identical answers and source-query counts, and the concurrent
// makespan must beat serial by at least 2x — the acceptance bar for the
// runtime actually overlapping a round's independent fetches.
// Output is one JSON row per configuration.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capability/in_memory_source.h"
#include "exec/query_answerer.h"
#include "runtime/fault_injection.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::capability::InMemorySource;
using limcap::capability::SourceCatalog;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_async_runtime");

struct Run {
  limcap::Result<limcap::exec::AnswerReport> report =
      limcap::Status::Internal("never ran");
  double wall_ms = 0;
};

Run AnswerOnce(const SourceCatalog& catalog,
               const limcap::planner::DomainMap& domains,
               const limcap::planner::Query& query,
               const limcap::exec::ExecOptions& options) {
  limcap::exec::QueryAnswerer answerer(&catalog, domains);
  Run run;
  auto start = std::chrono::steady_clock::now();
  run.report = answerer.Answer(query, options);
  auto stop = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return run;
}

void EmitRow(const std::string& bench, const Run& run) {
  const limcap::runtime::FetchReport& fetch =
      run.report->exec.fetch_report;
  std::printf(
      "{\"bench\": \"%s\", \"answer_rows\": %zu, \"source_queries\": %zu, "
      "\"batches\": %zu, \"attempts\": %zu, \"retries\": %zu, "
      "\"coalesced\": %zu, \"simulated_makespan_ms\": %.1f, "
      "\"simulated_sequential_ms\": %.1f, \"speedup\": %.2f, "
      "\"degraded\": %s, \"wall_ms\": %.1f}\n",
      bench.c_str(), run.report->exec.answer.size(),
      run.report->exec.log.total_queries(), fetch.batches,
      fetch.total_attempts, fetch.total_retries, fetch.coalesced_hits,
      fetch.simulated_makespan_ms, fetch.simulated_sequential_ms,
      fetch.SequentialSpeedup(), fetch.degraded() ? "true" : "false",
      run.wall_ms);
  reporter.AddRow(bench)
      .Set("answer_rows", double(run.report->exec.answer.size()))
      .Set("source_queries", double(run.report->exec.log.total_queries()))
      .Set("batches", double(fetch.batches))
      .Set("attempts", double(fetch.total_attempts))
      .Set("retries", double(fetch.total_retries))
      .Set("coalesced", double(fetch.coalesced_hits))
      .Set("simulated_makespan_ms", fetch.simulated_makespan_ms)
      .Set("simulated_sequential_ms", fetch.simulated_sequential_ms)
      .Set("speedup", fetch.SequentialSpeedup())
      .Set("degraded", fetch.degraded() ? "true" : "false")
      .Set("wall_ms", run.wall_ms);
}

}  // namespace

int main() {
  limcap::workload::CatalogSpec spec;
  spec.topology = limcap::workload::CatalogSpec::Topology::kChain;
  spec.num_views = 400;
  spec.tuples_per_view = 20;
  spec.domain_size = 12;
  spec.seed = 20260807;
  auto instance = limcap::workload::GenerateInstance(spec);

  // In a bf-chain only a walk entered at its first attribute is fully
  // queryable; probe generator seeds (deterministic: the probe order is
  // fixed) and keep the answerable query with the widest fetch rounds —
  // the binding fan-out down the walk is what concurrency can overlap.
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 1;
  query_spec.views_per_connection = 8;
  limcap::Result<limcap::planner::Query> query =
      limcap::Status::NotFound("no seed probed");
  std::size_t best_queries = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    query_spec.seed = seed;
    auto candidate = limcap::workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto probe = answerer.Answer(*candidate);
    if (probe.ok() && !probe->exec.answer.empty() &&
        probe->exec.log.total_queries() > best_queries) {
      best_queries = probe->exec.log.total_queries();
      query = *candidate;
    }
  }
  if (!query.ok()) {
    std::fprintf(stderr, "FAIL: no answerable generated query in 64 seeds\n");
    return 1;
  }

  limcap::exec::ExecOptions serial_options;
  Run serial = AnswerOnce(instance.catalog, instance.domains, *query,
                          serial_options);

  limcap::exec::ExecOptions concurrent_options;
  concurrent_options.runtime.concurrent = true;
  concurrent_options.runtime.max_in_flight = 16;
  concurrent_options.runtime.per_source_max_in_flight = 8;
  Run concurrent = AnswerOnce(instance.catalog, instance.domains, *query,
                              concurrent_options);

  // Same chain with every source failing each distinct query's first
  // attempt; one retry per fetch absorbs every fault.
  limcap::runtime::FaultSpec faults;
  faults.fail_first_per_query = 1;
  SourceCatalog flaky;
  for (const auto& view : instance.views) {
    auto inner = std::make_unique<InMemorySource>(InMemorySource::MakeUnsafe(
        view, instance.full_data.at(view.name())));
    flaky.RegisterUnsafe(std::make_unique<limcap::runtime::FaultInjectingSource>(
        std::move(inner), faults));
  }
  limcap::exec::ExecOptions faulty_options = concurrent_options;
  faulty_options.continue_on_source_error = true;
  faulty_options.runtime.retry.max_attempts = 2;
  faulty_options.runtime.retry.jitter = 0;
  Run faulty = AnswerOnce(flaky, instance.domains, *query, faulty_options);

  for (const Run* run : {&serial, &concurrent, &faulty}) {
    if (!run->report.ok()) {
      std::fprintf(stderr, "FAIL: %s\n",
                   run->report.status().ToString().c_str());
      return 1;
    }
  }
  EmitRow("chain400_serial", serial);
  EmitRow("chain400_concurrent", concurrent);
  EmitRow("chain400_concurrent_faulty", faulty);

  // Self-checks.
  const bool answers_match =
      (serial.report->exec.answer == concurrent.report->exec.answer) &&
      (serial.report->exec.answer == faulty.report->exec.answer);
  reporter.Invariant("answers identical across configurations", answers_match);
  if (!answers_match) {
    std::fprintf(stderr, "FAIL: answers differ across configurations\n");
    ++failures;
  }
  const bool queries_match = serial.report->exec.log.total_queries() ==
                             concurrent.report->exec.log.total_queries();
  reporter.Invariant("serial and concurrent issue equal source queries",
                     queries_match);
  if (!queries_match) {
    std::fprintf(stderr, "FAIL: concurrent run issued a different number "
                         "of source queries\n");
    ++failures;
  }
  const bool recovered = !faulty.report->exec.fetch_report.degraded() &&
                         faulty.report->exec.fetch_report.total_retries > 0;
  reporter.Invariant("faulty run recovers via retries", recovered);
  if (!recovered) {
    std::fprintf(stderr, "FAIL: faulty run should recover via retries\n");
    ++failures;
  }
  const double serial_makespan =
      serial.report->exec.fetch_report.simulated_makespan_ms;
  const double concurrent_makespan =
      concurrent.report->exec.fetch_report.simulated_makespan_ms;
  const double speedup =
      concurrent_makespan > 0 ? serial_makespan / concurrent_makespan : 1.0;
  std::printf("{\"bench\": \"chain400_summary\", "
              "\"serial_makespan_ms\": %.1f, "
              "\"concurrent_makespan_ms\": %.1f, "
              "\"serial_over_concurrent\": %.2f}\n",
              serial_makespan, concurrent_makespan, speedup);
  reporter.AddRow("chain400_summary")
      .Set("serial_makespan_ms", serial_makespan)
      .Set("concurrent_makespan_ms", concurrent_makespan)
      .Set("serial_over_concurrent", speedup);
  reporter.Invariant("concurrent dispatch at least 2x faster than serial",
                     speedup >= 2.0);
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: concurrent dispatch only %.2fx faster (need 2x)\n",
                 speedup);
    ++failures;
  }
  reporter.SetFailures(failures);
  reporter.Write();
  if (failures != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
