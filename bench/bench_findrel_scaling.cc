// E8 — the FIND_REL algorithm (Figure 7) and its complexity.
//
// Section 5.4 analyzes FIND_REL as O(k·n²) for n catalog views and a
// connection with k attributes. We time the three stages (queryable-view
// computation, kernel computation, backward-closure) plus the whole
// algorithm on chain catalogs where the connection spans m views of the
// n-view catalog, sweeping n and m. The per-iteration time growing
// roughly quadratically in n (for fixed m) and linearly in the kernel
// size validates the bound's shape.

#include <benchmark/benchmark.h>

#include "planner/find_rel.h"
#include "workload/generator.h"

namespace {

using limcap::planner::Connection;
using limcap::planner::Query;
using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;

/// A chain catalog of n views; the query's connection spans the first m.
/// With pattern "bf" and the input at A0 the connection is independent,
/// so the kernel search does maximal shrinking work (every attribute is
/// removable).
struct ChainSetup {
  GeneratedInstance instance;
  Query query;
};

ChainSetup MakeChain(std::size_t n, std::size_t m) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = n;
  spec.tuples_per_view = 1;  // data is irrelevant to the planning cost
  spec.seed = 7;
  ChainSetup setup{GenerateInstance(spec), Query()};
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= m; ++i) names.push_back("v" + std::to_string(i));
  setup.query = Query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A" + std::to_string(m)}, {Connection(std::move(names))});
  return setup;
}

void BM_FindRelChain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  ChainSetup setup = MakeChain(n, m);
  for (auto _ : state) {
    auto report = limcap::planner::FindRelevantViews(
        setup.query, setup.query.connections()[0], setup.instance.views);
    benchmark::DoNotOptimize(report);
  }
  state.counters["views_n"] = static_cast<double>(n);
  state.counters["conn_m"] = static_cast<double>(m);
}
BENCHMARK(BM_FindRelChain)
    ->Args({16, 8})
    ->Args({32, 8})
    ->Args({64, 8})
    ->Args({128, 8})
    ->Args({256, 8})
    ->Args({64, 16})
    ->Args({64, 32})
    ->Args({64, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_FClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainSetup setup = MakeChain(n, std::min<std::size_t>(n, 8));
  for (auto _ : state) {
    auto closure = limcap::planner::ComputeFClosure(
        setup.query.InputAttributes(), setup.instance.views);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_FClosure)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

void BM_Kernel(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  ChainSetup setup = MakeChain(m, m);
  std::vector<limcap::capability::SourceView> connection_views(
      setup.instance.views.begin(), setup.instance.views.begin() + m);
  for (auto _ : state) {
    auto kernel = limcap::planner::ComputeKernel(
        setup.query.InputAttributes(), connection_views);
    benchmark::DoNotOptimize(kernel);
  }
}
BENCHMARK(BM_Kernel)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void BM_BClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainSetup setup = MakeChain(n, 4);
  // The last chain attribute backward-chains through the whole catalog —
  // the worst case for b-closure.
  std::string attribute = "A" + std::to_string(n);
  for (auto _ : state) {
    auto closure =
        limcap::planner::ComputeBClosure(attribute, setup.instance.views);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BClosure)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

/// Random catalogs: the realistic mixed case, including program planning
/// end to end (AnalyzeQueryRelevance over every connection).
void BM_AnalyzeRandomCatalog(benchmark::State& state) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kRandom;
  spec.num_views = static_cast<std::size_t>(state.range(0));
  spec.num_attributes = 16;
  spec.tuples_per_view = 1;
  spec.seed = 11;
  GeneratedInstance instance = GenerateInstance(spec);
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 3;
  query_spec.views_per_connection = 3;
  query_spec.seed = 5;
  auto query = limcap::workload::GenerateQuery(instance, query_spec);
  if (!query.ok()) {
    state.SkipWithError("no valid query for this catalog");
    return;
  }
  for (auto _ : state) {
    auto relevance =
        limcap::planner::AnalyzeQueryRelevance(*query, instance.views);
    benchmark::DoNotOptimize(relevance);
  }
}
BENCHMARK(BM_AnalyzeRandomCatalog)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

}  // namespace

#include "bench_report.h"

LIMCAP_BENCHMARK_MAIN_WITH_REPORT("bench_findrel_scaling")
