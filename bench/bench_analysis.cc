// The static verifier's cost, and why it is cheap enough to always run.
//
// AnalyzeExecutability is two fixpoints over the program: each round
// re-attempts a greedy SIP placement per rule (O(atoms²) orderings per
// attempt) and each round must make a rule or view newly live, so the
// whole analysis is ~O(rules · atoms²) with a small fixpoint factor. We
// time it on chain catalogs of 50..400 views — where Π(Q, V) has one
// alpha rule, one fetch-domain rule chain, and one input rule per view —
// and, for perspective, time the full AnalyzeProgram (all passes) and
// the source-driven evaluation of the same program. The chain is the
// analyzer's worst case for fixpoint depth (each round proves exactly
// one more view fetchable, so rounds ~ n and the analysis goes
// quadratic in n even though atoms per rule is bounded); it must still
// land well under the evaluation time of the same program, which is
// what justifies always-on gating.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/executability.h"
#include "exec/query_answerer.h"
#include "planner/program_builder.h"
#include "workload/generator.h"

namespace {

using limcap::analysis::AnalysisOptions;
using limcap::planner::Connection;
using limcap::planner::Query;
using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;

struct ChainProgram {
  GeneratedInstance instance;
  Query query;
  limcap::datalog::Program program;
};

/// A chain of n "bf" views v1(A0,A1)..vn(A{n-1},An) with the input at A0
/// and the output at the chain's end: every view is relevant, every
/// domain rule feeds the next view, and the executability fixpoint must
/// walk the whole chain to prove the last rule live.
ChainProgram MakeChainProgram(std::size_t n, std::size_t tuples_per_view) {
  CatalogSpec spec;
  spec.topology = CatalogSpec::Topology::kChain;
  spec.num_views = n;
  spec.tuples_per_view = tuples_per_view;
  spec.domain_size = 8;  // small domains keep the chain joins non-empty
  spec.seed = 13;
  ChainProgram setup{GenerateInstance(spec), Query(), {}};
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= n; ++i) names.push_back("v" + std::to_string(i));
  setup.query = Query(
      {{"A0", GeneratedInstance::DomainValue("A0", 0)}},
      {"A" + std::to_string(n)}, {Connection(std::move(names))});
  auto program = limcap::planner::BuildProgram(setup.query,
                                               setup.instance.views,
                                               setup.instance.domains);
  if (program.ok()) setup.program = *program;
  return setup;
}

/// The executability core alone: two fixpoints + SIP searches.
void BM_AnalyzeExecutability(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainProgram setup = MakeChainProgram(n, /*tuples_per_view=*/1);
  for (auto _ : state) {
    auto result = limcap::analysis::AnalyzeExecutability(
        setup.program, setup.instance.views, setup.instance.domains);
    benchmark::DoNotOptimize(result);
  }
  state.counters["views"] = static_cast<double>(n);
  state.counters["rules"] = static_cast<double>(setup.program.rules().size());
}
BENCHMARK(BM_AnalyzeExecutability)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// The whole verifier: safety, undeclared/singleton/reachability/arity
/// passes, executability, diagnostic rendering order.
void BM_AnalyzeProgram(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainProgram setup = MakeChainProgram(n, /*tuples_per_view=*/1);
  AnalysisOptions options;
  options.domains = setup.instance.domains;
  for (auto _ : state) {
    auto result = limcap::analysis::AnalyzeProgram(setup.program,
                                                   setup.instance.views,
                                                   options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["views"] = static_cast<double>(n);
}
BENCHMARK(BM_AnalyzeProgram)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// The binding-flow pass alone (this PR's tentpole): the staged
/// forward/backward fixpoint over the adorned program plus certificate
/// construction. Budget: ≤100ms on the 400-view chain (asserted by the
/// reporter invariants in bench_report).
void BM_AnalyzeBindingFlow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainProgram setup = MakeChainProgram(n, /*tuples_per_view=*/1);
  for (auto _ : state) {
    auto result = limcap::analysis::AnalyzeBindingFlow(
        setup.program, setup.instance.views, setup.instance.domains);
    benchmark::DoNotOptimize(result);
  }
  state.counters["views"] = static_cast<double>(n);
  state.counters["rules"] = static_cast<double>(setup.program.rules().size());
}
BENCHMARK(BM_AnalyzeBindingFlow)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// The thing the analyzer gates: actually answering the query. Run with
/// real data so the comparison is honest — analysis time should be a
/// small fraction of this.
void BM_AnswerChain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainProgram setup = MakeChainProgram(n, /*tuples_per_view=*/20);
  limcap::exec::QueryAnswerer answerer(&setup.instance.catalog,
                                       setup.instance.domains);
  for (auto _ : state) {
    auto report = answerer.Answer(setup.query);
    benchmark::DoNotOptimize(report);
  }
  state.counters["views"] = static_cast<double>(n);
}
BENCHMARK(BM_AnswerChain)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// The gate as users feel it: Answer with kPrune versus kOff, same data.
void BM_AnswerChainWithPruneGate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ChainProgram setup = MakeChainProgram(n, /*tuples_per_view=*/20);
  limcap::exec::QueryAnswerer answerer(&setup.instance.catalog,
                                       setup.instance.domains);
  limcap::exec::ExecOptions options;
  options.static_analysis = limcap::exec::StaticAnalysisMode::kPrune;
  for (auto _ : state) {
    auto report = answerer.Answer(setup.query, options);
    benchmark::DoNotOptimize(report);
  }
  state.counters["views"] = static_cast<double>(n);
}
BENCHMARK(BM_AnswerChainWithPruneGate)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_report.h"

LIMCAP_BENCHMARK_MAIN_WITH_REPORT("bench_analysis")
