// X3 — Section 7.2: the partial-answer tradeoff.
//
// Sweeping the source-access budget on random instances, we record the
// fraction of the maximal obtainable answer retrieved. Expected shape: a
// monotone curve with diminishing returns — early accesses fill the
// domains that unlock many answers at once, the tail chases the last
// bindings.

#include <cstdio>
#include <vector>

#include "common/text_table.h"
#include "exec/query_answerer.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::workload::CatalogSpec;
using limcap::workload::GeneratedInstance;
using limcap::workload::GenerateInstance;
using limcap::workload::GenerateQuery;
using limcap::workload::QuerySpec;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_partial_answer");

}  // namespace

int main() {
  const std::vector<std::size_t> budgets = {0, 2, 4, 8, 16, 32, 64, 128, 256};
  const std::size_t seeds = 12;

  // answers[b] accumulated across instances, plus per-instance maxima.
  std::vector<double> fraction_sum(budgets.size(), 0);
  std::size_t instances = 0;
  std::size_t maximal_queries_sum = 0;
  std::size_t maximal_answers_sum = 0;

  for (std::size_t seed = 0; seed < seeds; ++seed) {
    CatalogSpec spec;
    spec.topology = CatalogSpec::Topology::kRandom;
    spec.num_views = 10;
    spec.num_attributes = 8;
    spec.tuples_per_view = 50;
    spec.domain_size = 14;
    spec.bound_probability = 0.45;
    spec.seed = seed * 101 + 7;
    GeneratedInstance instance = GenerateInstance(spec);

    QuerySpec query_spec;
    query_spec.num_connections = 2;
    query_spec.views_per_connection = 3;
    query_spec.seed = seed * 13 + 5;
    auto query = GenerateQuery(instance, query_spec);
    if (!query.ok()) continue;

    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto maximal = answerer.Answer(*query);
    if (!maximal.ok() || maximal->exec.answer.empty()) continue;
    ++instances;
    maximal_queries_sum += maximal->exec.log.total_queries();
    maximal_answers_sum += maximal->exec.answer.size();

    std::size_t previous = 0;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      limcap::exec::ExecOptions options;
      options.max_source_queries = budgets[b];
      auto report = answerer.Answer(*query, options);
      if (!report.ok()) {
        ++failures;
        continue;
      }
      std::size_t count = report->exec.answer.size();
      if (count < previous) ++failures;  // monotonicity violated
      previous = count;
      fraction_sum[b] +=
          double(count) / double(maximal->exec.answer.size());
      // Partial answers must be subsets of the maximal answer.
      for (const auto& row : report->exec.answer.DecodedRows()) {
        if (!maximal->exec.answer.Contains(row)) ++failures;
      }
    }
  }

  std::printf("X3: partial answers under a source-access budget, averaged\n"
              "over %zu random instances (avg maximal answer %.1f tuples\n"
              "after %.1f source queries).\n\n",
              instances,
              instances ? double(maximal_answers_sum) / double(instances) : 0,
              instances ? double(maximal_queries_sum) / double(instances) : 0);
  limcap::TextTable table({"Budget", "Avg fraction of maximal answer"});
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    char fraction[32];
    std::snprintf(fraction, sizeof(fraction), "%5.1f%%",
                  instances ? 100.0 * fraction_sum[b] / double(instances)
                            : 0.0);
    table.AddRow({std::to_string(budgets[b]), fraction});
    reporter.AddRow("budget_" + std::to_string(budgets[b]))
        .Set("budget", double(budgets[b]))
        .Set("avg_fraction",
             instances ? fraction_sum[b] / double(instances) : 0.0);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("violations (non-monotone or non-subset): %d\n", failures);
  reporter.Invariant("partial answers monotone subsets of maximal",
                     failures == 0);
  reporter.SetFailures(failures);
  reporter.Write();
  return failures == 0 ? 0 : 1;
}
