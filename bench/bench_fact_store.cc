// X5 — FactStore storage ablation at scale: insert, probe, and contains
// throughput on the interned flat-arena store at 10k–1M facts.
//
// Beyond raw throughput, this bench instruments the global allocator to
// certify the zero-allocation contract of the probe path: ProbeEach and
// Contains must perform no heap allocation per call once indexes are
// built (the `allocs_per_probe` / `allocs_per_contains` counters in the
// JSON output must be 0).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "datalog/fact_store.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// Count every heap allocation in the process. new[] funnels through
// operator new on this toolchain's default implementation, but both are
// replaced to be safe.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace {

using limcap::Value;
using limcap::ValueId;
using limcap::datalog::FactStore;
using limcap::datalog::IdRow;
using limcap::datalog::PredicateId;
using limcap::datalog::RowView;

constexpr std::size_t kNumKeys = 1024;

/// Pre-encoded two-column rows: column 0 cycles over kNumKeys keys,
/// column 1 is distinct, so every row is unique and each key's postings
/// chain holds ~n/kNumKeys rows.
std::vector<ValueId> EncodeRows(FactStore& store, std::size_t n) {
  std::vector<ValueId> ids;
  ids.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(store.dict().Intern(
        Value::Int64(static_cast<int64_t>(i % kNumKeys))));
    ids.push_back(
        store.dict().Intern(Value::Int64(static_cast<int64_t>(i) + 1'000'000)));
  }
  return ids;
}

void BM_FactStoreInsert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FactStore store;
    PredicateId pred = *store.DeclareId("p", 2);
    std::vector<ValueId> ids = EncodeRows(store, n);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          store.InsertIds(pred, RowView(ids.data() + 2 * i, 2)));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FactStoreInsert)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

/// Insert with an index maintained incrementally from the start — the
/// evaluator's steady state, where every insert also appends a posting.
void BM_FactStoreInsertIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<uint32_t> cols = {0};
  for (auto _ : state) {
    state.PauseTiming();
    FactStore store;
    PredicateId pred = *store.DeclareId("p", 2);
    store.EnsureIndex(pred, cols);
    std::vector<ValueId> ids = EncodeRows(store, n);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          store.InsertIds(pred, RowView(ids.data() + 2 * i, 2)));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FactStoreInsertIndexed)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_FactStoreProbe(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  FactStore store;
  PredicateId pred = *store.DeclareId("p", 2);
  const std::vector<uint32_t> cols = {0};
  store.EnsureIndex(pred, cols);
  std::vector<ValueId> ids = EncodeRows(store, n);
  for (std::size_t i = 0; i < n; ++i) {
    store.InsertIds(pred, RowView(ids.data() + 2 * i, 2)).ok();
  }
  std::vector<ValueId> keys;
  for (std::size_t k = 0; k < kNumKeys; ++k) {
    keys.push_back(store.dict().Intern(
        Value::Int64(static_cast<int64_t>(k))));
  }
  const std::size_t count = store.Count(pred);
  std::size_t probes = 0;
  std::size_t rows = 0;
  std::size_t allocations = 0;
  for (auto _ : state) {
    const std::size_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    for (ValueId key : keys) {
      store.ProbeEach(pred, cols, RowView(&key, 1), count,
                      [&](std::size_t pos) {
                        rows += store.Row(pred, pos)[1] != 0;
                        return true;
                      });
      ++probes;
    }
    allocations +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(rows));
  state.counters["rows_per_probe"] =
      probes ? static_cast<double>(rows) / static_cast<double>(probes) : 0;
  // The zero-allocation contract: the whole probe loop must not touch
  // the heap.
  state.counters["allocs_per_probe"] =
      probes ? static_cast<double>(allocations) / static_cast<double>(probes)
             : 0;
}
BENCHMARK(BM_FactStoreProbe)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_FactStoreContains(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  FactStore store;
  PredicateId pred = *store.DeclareId("p", 2);
  std::vector<ValueId> ids = EncodeRows(store, n);
  for (std::size_t i = 0; i < n; ++i) {
    store.InsertIds(pred, RowView(ids.data() + 2 * i, 2)).ok();
  }
  // Half hits (existing rows), half misses (swapped columns).
  std::size_t checks = 0;
  std::size_t hits = 0;
  std::size_t allocations = 0;
  for (auto _ : state) {
    const std::size_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; i += 7) {
      hits += store.Contains(pred, RowView(ids.data() + 2 * i, 2));
      const ValueId miss[2] = {ids[2 * i + 1], ids[2 * i]};
      hits += store.Contains(pred, RowView(miss, 2));
      checks += 2;
    }
    allocations +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(checks));
  state.counters["allocs_per_contains"] =
      checks ? static_cast<double>(allocations) / static_cast<double>(checks)
             : 0;
}
BENCHMARK(BM_FactStoreContains)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_report.h"

LIMCAP_BENCHMARK_MAIN_WITH_REPORT("bench_fact_store")
