// Warm-vs-cold plan-cache benchmark: how much of Mediator::Answer a
// reusable compiled plan saves, on the workloads where planning is cheap
// (the four paper examples) and where it dominates (the 400-view chain).
//
// Self-checking invariants (exit 1 on violation):
//   * warm answers are bit-identical to cold (OrderedFingerprint), on
//     every workload;
//   * on the 400-view chain, warm-path planning time is < 20% of cold
//     and warm end-to-end latency is >= 3x faster than cold;
//   * the cache records the hits, and a catalog mutation invalidates the
//     stale entries (the next answer recompiles).
//
// One JSON row per measurement into BENCH_bench_plan_cache.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capability/in_memory_source.h"
#include "exec/fingerprint.h"
#include "mediator/mediator.h"
#include "obs/trace.h"
#include "paperdata/paper_examples.h"
#include "workload/generator.h"

#include "bench_report.h"

namespace {

using limcap::Value;
using limcap::exec::AnswerReport;
using limcap::exec::ExecOptions;
using limcap::exec::OrderedFingerprint;
using limcap::mediator::Mediator;
using limcap::mediator::MediatorQuery;
using limcap::mediator::MediatorView;

int failures = 0;
limcap::benchreport::Reporter reporter("bench_plan_cache");

struct Timing {
  double min_us = 0;
  double mean_us = 0;
};

template <typename Fn>
Timing Measure(std::size_t iters, Fn&& fn) {
  fn();  // warmup
  Timing timing;
  timing.min_us = 1e300;
  double sum = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    timing.min_us = std::min(timing.min_us, us);
    sum += us;
  }
  timing.mean_us = sum / double(iters);
  return timing;
}

double SpanDuration(const limcap::obs::Tracer& tracer, const char* name) {
  for (const limcap::obs::Span& span : tracer.spans()) {
    if (span.name == name) return span.dur_us;
  }
  return 0;
}

/// Planning time of one traced answer: everything inside the "answer"
/// span that is not execution — FIND_REL, program construction, the
/// optimizer, the gate, and (warm) the cache lookup + artifact copy.
double PlanningUs(Mediator& mediator, const MediatorQuery& query) {
  limcap::obs::Tracer tracer;
  ExecOptions options;
  options.tracer = &tracer;
  auto report = mediator.Answer(query, options);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: traced answer: %s\n",
                 report.status().ToString().c_str());
    ++failures;
    return 0;
  }
  return SpanDuration(tracer, "answer") - SpanDuration(tracer, "exec");
}

/// Cold-vs-warm comparison for one mediator query. `iters` runs each.
/// Returns cold_min / warm_min end-to-end microseconds via out-params so
/// callers can assert workload-specific ratios.
void CompareColdWarm(const std::string& bench, Mediator& mediator,
                     const MediatorQuery& query, std::size_t iters,
                     double* cold_min_us = nullptr,
                     double* warm_min_us = nullptr) {
  limcap::Result<AnswerReport> cold_report =
      limcap::Status::Internal("never ran");
  // Cold: every iteration recompiles (the session cache is cleared
  // before each answer, so lookups miss and the artifact is re-inserted
  // — the exact cost of a first-ever query, plus the insert the first
  // query also pays).
  Timing cold = Measure(iters, [&] {
    mediator.plan_cache().Clear();
    cold_report = mediator.Answer(query);
  });
  if (!cold_report.ok()) {
    std::fprintf(stderr, "FAIL: %s cold: %s\n", bench.c_str(),
                 cold_report.status().ToString().c_str());
    ++failures;
    return;
  }
  double cold_plan_us = 0;
  {
    mediator.plan_cache().Clear();
    cold_plan_us = PlanningUs(mediator, query);
  }

  // Warm: the entry is in the cache (primed by the traced run above).
  limcap::Result<AnswerReport> warm_report =
      limcap::Status::Internal("never ran");
  Timing warm =
      Measure(iters, [&] { warm_report = mediator.Answer(query); });
  if (!warm_report.ok()) {
    std::fprintf(stderr, "FAIL: %s warm: %s\n", bench.c_str(),
                 warm_report.status().ToString().c_str());
    ++failures;
    return;
  }
  double warm_plan_us = PlanningUs(mediator, query);

  const bool hit = warm_report->cache.hit && !cold_report->cache.hit;
  reporter.Invariant(bench + ": warm answers hit the cache", hit);
  if (!hit) {
    std::fprintf(stderr, "FAIL: %s cache hit pattern wrong\n",
                 bench.c_str());
    ++failures;
  }
  const bool identical = OrderedFingerprint(warm_report->exec) ==
                         OrderedFingerprint(cold_report->exec);
  reporter.Invariant(bench + ": warm answer bit-identical to cold",
                     identical);
  if (!identical) {
    std::fprintf(stderr, "FAIL: %s warm answer diverged from cold\n",
                 bench.c_str());
    ++failures;
  }

  const double speedup = warm.min_us > 0 ? cold.min_us / warm.min_us : 0;
  std::printf(
      "{\"bench\": \"%s\", \"iters\": %zu, \"cold_min_us\": %.1f, "
      "\"warm_min_us\": %.1f, \"cold_mean_us\": %.1f, "
      "\"warm_mean_us\": %.1f, \"cold_plan_us\": %.1f, "
      "\"warm_plan_us\": %.1f, \"e2e_speedup\": %.2f, "
      "\"answer_rows\": %zu}\n",
      bench.c_str(), iters, cold.min_us, warm.min_us, cold.mean_us,
      warm.mean_us, cold_plan_us, warm_plan_us, speedup,
      warm_report->exec.answer.size());
  reporter.AddRow(bench)
      .Set("iters", double(iters))
      .Set("cold_min_us", cold.min_us)
      .Set("warm_min_us", warm.min_us)
      .Set("cold_mean_us", cold.mean_us)
      .Set("warm_mean_us", warm.mean_us)
      .Set("cold_plan_us", cold_plan_us)
      .Set("warm_plan_us", warm_plan_us)
      .Set("e2e_speedup", speedup)
      .Set("answer_rows", double(warm_report->exec.answer.size()));
  if (cold_min_us != nullptr) *cold_min_us = cold.min_us;
  if (warm_min_us != nullptr) *warm_min_us = warm.min_us;
}

void BenchPaperExamples() {
  struct Case {
    const char* name;
    limcap::paperdata::PaperExample example;
  };
  Case cases[] = {{"example21", limcap::paperdata::MakeExample21()},
                  {"example41", limcap::paperdata::MakeExample41()},
                  {"example51", limcap::paperdata::MakeExample51()},
                  {"example52", limcap::paperdata::MakeExample52()}};
  for (Case& c : cases) {
    Mediator mediator(&c.example.catalog, c.example.domains);
    MediatorView view;
    view.name = "paper";
    for (const auto& input : c.example.query.inputs()) {
      view.exported_attributes.push_back(input.attribute);
    }
    for (const auto& output : c.example.query.outputs()) {
      view.exported_attributes.push_back(output);
    }
    view.definitions = c.example.query.connections();
    if (!mediator.Define(std::move(view)).ok()) {
      std::fprintf(stderr, "FAIL: %s view rejected\n", c.name);
      ++failures;
      continue;
    }
    MediatorQuery query;
    query.view = "paper";
    query.selections = c.example.query.inputs();
    query.outputs = c.example.query.outputs();
    CompareColdWarm(c.name, mediator, query, /*iters=*/100);
  }
}

void BenchGeneratedChain() {
  limcap::workload::CatalogSpec spec;
  spec.topology = limcap::workload::CatalogSpec::Topology::kChain;
  spec.num_views = 400;
  spec.tuples_per_view = 20;
  spec.domain_size = 12;
  spec.seed = 20260807;
  auto instance = limcap::workload::GenerateInstance(spec);

  // Probe generator seeds for an answerable query (same recipe as
  // bench_exec_pipeline: in a bf-chain only a walk entered at its first
  // attribute is fully queryable).
  limcap::workload::QuerySpec query_spec;
  query_spec.num_connections = 1;
  query_spec.views_per_connection = 4;
  limcap::Result<limcap::planner::Query> generated =
      limcap::Status::NotFound("no seed probed");
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    query_spec.seed = seed;
    auto candidate = limcap::workload::GenerateQuery(instance, query_spec);
    if (!candidate.ok()) continue;
    limcap::exec::QueryAnswerer answerer(&instance.catalog,
                                         instance.domains);
    auto probe = answerer.Answer(*candidate);
    if (probe.ok() && !probe->exec.answer.empty()) {
      generated = *candidate;
      break;
    }
  }
  if (!generated.ok()) {
    std::fprintf(stderr, "FAIL: no answerable generated query in 64 seeds\n");
    ++failures;
    return;
  }

  Mediator mediator(&instance.catalog, instance.domains);
  MediatorView view;
  view.name = "walk";
  for (const auto& input : generated->inputs()) {
    view.exported_attributes.push_back(input.attribute);
  }
  for (const auto& output : generated->outputs()) {
    view.exported_attributes.push_back(output);
  }
  view.definitions = generated->connections();
  if (!mediator.Define(std::move(view)).ok()) {
    std::fprintf(stderr, "FAIL: generated view rejected\n");
    ++failures;
    return;
  }
  MediatorQuery query;
  query.view = "walk";
  query.selections = generated->inputs();
  query.outputs = generated->outputs();

  double cold_min_us = 0, warm_min_us = 0;
  CompareColdWarm("chain400", mediator, query, /*iters=*/30, &cold_min_us,
                  &warm_min_us);
  if (cold_min_us == 0) return;  // CompareColdWarm already reported

  // Acceptance: on the 400-view chain planning dominates, so the warm
  // path must be >= 3x faster end-to-end, and warm planning time < 20%
  // of cold. min-of-N planning-span pairs cancel machine drift.
  double cold_plan_us = 1e300, warm_plan_us = 1e300;
  constexpr std::size_t kPlanPairs = 10;
  for (std::size_t i = 0; i < kPlanPairs; ++i) {
    mediator.plan_cache().Clear();
    cold_plan_us = std::min(cold_plan_us, PlanningUs(mediator, query));
    warm_plan_us = std::min(warm_plan_us, PlanningUs(mediator, query));
  }
  const bool plan_ratio_ok =
      cold_plan_us > 0 && warm_plan_us < 0.20 * cold_plan_us;
  reporter.Invariant("chain400: warm planning < 20% of cold",
                     plan_ratio_ok);
  if (!plan_ratio_ok) {
    std::fprintf(stderr,
                 "FAIL: warm planning %.1fus vs cold %.1fus (>= 20%%)\n",
                 warm_plan_us, cold_plan_us);
    ++failures;
  }
  const bool e2e_ratio_ok = cold_min_us >= 3.0 * warm_min_us;
  reporter.Invariant("chain400: warm end-to-end >= 3x faster than cold",
                     e2e_ratio_ok);
  if (!e2e_ratio_ok) {
    std::fprintf(stderr,
                 "FAIL: warm e2e %.1fus vs cold %.1fus (< 3x speedup)\n",
                 warm_min_us, cold_min_us);
    ++failures;
  }
  std::printf(
      "{\"bench\": \"chain400_planning\", \"cold_plan_min_us\": %.1f, "
      "\"warm_plan_min_us\": %.1f, \"plan_ratio\": %.3f}\n",
      cold_plan_us, warm_plan_us,
      cold_plan_us > 0 ? warm_plan_us / cold_plan_us : 0);
  reporter.AddRow("chain400_planning")
      .Set("cold_plan_min_us", cold_plan_us)
      .Set("warm_plan_min_us", warm_plan_us)
      .Set("plan_ratio", cold_plan_us > 0 ? warm_plan_us / cold_plan_us : 0);

  const auto stats = mediator.plan_cache().stats();
  reporter.Invariant("chain400: cache recorded hits", stats.hits > 0);
  if (stats.hits == 0) {
    std::fprintf(stderr, "FAIL: no cache hits recorded\n");
    ++failures;
  }

  // Mutation smoke: a joining source moves the catalog fingerprint; the
  // next answer recompiles (miss) and the stale generation is dropped.
  limcap::capability::SourceView extra = limcap::capability::SourceView::
      MakeUnsafe("vextra", {"A0", "Zextra"}, "bf");
  limcap::relational::Relation data(extra.schema());
  if (!instance.catalog
           .Register(std::make_unique<limcap::capability::InMemorySource>(
               limcap::capability::InMemorySource::MakeUnsafe(
                   extra, std::move(data))))
           .ok()) {
    std::fprintf(stderr, "FAIL: mutation source rejected\n");
    ++failures;
    return;
  }
  auto after = mediator.Answer(query);
  const bool invalidated = after.ok() && !after->cache.hit &&
                           mediator.plan_cache().stats().invalidations > 0;
  reporter.Invariant("chain400: catalog mutation invalidates and recompiles",
                     invalidated);
  if (!invalidated) {
    std::fprintf(stderr, "FAIL: catalog mutation did not invalidate\n");
    ++failures;
  }
  std::printf(
      "{\"bench\": \"chain400_cache_stats\", \"hits\": %llu, "
      "\"misses\": %llu, \"inserts\": %llu, \"invalidations\": %llu}\n",
      (unsigned long long)stats.hits, (unsigned long long)stats.misses,
      (unsigned long long)stats.inserts,
      (unsigned long long)mediator.plan_cache().stats().invalidations);
  reporter.AddRow("chain400_cache_stats")
      .Set("hits", double(stats.hits))
      .Set("misses", double(stats.misses))
      .Set("inserts", double(stats.inserts))
      .Set("invalidations",
           double(mediator.plan_cache().stats().invalidations));
}

}  // namespace

int main() {
  BenchPaperExamples();
  BenchGeneratedChain();
  reporter.SetFailures(failures);
  reporter.Write();
  if (failures != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
