#ifndef LIMCAP_OBS_EXPORT_H_
#define LIMCAP_OBS_EXPORT_H_

#include <string>

#include "obs/trace.h"

namespace limcap::obs {

/// Renders the tracer's spans as Chrome trace_event JSON (the object
/// form: {"traceEvents": [...], "displayTimeUnit": "ms"}), loadable in
/// chrome://tracing and Perfetto. Each span becomes one complete ("X")
/// event on pid 1 / tid 1 with its wall-clock ts/dur in microseconds;
/// detail, counters, and any simulated-clock placement ride in "args".
std::string ChromeTraceJson(const Tracer& tracer);

struct SpanTreeOptions {
  /// Include wall-clock durations. Off for golden-file comparisons:
  /// everything else in the tree (structure, names, details, counters,
  /// simulated times) is deterministic.
  bool include_wall = true;
};

/// Renders the span tree as indented text, one span per line in Begin
/// order (a span's Begin always falls between its parent's Begin and
/// End, so sequential order with depth indentation is the DFS tree):
///
///   answer [ans]
///     plan
///       plan.find_rel [{v1, v3}] kernel_size=0
///     ...
std::string RenderSpanTree(const Tracer& tracer,
                           const SpanTreeOptions& options = {});

}  // namespace limcap::obs

#endif  // LIMCAP_OBS_EXPORT_H_
