#ifndef LIMCAP_OBS_METRICS_H_
#define LIMCAP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace limcap::obs {

/// Canonical metric names, shared by the emission points, the explain
/// renderer, and the consistency tests. One name, one meaning:
namespace metric {
// Planning.
inline constexpr std::string_view kPlanConnectionsQueryable =
    "plan.connections_queryable";
inline constexpr std::string_view kPlanConnectionsDropped =
    "plan.connections_dropped";
inline constexpr std::string_view kPlanRelevantViews = "plan.relevant_views";
inline constexpr std::string_view kPlanRulesRemoved = "plan.rules_removed";
// Plan cache (compiled-plan reuse across Answer calls).
inline constexpr std::string_view kPlanCacheHits = "plan.cache_hits";
inline constexpr std::string_view kPlanCacheMisses = "plan.cache_misses";
inline constexpr std::string_view kPlanCacheEvictions =
    "plan.cache_evictions";
// Static analysis.
inline constexpr std::string_view kAnalysisDiagnostics =
    "analysis.diagnostics";
// Fetch channels the binding-flow verdicts let the evaluator drop
// before scheduling (StaticAnalysisMode::kPrune only).
inline constexpr std::string_view kAnalysisPrunedChannels =
    "analysis.pruned_channels";
// Datalog evaluation.
inline constexpr std::string_view kEvalRounds = "eval.rounds";
inline constexpr std::string_view kEvalActivations = "eval.rule_activations";
inline constexpr std::string_view kEvalFactsDerived = "eval.facts_derived";
inline constexpr std::string_view kEvalMatches = "eval.matches";
// Source-driven execution.
inline constexpr std::string_view kExecFetchRounds = "exec.fetch_rounds";
inline constexpr std::string_view kExecSourceQueries = "exec.source_queries";
inline constexpr std::string_view kAnswerRows = "answer.rows";
// Fetch runtime (reconciled against FetchReport).
inline constexpr std::string_view kFetchBatches = "fetch.batches";
inline constexpr std::string_view kFetchAttempts = "fetch.attempts";
inline constexpr std::string_view kFetchRetries = "fetch.retries";
inline constexpr std::string_view kFetchTimeouts = "fetch.timeouts";
inline constexpr std::string_view kFetchCoalesced = "fetch.coalesced";
inline constexpr std::string_view kFetchBreakerSkips = "fetch.breaker_skips";
inline constexpr std::string_view kFetchFailedViews = "fetch.failed_views";
inline constexpr std::string_view kFetchMakespanMs =
    "fetch.simulated_makespan_ms";
// Adaptive dispatch (all zero unless RuntimeOptions::adaptive is on).
inline constexpr std::string_view kFetchSkippedDynamic =
    "fetch.skipped_dynamic";
inline constexpr std::string_view kFetchHedged = "fetch.hedged";
inline constexpr std::string_view kFetchBatched = "fetch.batched";
// Session caches.
inline constexpr std::string_view kCacheHits = "cache.hits";
inline constexpr std::string_view kCacheMisses = "cache.misses";
// Multi-query server (ServeSession / limcap_serve).
inline constexpr std::string_view kServeAccepted = "serve.accepted";
inline constexpr std::string_view kServeRejected = "serve.rejected";
inline constexpr std::string_view kServeCompleted = "serve.completed";
inline constexpr std::string_view kServeFailed = "serve.failed";
/// Sampled at each admission: requests executing at that moment.
inline constexpr std::string_view kServeInFlight = "serve.in_flight";
/// Sampled at each admission: requests queued at that moment.
inline constexpr std::string_view kServeQueueDepth = "serve.queue_depth";
// Histograms.
inline constexpr std::string_view kHistFetchMs = "fetch.duration_ms";
inline constexpr std::string_view kHistRoundActivations =
    "eval.round_activations";
}  // namespace metric

/// Named counters and histograms for one scope — one query, or one
/// session (a mediator merges each query's registry into its session
/// registry). Not thread-safe; like the Tracer it belongs to exactly one
/// driver thread. All emission sites guard on a null registry, so the
/// disabled path costs one branch.
class MetricsRegistry {
 public:
  /// Fixed-shape histogram: count / sum / min / max plus power-of-two
  /// buckets (bucket i counts values in [2^(i-1), 2^i)), enough for
  /// latency and size distributions without per-observation allocation.
  struct Histogram {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    static constexpr std::size_t kBuckets = 32;
    uint64_t buckets[kBuckets] = {};

    double mean() const { return count == 0 ? 0 : sum / count; }
  };

  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(std::string_view name, double delta = 1);
  /// Records one observation into histogram `name`.
  void Observe(std::string_view name, double value);

  /// Counter value; 0 when the counter was never touched.
  double Get(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Adds every counter and histogram of `other` into this registry —
  /// per-session aggregation over per-query registries.
  void Merge(const MetricsRegistry& other);

  void Clear();
  bool empty() const { return counters_.empty() && histograms_.empty(); }

  const std::map<std::string, double, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Sorted `name = value` lines (counters), then histogram summaries.
  std::string RenderText() const;
  /// One JSON object: {"counters": {...}, "histograms": {...}}.
  std::string RenderJson() const;

 private:
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace limcap::obs

#endif  // LIMCAP_OBS_METRICS_H_
