#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace limcap::obs {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << JsonEscape(span.name)
        << "\", \"cat\": \"limcap\", \"ph\": \"X\", \"pid\": 1, "
           "\"tid\": 1, \"ts\": "
        << Num(span.start_us) << ", \"dur\": " << Num(span.dur_us);
    out << ", \"args\": {";
    bool first_arg = true;
    auto arg = [&](const std::string& key, const std::string& value,
                   bool quote) {
      if (!first_arg) out << ", ";
      first_arg = false;
      out << "\"" << JsonEscape(key) << "\": ";
      if (quote) {
        out << "\"" << JsonEscape(value) << "\"";
      } else {
        out << value;
      }
    };
    if (!span.detail.empty()) arg("detail", span.detail, /*quote=*/true);
    if (span.sim_start_ms >= 0) {
      arg("sim_start_ms", Num(span.sim_start_ms), /*quote=*/false);
      arg("sim_dur_ms", Num(span.sim_dur_ms), /*quote=*/false);
    }
    for (const auto& [name, value] : span.counters) {
      arg(name, Num(value), /*quote=*/false);
    }
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::string RenderSpanTree(const Tracer& tracer,
                           const SpanTreeOptions& options) {
  const std::vector<Span>& spans = tracer.spans();
  // Depth per span; a parent always precedes its children in the vector.
  std::vector<int> depth(spans.size(), 0);
  std::ostringstream out;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (span.parent != kNoSpan) depth[i] = depth[span.parent] + 1;
    for (int d = 0; d < depth[i]; ++d) out << "  ";
    out << span.name;
    if (!span.detail.empty()) out << " [" << span.detail << "]";
    if (options.include_wall) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), " wall=%.0fus", span.dur_us);
      out << buffer;
    }
    if (span.sim_start_ms >= 0) {
      out << " sim=" << Num(span.sim_dur_ms) << "ms@" << Num(span.sim_start_ms);
    }
    for (const auto& [name, value] : span.counters) {
      out << " " << name << "=" << Num(value);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace limcap::obs
