#ifndef LIMCAP_OBS_TRACE_H_
#define LIMCAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace limcap::obs {

/// Index of a span within its tracer; stable for the tracer's lifetime.
using SpanId = uint32_t;
inline constexpr SpanId kNoSpan = 0xFFFFFFFFu;

/// One hierarchical interval of the answer path. Spans carry two
/// timelines: the wall clock (microseconds since the tracer's epoch,
/// always present) and the execution's *simulated* clock (milliseconds,
/// present only for spans the source-access runtime placed on its
/// simulated timeline — see FetchScheduler). Counters attach exact
/// integals/doubles (attempts, activations, facts) so exporters and the
/// consistency tests never re-derive them from timing.
struct Span {
  std::string name;    ///< taxonomy name, e.g. "fetch", "eval.round"
  std::string detail;  ///< free-form label, e.g. the source or connection
  SpanId parent = kNoSpan;
  double start_us = 0;  ///< wall clock, relative to the tracer epoch
  double dur_us = 0;
  double sim_start_ms = -1;  ///< simulated placement; < 0 means none
  double sim_dur_ms = 0;
  std::vector<std::pair<std::string, double>> counters;
  bool open = false;  ///< Begin seen, End not yet
};

/// Records the span tree of one query answer. Contract:
///
///   * Single-threaded: only the driver thread of an execution may touch
///     a tracer. The fetch scheduler and the parallel evaluator honor
///     this by emitting spans only at their (driver-side, deterministic-
///     order) merge points, never from worker threads — which is also
///     what keeps traced runs bit-identical to untraced ones.
///   * Disabled is free: every emission site in the library guards with
///     `tracer != nullptr && tracer->enabled()`, so the disabled hot
///     path costs two branches and performs no allocation. The
///     compile-time analogue is NullTracer below.
///   * Begin/End nest: End(id) closes `id` and any span opened after it
///     that is still open (malformed nesting never corrupts the tree).
class Tracer {
 public:
  explicit Tracer(bool enabled = true)
      : enabled_(enabled), epoch_(std::chrono::steady_clock::now()) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Opens a span as a child of the innermost open span.
  SpanId Begin(std::string name, std::string detail = std::string());
  void End(SpanId id);

  /// A zero-length child span (an event).
  SpanId Instant(std::string name, std::string detail = std::string());

  /// Places `id` on the simulated timeline.
  void SetSimulated(SpanId id, double start_ms, double dur_ms);
  /// Attaches (or accumulates into) a named counter of `id`.
  void Counter(SpanId id, std::string name, double value);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  // -- Aggregation helpers (the consistency contract's query surface) --

  /// Number of spans named `name` (optionally filtered by detail).
  std::size_t CountSpans(std::string_view name) const;
  std::size_t CountSpans(std::string_view name,
                         std::string_view detail) const;
  /// Sum of counter `counter` over all spans named `name`.
  double SumCounter(std::string_view name, std::string_view counter) const;
  /// Same, restricted to spans whose detail is `detail`.
  double SumCounter(std::string_view name, std::string_view detail,
                    std::string_view counter) const;

 private:
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  bool enabled_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<SpanId> open_stack_;
};

/// RAII span. Null or disabled tracer: every operation is a no-op (two
/// branches, no allocation — the strings are not even constructed when
/// callers pass string literals through the const char* overloads).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(Live(tracer)), id_(tracer_ ? tracer_->Begin(name) : kNoSpan) {}
  ScopedSpan(Tracer* tracer, const char* name, std::string detail)
      : tracer_(Live(tracer)),
        id_(tracer_ ? tracer_->Begin(name, std::move(detail)) : kNoSpan) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Counter(const char* name, double value) {
    if (tracer_ != nullptr) tracer_->Counter(id_, name, value);
  }
  void SetSimulated(double start_ms, double dur_ms) {
    if (tracer_ != nullptr) tracer_->SetSimulated(id_, start_ms, dur_ms);
  }
  SpanId id() const { return id_; }
  Tracer* tracer() const { return tracer_; }

 private:
  static Tracer* Live(Tracer* tracer) {
    return tracer != nullptr && tracer->enabled() ? tracer : nullptr;
  }
  Tracer* tracer_;
  SpanId id_;
};

/// The compile-time null tracer: an empty type whose operations are
/// constexpr no-ops, for code generic over the tracer ("is the disabled
/// path really free?" is checkable with static_assert — see obs_test).
struct NullTracer {
  static constexpr bool kEnabled = false;
  static constexpr bool enabled() { return false; }
  static constexpr SpanId Begin(std::string_view /*name*/,
                                std::string_view /*detail*/ = {}) {
    return kNoSpan;
  }
  static constexpr void End(SpanId /*id*/) {}
  static constexpr SpanId Instant(std::string_view /*name*/,
                                  std::string_view /*detail*/ = {}) {
    return kNoSpan;
  }
  static constexpr void SetSimulated(SpanId /*id*/, double /*start_ms*/,
                                     double /*dur_ms*/) {}
  static constexpr void Counter(SpanId /*id*/, std::string_view /*name*/,
                                double /*value*/) {}
};

}  // namespace limcap::obs

#endif  // LIMCAP_OBS_TRACE_H_
