#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace limcap::obs {

namespace {

/// Bucket index for `value`: 0 for values < 1, else floor(log2) + 1,
/// clamped to the last bucket.
std::size_t BucketOf(double value) {
  if (!(value >= 1)) return 0;
  const int exponent = std::ilogb(value);
  const std::size_t bucket = static_cast<std::size_t>(exponent) + 1;
  return std::min(bucket, MetricsRegistry::Histogram::kBuckets - 1);
}

/// Renders doubles compactly: integers without a fraction, everything
/// else with three decimals — deterministic across platforms.
std::string FormatValue(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::Add(std::string_view name, double delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  Histogram& histogram = it->second;
  if (histogram.count == 0) {
    histogram.min = histogram.max = value;
  } else {
    histogram.min = std::min(histogram.min, value);
    histogram.max = std::max(histogram.max, value);
  }
  ++histogram.count;
  histogram.sum += value;
  ++histogram.buckets[BucketOf(value)];
}

double MetricsRegistry::Get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const MetricsRegistry::Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    Add(name, value);
  }
  for (const auto& [name, theirs] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    Histogram& ours = it->second;
    if (theirs.count != 0) {
      if (ours.count == 0) {
        ours.min = theirs.min;
        ours.max = theirs.max;
      } else {
        ours.min = std::min(ours.min, theirs.min);
        ours.max = std::max(ours.max, theirs.max);
      }
    }
    ours.count += theirs.count;
    ours.sum += theirs.sum;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      ours.buckets[i] += theirs.buckets[i];
    }
  }
}

void MetricsRegistry::Clear() {
  counters_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << FormatValue(value) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << ": count=" << histogram.count
        << " sum=" << FormatValue(histogram.sum)
        << " min=" << FormatValue(histogram.min)
        << " mean=" << FormatValue(histogram.mean())
        << " max=" << FormatValue(histogram.max) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << FormatValue(value);
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": {\"count\": " << histogram.count
        << ", \"sum\": " << FormatValue(histogram.sum)
        << ", \"min\": " << FormatValue(histogram.min)
        << ", \"mean\": " << FormatValue(histogram.mean())
        << ", \"max\": " << FormatValue(histogram.max) << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace limcap::obs
