#include "obs/trace.h"

#include <algorithm>

namespace limcap::obs {

SpanId Tracer::Begin(std::string name, std::string detail) {
  if (!enabled_) return kNoSpan;
  Span span;
  span.name = std::move(name);
  span.detail = std::move(detail);
  span.parent = open_stack_.empty() ? kNoSpan : open_stack_.back();
  span.start_us = NowUs();
  span.open = true;
  const SpanId id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void Tracer::End(SpanId id) {
  if (!enabled_ || id == kNoSpan || id >= spans_.size()) return;
  if (!spans_[id].open) return;
  const double now = NowUs();
  // Close `id` and any deeper span still open; Begin/End pairs emitted
  // through ScopedSpan always nest, so the loop normally pops exactly one.
  while (!open_stack_.empty()) {
    const SpanId top = open_stack_.back();
    open_stack_.pop_back();
    spans_[top].open = false;
    spans_[top].dur_us = now - spans_[top].start_us;
    if (top == id) break;
  }
}

SpanId Tracer::Instant(std::string name, std::string detail) {
  if (!enabled_) return kNoSpan;
  Span span;
  span.name = std::move(name);
  span.detail = std::move(detail);
  span.parent = open_stack_.empty() ? kNoSpan : open_stack_.back();
  span.start_us = NowUs();
  span.dur_us = 0;
  span.open = false;
  const SpanId id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(span));
  return id;
}

void Tracer::SetSimulated(SpanId id, double start_ms, double dur_ms) {
  if (!enabled_ || id == kNoSpan || id >= spans_.size()) return;
  spans_[id].sim_start_ms = start_ms;
  spans_[id].sim_dur_ms = dur_ms;
}

void Tracer::Counter(SpanId id, std::string name, double value) {
  if (!enabled_ || id == kNoSpan || id >= spans_.size()) return;
  for (auto& [existing, total] : spans_[id].counters) {
    if (existing == name) {
      total += value;
      return;
    }
  }
  spans_[id].counters.emplace_back(std::move(name), value);
}

std::size_t Tracer::CountSpans(std::string_view name) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [&](const Span& span) { return span.name == name; }));
}

std::size_t Tracer::CountSpans(std::string_view name,
                               std::string_view detail) const {
  return static_cast<std::size_t>(std::count_if(
      spans_.begin(), spans_.end(), [&](const Span& span) {
        return span.name == name && span.detail == detail;
      }));
}

double Tracer::SumCounter(std::string_view name,
                          std::string_view counter) const {
  double sum = 0;
  for (const Span& span : spans_) {
    if (span.name != name) continue;
    for (const auto& [key, value] : span.counters) {
      if (key == counter) sum += value;
    }
  }
  return sum;
}

double Tracer::SumCounter(std::string_view name, std::string_view detail,
                          std::string_view counter) const {
  double sum = 0;
  for (const Span& span : spans_) {
    if (span.name != name || span.detail != detail) continue;
    for (const auto& [key, value] : span.counters) {
      if (key == counter) sum += value;
    }
  }
  return sum;
}

}  // namespace limcap::obs
