#include "exec/query_context.h"

namespace limcap::exec {

QueryContext::QueryContext(const ExecOptions& base,
                           const planner::Query& query)
    : options_(base) {
  if (options_.session_dict == nullptr) {
    options_.session_dict = std::make_shared<ValueDictionary>();
  }
  for (const planner::InputAssignment& input : query.inputs()) {
    options_.session_dict->Intern(input.value);
  }
}

void QueryContext::IsolateMetrics() {
  if (isolated_) return;
  isolated_ = true;
  caller_metrics_ = options_.metrics;
  options_.metrics = &query_metrics_;
}

void QueryContext::PublishMetrics(
    std::initializer_list<obs::MetricsRegistry*> sinks) {
  if (!isolated_) return;
  if (caller_metrics_ != nullptr) caller_metrics_->Merge(query_metrics_);
  for (obs::MetricsRegistry* sink : sinks) {
    if (sink != nullptr) sink->Merge(query_metrics_);
  }
}

}  // namespace limcap::exec
