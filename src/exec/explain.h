#ifndef LIMCAP_EXEC_EXPLAIN_H_
#define LIMCAP_EXEC_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "exec/query_answerer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/query.h"

namespace limcap::exec {

/// One explain run over textual inputs — the library behind
/// `limcap_explain`, shared with the golden-file tests. Parses the
/// catalog and the connection query, answers the query with tracing and
/// metrics attached, and renders the whole story: why each view is
/// relevant (the FIND_REL kernels and closures), the optimized program,
/// the execution timeline, and the reconciled per-source metrics.
struct ExplainRequest {
  /// Catalog text for capability::ParseCatalog. Required.
  std::string catalog_text;
  /// Connection-query text for planner::ParseQuery. Required.
  std::string query_text;
  /// Optional source-access runtime config (runtime/runtime_config.h);
  /// empty keeps `options.runtime` as given.
  std::string runtime_text;
  /// Execution knobs (goal predicate, static analysis, budgets). The
  /// tracer/metrics fields are ignored — Explain attaches its own.
  ExecOptions options;
  /// Include wall-clock numbers in the rendered timeline. Off makes the
  /// report deterministic (simulated times and counters only), which is
  /// what the golden tests pin.
  bool include_timing = true;
};

struct ExplainReport {
  /// The full answer: plan, analysis, execution.
  AnswerReport answer;
  /// The parsed query (echoed into the report header).
  planner::Query query;
  /// The recorded span tree and the per-query metrics.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  /// The rendered text report.
  std::string rendered;
  /// The span tree as Chrome trace_event JSON (chrome://tracing,
  /// Perfetto).
  std::string chrome_trace;
};

/// Runs one explain. Returns an error Status only when the inputs are
/// unusable (unparsable catalog/query/runtime config, invalid query) or
/// the execution itself fails; a degraded (partial) answer is still a
/// report.
Result<ExplainReport> Explain(const ExplainRequest& request);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_EXPLAIN_H_
