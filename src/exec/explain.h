#ifndef LIMCAP_EXEC_EXPLAIN_H_
#define LIMCAP_EXEC_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "exec/query_answerer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/query.h"

namespace limcap::exec {

/// One explain run over textual inputs — the library behind
/// `limcap_explain`, shared with the golden-file tests. Parses the
/// catalog and the connection query, answers the query with tracing and
/// metrics attached, and renders the whole story: why each view is
/// relevant (the FIND_REL kernels and closures), the optimized program,
/// the execution timeline, and the reconciled per-source metrics.
struct ExplainRequest {
  /// Catalog text for capability::ParseCatalog. Required.
  std::string catalog_text;
  /// Connection-query text for planner::ParseQuery. Required.
  std::string query_text;
  /// Optional source-access runtime config (runtime/runtime_config.h);
  /// empty keeps `options.runtime` as given.
  std::string runtime_text;
  /// Execution knobs (goal predicate, static analysis, budgets). The
  /// tracer/metrics fields are ignored — Explain attaches its own.
  ExecOptions options;
  /// Include wall-clock numbers in the rendered timeline. Off makes the
  /// report deterministic (simulated times and counters only), which is
  /// what the golden tests pin.
  bool include_timing = true;
};

struct ExplainReport {
  /// The full answer: plan, analysis, execution.
  AnswerReport answer;
  /// The parsed query (echoed into the report header).
  planner::Query query;
  /// The recorded span tree and the per-query metrics.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  /// The rendered text report.
  std::string rendered;
  /// The span tree as Chrome trace_event JSON (chrome://tracing,
  /// Perfetto).
  std::string chrome_trace;
};

/// Runs one explain. Returns an error Status only when the inputs are
/// unusable (unparsable catalog/query/runtime config, invalid query) or
/// the execution itself fails; a degraded (partial) answer is still a
/// report.
Result<ExplainReport> Explain(const ExplainRequest& request);

/// Everything the text renderer reads, decoupled from how the answer was
/// produced — Explain() feeds it a live run, the replay path
/// (src/replay/) feeds it a run reconstructed from a captured artifact,
/// and both render byte-identically given equal inputs. All pointers are
/// non-owning and must outlive the call.
struct ExplainRenderInputs {
  const AnswerReport* answer = nullptr;
  const planner::Query* query = nullptr;
  /// Catalog views in registration order (for the binding-flow section).
  const std::vector<capability::SourceView>* views = nullptr;
  const planner::DomainMap* domains = nullptr;
  std::string goal_predicate = "ans";
  planner::PlanCache::Stats cache_stats;
  const obs::Tracer* tracer = nullptr;
  const obs::MetricsRegistry* metrics = nullptr;
  /// Include wall-clock numbers in the timeline (golden tests pin the
  /// deterministic form with this off).
  bool include_timing = true;
  /// Whether the run used the runtime-adaptive dispatch layer; drives
  /// the "Adaptive dispatch" section (which renders "off" otherwise).
  bool adaptive = false;
  /// Rendered verbatim before the Query section; empty renders nothing.
  /// The replay path puts its "Replay" section (manifest echo, recorded
  /// vs. replayed fingerprints) here.
  std::string preamble;
};

/// Renders the full report text: Query, Relevance, Optimized program,
/// Binding flow, Plan cache, Execution, Timeline, Metrics, Answer.
std::string RenderExplainText(const ExplainRenderInputs& inputs);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_EXPLAIN_H_
