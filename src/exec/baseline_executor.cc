#include "exec/baseline_executor.h"

#include <map>

#include "exec/bind_join.h"
#include "planner/closure.h"

namespace limcap::exec {

namespace {

using capability::SourceView;
using relational::Relation;

}  // namespace

Result<BaselineResult> BaselineExecutor::Execute(const planner::Query& query) {
  BaselineResult result;
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                          relational::Schema::Make(query.outputs()));
  result.answer = Relation(out_schema);

  // Input-value combinations (one value per attribute per pass).
  std::map<std::string, std::vector<Value>> input_values;
  for (const planner::InputAssignment& input : query.inputs()) {
    input_values[input.attribute].push_back(input.value);
  }
  std::vector<std::pair<std::string, std::vector<Value>>> choices(
      input_values.begin(), input_values.end());

  for (const planner::Connection& connection : query.connections()) {
    // Resolve the connection's adorned views.
    std::vector<SourceView> views;
    for (const std::string& name : connection.view_names()) {
      LIMCAP_ASSIGN_OR_RETURN(const SourceView* view,
                              catalog_->FindView(name));
      views.push_back(*view);
    }
    auto sequence =
        planner::ExecutableSequence(query.InputAttributes(), views);
    if (!sequence.ok()) {
      // Not independent: the baseline gives up on this connection.
      result.skipped_connections.push_back(connection);
      continue;
    }

    std::vector<std::size_t> pick(choices.size(), 0);
    while (true) {
      std::map<std::string, Value> combo;
      for (std::size_t i = 0; i < choices.size(); ++i) {
        combo.emplace(choices[i].first, choices[i].second[pick[i]]);
      }
      LIMCAP_RETURN_NOT_OK(ExecuteBindJoinChain(*catalog_, sequence.value(),
                                                combo, query.outputs(),
                                                &result.log, &result.answer));
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < choices[i].second.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }
  return result;
}

}  // namespace limcap::exec
