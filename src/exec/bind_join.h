#ifndef LIMCAP_EXEC_BIND_JOIN_H_
#define LIMCAP_EXEC_BIND_JOIN_H_

#include <map>
#include <string>
#include <vector>

#include "capability/access_log.h"
#include "capability/source_catalog.h"
#include "common/result.h"
#include "common/value.h"
#include "relational/relation.h"

namespace limcap::exec {

/// Executes an *executable sequence* of views (the witness of an
/// independent connection, Section 4.2) as a chain of bind-joins: walk
/// the sequence, issuing one source query per distinct combination of
/// the current view's bound attributes drawn from the inputs and the
/// intermediate result, and natural-joining the fetched tuples in.
///
/// For an independent connection this retrieves the complete answer for
/// the connection (Theorem 4.1). Preconditions: `sequence` is executable
/// from `inputs`' attributes (each view — under some template — has its
/// bound attributes covered by the inputs plus earlier views' attributes).
///
/// Appends the produced output rows (projected onto `outputs`, filtered
/// by the input assignments) to `answer` and one record per source query
/// to `log`.
Status ExecuteBindJoinChain(const capability::SourceCatalog& catalog,
                            const std::vector<std::string>& sequence,
                            const std::map<std::string, Value>& inputs,
                            const std::vector<std::string>& outputs,
                            capability::AccessLog* log,
                            relational::Relation* answer);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_BIND_JOIN_H_
