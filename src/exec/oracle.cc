#include "exec/oracle.h"

#include <vector>

#include "capability/in_memory_source.h"
#include "relational/operators.h"

namespace limcap::exec {

namespace {

using relational::Relation;

/// Selections for one combination of input values, restricted to the
/// attributes present in `schema`.
std::vector<relational::EqualityCondition> ConditionsFor(
    const std::map<std::string, Value>& combo,
    const relational::Schema& schema) {
  std::vector<relational::EqualityCondition> conditions;
  for (const auto& [attribute, value] : combo) {
    if (schema.Contains(attribute)) conditions.push_back({attribute, value});
  }
  return conditions;
}

}  // namespace

Result<Relation> CompleteAnswer(
    const planner::Query& query,
    const std::map<std::string, Relation>& full_data) {
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                          relational::Schema::Make(query.outputs()));
  Relation answer(out_schema);

  // Enumerate input-value combinations (one per attribute at a time);
  // almost always a single combination.
  std::map<std::string, std::vector<Value>> input_values;
  for (const planner::InputAssignment& input : query.inputs()) {
    input_values[input.attribute].push_back(input.value);
  }
  std::vector<std::pair<std::string, std::vector<Value>>> choices(
      input_values.begin(), input_values.end());
  std::vector<std::size_t> pick(choices.size(), 0);

  while (true) {
    std::map<std::string, Value> combo;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      combo.emplace(choices[i].first, choices[i].second[pick[i]]);
    }

    for (const planner::Connection& connection : query.connections()) {
      std::vector<const Relation*> joined;
      for (const std::string& name : connection.view_names()) {
        auto it = full_data.find(name);
        if (it == full_data.end()) {
          return Status::InvalidArgument("no full data for view " + name);
        }
        joined.push_back(&it->second);
      }
      Relation join = relational::NaturalJoinAll(joined);
      LIMCAP_ASSIGN_OR_RETURN(
          Relation selected,
          relational::Select(join, ConditionsFor(combo, join.schema())));
      LIMCAP_ASSIGN_OR_RETURN(Relation projected,
                              relational::Project(selected, query.outputs()));
      for (relational::Row& row : projected.DecodedRows()) {
        answer.InsertUnsafe(std::move(row));
      }
    }

    std::size_t i = 0;
    for (; i < pick.size(); ++i) {
      if (++pick[i] < choices[i].second.size()) break;
      pick[i] = 0;
    }
    if (i == pick.size()) break;
  }
  return answer;
}

Result<Relation> CompleteAnswer(const planner::Query& query,
                                const capability::SourceCatalog& catalog) {
  std::map<std::string, Relation> full_data;
  for (const planner::Connection& connection : query.connections()) {
    for (const std::string& name : connection.view_names()) {
      if (full_data.count(name) > 0) continue;
      LIMCAP_ASSIGN_OR_RETURN(capability::Source * source,
                              catalog.Find(name));
      auto* in_memory = dynamic_cast<capability::InMemorySource*>(source);
      if (in_memory == nullptr) {
        return Status::Unsupported(
            "oracle needs InMemorySource full extents; view " + name +
            " is backed by a different source type");
      }
      full_data.emplace(name, in_memory->data());
    }
  }
  return CompleteAnswer(query, full_data);
}

}  // namespace limcap::exec
