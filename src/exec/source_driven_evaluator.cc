#include "exec/source_driven_evaluator.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "capability/source.h"
#include "relational/schema.h"

namespace limcap::exec {

namespace {

using capability::AccessRecord;
using capability::Source;
using capability::SourceQuery;
using relational::Relation;

/// Per-(view, template) fetch state: which queries have been issued.
struct FetchSpec {
  Source* source = nullptr;
  std::size_t template_index = 0;
  /// Shared copy for access records, which outlive the execution.
  std::shared_ptr<const capability::SourceView> view;
  // The template's bound positions in schema order, with the bound
  // attributes' names and domain predicates.
  std::vector<uint32_t> bound_positions;
  std::vector<std::string> bound_attributes;
  std::vector<std::string> bound_domains;
  std::set<std::vector<ValueId>> asked;
};

}  // namespace

Result<ExecResult> SourceDrivenEvaluator::Execute(
    const datalog::Program& program, const planner::Query& query) {
  ExecResult result;
  if (options_.session_dict != nullptr) {
    result.store = datalog::FactStore(options_.session_dict);
  }
  const ValueDictionaryPtr& dict = result.store.dict_ptr();
  result.session_dict = dict;
  result.log.set_eager_render(options_.eager_render_log);

  datalog::Evaluator::Options eval_options;
  eval_options.mode = options_.mode;
  eval_options.num_threads = options_.eval_threads;
  LIMCAP_ASSIGN_OR_RETURN(
      auto evaluator,
      datalog::Evaluator::Create(program, &result.store, eval_options));

  // Identify the views the program reads and prepare their fetch state.
  std::set<std::string> mentioned = program.AllPredicates();
  std::vector<FetchSpec> specs;
  for (const std::string& name : catalog_->ViewNames()) {
    if (mentioned.count(name) == 0) continue;
    LIMCAP_ASSIGN_OR_RETURN(Source * source, catalog_->Find(name));
    const capability::SourceView& view = source->view();
    auto shared_view = std::make_shared<const capability::SourceView>(view);
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      FetchSpec spec;
      spec.source = source;
      spec.template_index = t;
      spec.view = shared_view;
      for (std::size_t i : view.templates()[t].BoundPositions()) {
        const std::string& attribute = view.schema().attribute(i);
        spec.bound_positions.push_back(static_cast<uint32_t>(i));
        spec.bound_attributes.push_back(attribute);
        spec.bound_domains.push_back(domains_.DomainOf(attribute));
      }
      specs.push_back(std::move(spec));
    }
  }

  // Single-translation accounting: everything after plan compilation is
  // id-only except source ingest (and the log's optional eager render),
  // which accrues into `ingest_allowance`.
  const uint64_t translations_at_start = dict->translation_count();
  uint64_t ingest_allowance = 0;

  // Tracks the domain values already seen, for the "New Binding(s)"
  // column of the trace (updated eagerly as queries return, ahead of the
  // Datalog round that formally derives them).
  std::map<std::string, std::set<ValueId>> seen_domain_values;
  auto domain_seen = [&](const std::string& domain, ValueId id) {
    auto [it, inserted] = seen_domain_values[domain].insert(id);
    return !inserted;
  };
  auto sync_domains = [&]() {
    for (const std::string& predicate : result.store.Predicates()) {
      for (datalog::RowView row : result.store.Facts(predicate)) {
        if (row.size() == 1) seen_domain_values[predicate].insert(row[0]);
      }
    }
  };

  // Issues one source query for `combo` against `spec`, folding the
  // returned tuples into the store and the trace. The query is formed by
  // copying ids — the domain predicates already hold session ids — and
  // the answer comes back encoded against the session dictionary, so no
  // value is rendered or re-parsed per round.
  auto issue = [&](FetchSpec& spec,
                   const std::vector<ValueId>& combo) -> Status {
    const capability::SourceView& view = *spec.view;
    SourceQuery source_query;
    source_query.positions = spec.bound_positions;
    source_query.ids = combo;
    source_query.dict = dict;
    const uint64_t before_execute = dict->translation_count();
    auto answered = spec.source->Execute(source_query);
    AccessRecord record;
    record.source = view.name();
    record.query = source_query;
    record.view = spec.view;
    record.round = result.rounds;
    const bool source_failed = !answered.ok();
    if (source_failed && !options_.continue_on_source_error) {
      return answered.status();
    }
    if (source_failed) record.error = answered.status().ToString();
    Relation tuples = source_failed ? Relation(view.schema(), dict)
                                    : std::move(answered).value();
    if (tuples.dict_ptr() != dict) {
      // A source that ignores the dictionary contract (possible for
      // third-party Source implementations) pays one re-keying pass —
      // still ingest, not hot path.
      tuples = tuples.WithDictionary(dict);
    }
    ingest_allowance += dict->translation_count() - before_execute;
    record.tuples_returned = tuples.size();
    relational::IdRow row_ids;
    for (std::size_t pos = 0; pos < tuples.size(); ++pos) {
      tuples.GatherRowIds(pos, &row_ids);
      LIMCAP_ASSIGN_OR_RETURN(bool inserted,
                              result.store.InsertIds(view.name(), row_ids));
      if (!inserted) continue;
      ++record.new_tuples;
      record.returned_ids.push_back(row_ids);
      // Report first-seen values of free attributes as new bindings.
      for (std::size_t i :
           view.templates()[spec.template_index].FreePositions()) {
        if (!domain_seen(domains_.DomainOf(view.schema().attribute(i)),
                         row_ids[i])) {
          record.new_binding_ids.emplace_back(view.schema().attribute(i),
                                              row_ids[i]);
        }
      }
    }
    const uint64_t before_record = dict->translation_count();
    result.log.Record(std::move(record));
    // Eager rendering decodes; lazy recording touches the dictionary not
    // at all.
    ingest_allowance += dict->translation_count() - before_record;
    return Status::OK();
  };

  // Runs `fn(spec, combo)` for each not-yet-asked binding combination of
  // `spec` (marking it asked); `fn` returns false to stop enumerating.
  auto for_each_unasked =
      [&](FetchSpec& spec,
          const std::function<Result<bool>(FetchSpec&,
                                           const std::vector<ValueId>&)>& fn)
      -> Result<bool> {  // false when fn stopped the enumeration
    // Capture sizes, not row views: `fn` inserts source results into the
    // store, and arenas may reallocate under a live span.
    std::vector<datalog::PredicateId> domain_preds;
    std::vector<std::size_t> domain_sizes;
    for (const std::string& domain : spec.bound_domains) {
      datalog::PredicateId pred = result.store.FindPredicate(domain);
      if (pred == datalog::kNoPredicate || result.store.Count(pred) == 0) {
        return true;
      }
      domain_preds.push_back(pred);
      domain_sizes.push_back(result.store.Count(pred));
    }
    std::vector<std::size_t> pick(spec.bound_domains.size(), 0);
    while (true) {
      std::vector<ValueId> combo;
      combo.reserve(pick.size());
      for (std::size_t i = 0; i < pick.size(); ++i) {
        combo.push_back(result.store.Row(domain_preds[i], pick[i])[0]);
      }
      if (spec.asked.insert(combo).second) {
        LIMCAP_ASSIGN_OR_RETURN(bool keep_going, fn(spec, combo));
        if (!keep_going) return false;
      }
      // Advance the odometer; a view with no bound attribute has exactly
      // one (empty) query, and the odometer exhausts immediately.
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < domain_sizes[i]) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
    return true;
  };

  const std::string& goal = options_.builder.goal_predicate;
  const bool eager = options_.strategy == FetchStrategy::kEager;
  bool done = false;
  while (!done) {
    LIMCAP_RETURN_NOT_OK(evaluator->Run());
    sync_domains();
    if (result.store.Count(goal) >= options_.min_answers) {
      // Enough results for the user (Section 7.2); stop fetching.
      result.budget_exhausted = true;
      break;
    }

    bool issued_any = false;
    for (FetchSpec& spec : specs) {
      LIMCAP_ASSIGN_OR_RETURN(
          bool exhausted,
          for_each_unasked(
              spec,
              [&](FetchSpec& s,
                  const std::vector<ValueId>& combo) -> Result<bool> {
                if (result.log.total_queries() >=
                    options_.max_source_queries) {
                  result.budget_exhausted = true;
                  done = true;
                  return false;
                }
                LIMCAP_RETURN_NOT_OK(issue(s, combo));
                issued_any = true;
                // Eager strategy: stop after one query and go derive.
                return !eager;
              }));
      if (!exhausted || done) break;
    }
    if (done) {
      // Budget exhausted: derive what we can from the facts on hand.
      LIMCAP_RETURN_NOT_OK(evaluator->Run());
      break;
    }
    if (!issued_any) {
      done = true;
    } else {
      ++result.rounds;
    }
  }

  result.datalog_stats = evaluator->stats();
  result.post_ingest_translations =
      dict->translation_count() - translations_at_start - ingest_allowance;

  // The goal predicate and the answer share the session dictionary, so
  // this copies ids without decoding.
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                          relational::Schema::Make(query.outputs()));
  LIMCAP_ASSIGN_OR_RETURN(
      result.answer,
      result.store.ToRelation(options_.builder.goal_predicate, out_schema));
  return result;
}

}  // namespace limcap::exec
