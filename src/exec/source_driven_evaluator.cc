#include "exec/source_driven_evaluator.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "analysis/dynamic_relevance.h"
#include "capability/source.h"
#include "relational/schema.h"
#include "runtime/adaptive_dispatcher.h"
#include "runtime/fetch_scheduler.h"

namespace limcap::exec {

namespace {

using capability::AccessRecord;
using capability::Source;
using capability::SourceQuery;
using relational::Relation;

/// Per-(view, template) fetch state: which queries have been issued.
struct FetchSpec {
  Source* source = nullptr;
  std::size_t template_index = 0;
  /// Shared copy for access records, which outlive the execution.
  std::shared_ptr<const capability::SourceView> view;
  // The template's bound positions in schema order, with the bound
  // attributes' names and domain predicates.
  std::vector<uint32_t> bound_positions;
  std::vector<std::string> bound_attributes;
  std::vector<std::string> bound_domains;
  std::set<std::vector<ValueId>> asked;
};

/// One frontier entry: a formable, not-yet-asked source query, identified
/// by its spec and the bound values. Enumerated in serial order (spec
/// order × odometer order), dispatched by the fetch scheduler, committed
/// back in this same order.
struct PendingFetch {
  std::size_t spec_index = 0;
  std::vector<ValueId> combo;
};

}  // namespace

Result<ExecResult> SourceDrivenEvaluator::Execute(
    const datalog::Program& program, const planner::Query& query) {
  obs::ScopedSpan exec_span(options_.tracer, "exec");
  ExecResult result;
  if (options_.session_dict != nullptr) {
    result.store = datalog::FactStore(options_.session_dict);
  }
  const ValueDictionaryPtr& dict = result.store.dict_ptr();
  result.session_dict = dict;
  result.log.set_eager_render(options_.eager_render_log);

  datalog::Evaluator::Options eval_options;
  eval_options.mode = options_.mode;
  eval_options.num_threads = options_.eval_threads;
  eval_options.tracer = options_.tracer;
  LIMCAP_ASSIGN_OR_RETURN(
      auto evaluator,
      datalog::Evaluator::Create(program, &result.store, eval_options));

  // Identify the views the program reads and prepare their fetch state.
  // Channels the static gate proved irrelevant (or unreachable) are
  // dropped before scheduling: the binding-flow soundness property
  // (analysis/binding_flow.h) guarantees the answer is unchanged.
  const std::set<std::pair<std::string, std::size_t>> pruned(
      options_.pruned_channels.begin(), options_.pruned_channels.end());
  std::size_t pruned_specs = 0;
  std::set<std::string> mentioned = program.AllPredicates();
  std::vector<FetchSpec> specs;
  // Channel metadata for the dynamic relevance checker: every (view,
  // template) of every mentioned view, statically pruned ones included
  // (their alpha rules still exist; the taint analysis must know their
  // binding shape), with spec_to_channel mapping the fetchable subset.
  std::vector<analysis::DynamicChannelInfo> channels;
  std::vector<std::size_t> spec_to_channel;
  for (const std::string& name : catalog_->ViewNames()) {
    if (mentioned.count(name) == 0) continue;
    LIMCAP_ASSIGN_OR_RETURN(Source * source, catalog_->Find(name));
    const capability::SourceView& view = source->view();
    auto shared_view = std::make_shared<const capability::SourceView>(view);
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      analysis::DynamicChannelInfo channel;
      channel.view = name;
      channel.template_index = t;
      for (std::size_t i = 0; i < view.schema().arity(); ++i) {
        channel.attributes.push_back(view.schema().attribute(i));
        channel.domains.push_back(
            domains_.DomainOf(view.schema().attribute(i)));
      }
      for (std::size_t i : view.templates()[t].BoundPositions()) {
        channel.bound_positions.push_back(static_cast<uint32_t>(i));
      }
      channel.fetchable = pruned.count({name, t}) == 0;
      if (!channel.fetchable) {
        ++pruned_specs;
        channels.push_back(std::move(channel));
        continue;
      }
      channels.push_back(std::move(channel));
      spec_to_channel.push_back(channels.size() - 1);
      FetchSpec spec;
      spec.source = source;
      spec.template_index = t;
      spec.view = shared_view;
      for (std::size_t i : view.templates()[t].BoundPositions()) {
        const std::string& attribute = view.schema().attribute(i);
        spec.bound_positions.push_back(static_cast<uint32_t>(i));
        spec.bound_attributes.push_back(attribute);
        spec.bound_domains.push_back(domains_.DomainOf(attribute));
      }
      specs.push_back(std::move(spec));
    }
  }
  if (pruned_specs > 0) {
    exec_span.Counter("pruned_channels", double(pruned_specs));
    if (options_.metrics != nullptr) {
      options_.metrics->Add(obs::metric::kAnalysisPrunedChannels,
                            double(pruned_specs));
    }
  }

  // Single-translation accounting: everything after plan compilation is
  // id-only except source ingest (and the log's optional eager render),
  // which accrues into `ingest_allowance`.
  const uint64_t translations_at_start = dict->translation_count();
  uint64_t ingest_allowance = 0;

  // Tracks the domain values already seen, for the "New Binding(s)"
  // column of the trace (updated eagerly as queries return, ahead of the
  // Datalog round that formally derives them).
  std::map<std::string, std::set<ValueId>> seen_domain_values;
  auto domain_seen = [&](const std::string& domain, ValueId id) {
    auto [it, inserted] = seen_domain_values[domain].insert(id);
    return !inserted;
  };
  auto sync_domains = [&]() {
    for (const std::string& predicate : result.store.Predicates()) {
      for (datalog::RowView row : result.store.Facts(predicate)) {
        if (row.size() == 1) seen_domain_values[predicate].insert(row[0]);
      }
    }
  };

  // The source-access runtime. One scheduler serves the whole execution,
  // so circuit-breaker state and the simulated clock carry across rounds.
  runtime::RuntimeOptions runtime_options = options_.runtime;
  runtime_options.stop_on_error = !options_.continue_on_source_error;
  runtime::FetchScheduler scheduler(runtime_options, dict,
                                    options_.tracer);

  // The runtime-adaptive layer (off by default). The checker re-derives
  // relevance against the actually-materialized bindings each round; it
  // needs the round's FULL frontier for its frozen fixpoint, so dynamic
  // pruning is disabled under the eager strategy (which truncates the
  // frontier before it is fully enumerated).
  const bool eager = options_.strategy == FetchStrategy::kEager;
  std::unique_ptr<runtime::AdaptiveDispatcher> dispatcher;
  std::unique_ptr<analysis::DynamicRelevanceChecker> checker;
  if (runtime_options.adaptive.enabled) {
    dispatcher = std::make_unique<runtime::AdaptiveDispatcher>(runtime_options,
                                                               &scheduler);
    if (runtime_options.adaptive.dynamic_pruning && !eager) {
      analysis::DynamicRelevanceOptions checker_options;
      checker_options.goal_predicate = options_.builder.goal_predicate;
      checker_options.alpha_suffix = options_.builder.alpha_suffix;
      checker = std::make_unique<analysis::DynamicRelevanceChecker>(
          &program, channels, &result.store, checker_options);
    }
  }

  // Folds one answered (or failed) fetch into the store and the trace.
  // Called in frontier order on this thread, which is what makes
  // concurrent dispatch bit-identical to serial: store inserts, log
  // records, and any re-keying Interns happen in the serial order no
  // matter how the batch actually ran.
  auto commit = [&](const FetchSpec& spec, std::vector<ValueId> combo,
                    runtime::FetchResult& fetched) -> Status {
    const capability::SourceView& view = *spec.view;
    SourceQuery source_query;
    source_query.positions = spec.bound_positions;
    source_query.ids = std::move(combo);
    source_query.dict = dict;
    AccessRecord record;
    record.source = view.name();
    record.query = std::move(source_query);
    record.view = spec.view;
    record.round = result.rounds;
    const bool source_failed = !fetched.tuples.ok();
    if (source_failed && !options_.continue_on_source_error) {
      return fetched.tuples.status();
    }
    if (source_failed) record.error = fetched.tuples.status().ToString();
    Relation tuples = source_failed ? Relation(view.schema(), dict)
                                    : std::move(fetched.tuples).value();
    if (tuples.dict_ptr() != dict) {
      // A source that ignores the dictionary contract (possible for
      // third-party Source implementations) pays one re-keying pass —
      // still ingest, not hot path.
      tuples = tuples.WithDictionary(dict);
    }
    record.tuples_returned = tuples.size();
    relational::IdRow row_ids;
    for (std::size_t pos = 0; pos < tuples.size(); ++pos) {
      tuples.GatherRowIds(pos, &row_ids);
      LIMCAP_ASSIGN_OR_RETURN(bool inserted,
                              result.store.InsertIds(view.name(), row_ids));
      if (!inserted) continue;
      ++record.new_tuples;
      record.returned_ids.push_back(row_ids);
      // Report first-seen values of free attributes as new bindings.
      for (std::size_t i :
           view.templates()[spec.template_index].FreePositions()) {
        if (!domain_seen(domains_.DomainOf(view.schema().attribute(i)),
                         row_ids[i])) {
          record.new_binding_ids.emplace_back(view.schema().attribute(i),
                                              row_ids[i]);
        }
      }
    }
    result.log.Record(std::move(record));
    return Status::OK();
  };

  // Appends every formable, not-yet-asked query of `spec` to `frontier`
  // in odometer order. Pure reads — nothing is marked asked until the
  // frontier is truncated to what will actually be dispatched. Captures
  // sizes, not row views: later inserts may reallocate arenas.
  auto collect_unasked = [&](std::size_t spec_index,
                             std::vector<PendingFetch>* frontier) {
    FetchSpec& spec = specs[spec_index];
    std::vector<datalog::PredicateId> domain_preds;
    std::vector<std::size_t> domain_sizes;
    for (const std::string& domain : spec.bound_domains) {
      datalog::PredicateId pred = result.store.FindPredicate(domain);
      if (pred == datalog::kNoPredicate || result.store.Count(pred) == 0) {
        return;
      }
      domain_preds.push_back(pred);
      domain_sizes.push_back(result.store.Count(pred));
    }
    std::vector<std::size_t> pick(spec.bound_domains.size(), 0);
    while (true) {
      std::vector<ValueId> combo;
      combo.reserve(pick.size());
      for (std::size_t i = 0; i < pick.size(); ++i) {
        combo.push_back(result.store.Row(domain_preds[i], pick[i])[0]);
      }
      if (spec.asked.count(combo) == 0) {
        frontier->push_back({spec_index, std::move(combo)});
      }
      // Advance the odometer; a view with no bound attribute has exactly
      // one (empty) query, and the odometer exhausts immediately.
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < domain_sizes[i]) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  };

  const std::string& goal = options_.builder.goal_predicate;
  bool done = false;
  while (!done) {
    // The round number is the span's position among "exec.round"
    // siblings; no detail string, so the disabled path allocates nothing.
    obs::ScopedSpan round_span(options_.tracer, "exec.round");
    {
      obs::ScopedSpan eval_span(options_.tracer, "eval");
      LIMCAP_RETURN_NOT_OK(evaluator->Run());
    }
    sync_domains();
    if (result.store.Count(goal) >= options_.min_answers) {
      // Enough results for the user (Section 7.2); stop fetching.
      result.budget_exhausted = true;
      break;
    }

    // This round's frontier. Domain predicates only grow inside
    // evaluator->Run(), so the full frontier is determined here, before
    // any of its fetches executes — the scheduler may answer it in any
    // physical order and the ordered commit reproduces serial execution.
    std::vector<PendingFetch> frontier;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      collect_unasked(s, &frontier);
      // Eager strategy: one query per round, then go derive.
      if (eager && !frontier.empty()) break;
    }
    if (checker != nullptr) {
      // The frozen fixpoint must see the FULL frontier's pending
      // channels — entries a budget truncation drops below still count
      // as pending (conservative: their predicates stay unfrozen).
      std::vector<bool> has_pending(channels.size(), false);
      for (const PendingFetch& pending : frontier) {
        has_pending[spec_to_channel[pending.spec_index]] = true;
      }
      checker->BeginRound(has_pending);
    }
    if (eager && frontier.size() > 1) frontier.resize(1);
    // Source-access budget: dispatch only up to the budget's remainder;
    // any formable query beyond it makes the answer a partial one.
    const std::size_t remaining =
        options_.max_source_queries - result.log.total_queries();
    if (frontier.size() > remaining) {
      frontier.resize(remaining);
      result.budget_exhausted = true;
      done = true;
    }

    std::vector<runtime::FetchRequest> requests;
    requests.reserve(frontier.size());
    for (const PendingFetch& pending : frontier) {
      FetchSpec& spec = specs[pending.spec_index];
      spec.asked.insert(pending.combo);
      runtime::FetchRequest request;
      request.source = spec.source;
      request.query.positions = spec.bound_positions;
      request.query.ids = pending.combo;
      request.query.dict = dict;
      requests.push_back(std::move(request));
    }
    if (!requests.empty()) {
      // Everything the batch window translates — source ingest, private-
      // dictionary cloning under concurrent dispatch, re-keying, the
      // log's optional eager render — is ingest, not hot path.
      const uint64_t before_batch = dict->translation_count();
      runtime::AdaptiveDispatcher::SkipProbe probe;
      if (checker != nullptr) {
        probe = [&](std::size_t i) {
          auto certificate = checker->TrySkip(
              spec_to_channel[frontier[i].spec_index], frontier[i].combo);
          if (!certificate.has_value()) return false;
          result.skip_certificates.push_back(*std::move(certificate));
          return true;
        };
      }
      std::vector<runtime::FetchResult> fetched =
          dispatcher != nullptr
              ? dispatcher->ExecuteFrontier(requests, probe)
              : scheduler.ExecuteBatch(requests);
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        // A dynamically skipped fetch leaves no trace: no source call,
        // no access record, no store insert, no budget spend — only its
        // certificate (the combo stays marked asked; the skip is final).
        if (fetched[i].skipped_dynamic) continue;
        LIMCAP_RETURN_NOT_OK(commit(specs[frontier[i].spec_index],
                                    std::move(frontier[i].combo),
                                    fetched[i]));
      }
      ingest_allowance += dict->translation_count() - before_batch;
    }
    if (done) {
      // Budget exhausted: derive what we can from the facts on hand.
      obs::ScopedSpan eval_span(options_.tracer, "eval");
      LIMCAP_RETURN_NOT_OK(evaluator->Run());
      break;
    }
    if (requests.empty()) {
      done = true;
    } else {
      ++result.rounds;
    }
  }

  result.fetch_report = scheduler.report();
  if (dispatcher != nullptr) {
    dispatcher->PublishShared();
    for (const auto& [source, count] : dispatcher->skipped_per_source()) {
      result.fetch_report.per_source[source].skipped_dynamic += count;
      result.fetch_report.skipped_dynamic += count;
    }
    result.adaptive_profiles = dispatcher->profiles();
  }
  if (checker != nullptr) {
    // The checker's inputs ride along so certificates stay re-verifiable
    // after the evaluator is gone (ExecResult::adaptive_program doc).
    result.adaptive_program = program;
    result.adaptive_channels = checker->channels();
  }
  result.datalog_stats = evaluator->stats();
  result.post_ingest_translations =
      dict->translation_count() - translations_at_start - ingest_allowance;

  // The goal predicate and the answer share the session dictionary, so
  // this copies ids without decoding.
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                          relational::Schema::Make(query.outputs()));
  LIMCAP_ASSIGN_OR_RETURN(
      result.answer,
      result.store.ToRelation(options_.builder.goal_predicate, out_schema));
  RecordExecMetrics(result, options_.metrics);
  return result;
}

void RecordExecMetrics(const ExecResult& result,
                       obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  const datalog::EvalStats& eval = result.datalog_stats;
  metrics->Add(obs::metric::kEvalRounds, double(eval.iterations));
  metrics->Add(obs::metric::kEvalActivations, double(eval.rule_activations));
  metrics->Add(obs::metric::kEvalFactsDerived, double(eval.facts_derived));
  metrics->Add(obs::metric::kEvalMatches, double(eval.matches));
  for (uint64_t activations : eval.round_activations) {
    metrics->Observe(obs::metric::kHistRoundActivations,
                     double(activations));
  }

  const runtime::FetchReport& fetch = result.fetch_report;
  metrics->Add(obs::metric::kFetchBatches, double(fetch.batches));
  metrics->Add(obs::metric::kFetchAttempts, double(fetch.total_attempts));
  metrics->Add(obs::metric::kFetchRetries, double(fetch.total_retries));
  metrics->Add(obs::metric::kFetchTimeouts, double(fetch.total_timeouts));
  metrics->Add(obs::metric::kFetchCoalesced, double(fetch.coalesced_hits));
  metrics->Add(obs::metric::kFetchSkippedDynamic,
               double(fetch.skipped_dynamic));
  metrics->Add(obs::metric::kFetchHedged, double(fetch.hedged));
  metrics->Add(obs::metric::kFetchBatched, double(fetch.batched_calls));
  metrics->Add(obs::metric::kFetchMakespanMs, fetch.simulated_makespan_ms);
  metrics->Add(obs::metric::kFetchFailedViews,
               double(fetch.failed_views.size()));
  std::size_t breaker_skips = 0;
  for (const auto& [name, stats] : fetch.per_source) {
    breaker_skips += stats.breaker_skips;
    if (stats.attempts + stats.breaker_skips > 0) {
      metrics->Observe(obs::metric::kHistFetchMs, stats.simulated_busy_ms);
    }
  }
  metrics->Add(obs::metric::kFetchBreakerSkips, double(breaker_skips));

  metrics->Add(obs::metric::kExecFetchRounds, double(result.rounds));
  metrics->Add(obs::metric::kExecSourceQueries,
               double(result.log.total_queries()));
  metrics->Add(obs::metric::kAnswerRows, double(result.answer.size()));
}

}  // namespace limcap::exec
