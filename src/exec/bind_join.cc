#include "exec/bind_join.h"

#include <set>

#include "capability/source.h"
#include "relational/operators.h"

namespace limcap::exec {

namespace {

using capability::AccessRecord;
using capability::AttributeSet;
using capability::Source;
using capability::SourceQuery;
using capability::SourceView;
using relational::Relation;
using relational::Row;

}  // namespace

Status ExecuteBindJoinChain(const capability::SourceCatalog& catalog,
                            const std::vector<std::string>& sequence,
                            const std::map<std::string, Value>& inputs,
                            const std::vector<std::string>& outputs,
                            capability::AccessLog* log,
                            relational::Relation* answer) {
  // The running intermediate result; starts as the join identity.
  Relation intermediate{relational::Schema::MakeUnsafe({})};
  intermediate.InsertUnsafe({});

  for (const std::string& view_name : sequence) {
    LIMCAP_ASSIGN_OR_RETURN(Source * source, catalog.Find(view_name));
    const SourceView& view = source->view();

    // Pick the first template satisfiable from the attributes available
    // at this point of the sequence (the executable sequence guarantees
    // one exists).
    AttributeSet available;
    for (const auto& [attribute, value] : inputs) available.insert(attribute);
    for (const std::string& attribute :
         intermediate.schema().attributes()) {
      available.insert(attribute);
    }
    auto template_index = view.SatisfiedTemplate(available);
    if (!template_index.has_value()) {
      return Status::Internal("executable sequence broken: no template of " +
                              view_name + " satisfiable");
    }

    // Bound attributes take their value from the inputs or from the
    // intermediate result.
    std::vector<std::string> bound_from_inputs;
    std::vector<std::size_t> bound_columns;   // columns of intermediate
    std::vector<std::string> bound_from_rows; // their attribute names
    for (std::size_t i :
         view.templates()[*template_index].BoundPositions()) {
      const std::string& attribute = view.schema().attribute(i);
      if (inputs.count(attribute) > 0) {
        bound_from_inputs.push_back(attribute);
      } else {
        auto column = intermediate.schema().IndexOf(attribute);
        if (!column.has_value()) {
          return Status::Internal(
              "executable sequence broken: attribute " + attribute +
              " of view " + view_name + " is not bound");
        }
        bound_columns.push_back(*column);
        bound_from_rows.push_back(attribute);
      }
    }

    // Issue one source query per distinct binding combination.
    Relation fetched(view.schema());
    std::set<Row> asked;
    for (const Row& row : intermediate.rows()) {
      Row key;
      key.reserve(bound_columns.size());
      for (std::size_t c : bound_columns) key.push_back(row[c]);
      if (!asked.insert(key).second) continue;

      SourceQuery query;
      for (const std::string& attribute : bound_from_inputs) {
        query.bindings.emplace(attribute, inputs.at(attribute));
      }
      for (std::size_t i = 0; i < bound_from_rows.size(); ++i) {
        query.bindings.emplace(bound_from_rows[i], key[i]);
      }
      LIMCAP_ASSIGN_OR_RETURN(Relation tuples, source->Execute(query));

      AccessRecord record;
      record.source = view_name;
      record.query = query;
      record.rendered_query = view.FormatQuery(query.bindings);
      record.tuples_returned = tuples.size();
      for (const Row& tuple : tuples.rows()) {
        // Enforce input assignments on the view's other attributes (the
        // source query only bound B(v)).
        bool matches = true;
        for (const auto& [attribute, value] : inputs) {
          auto column = view.schema().IndexOf(attribute);
          if (column.has_value() && tuple[*column] != value) {
            matches = false;
            break;
          }
        }
        if (matches && fetched.InsertUnsafe(tuple)) {
          ++record.new_tuples;
          record.returned_rendered.push_back(relational::RowToString(tuple));
        }
      }
      log->Record(std::move(record));
    }

    intermediate = relational::NaturalJoin(intermediate, fetched);
    if (intermediate.empty()) break;
  }

  if (intermediate.empty()) return Status::OK();
  LIMCAP_ASSIGN_OR_RETURN(Relation projected,
                          relational::Project(intermediate, outputs));
  for (const Row& row : projected.rows()) answer->InsertUnsafe(row);
  return Status::OK();
}

}  // namespace limcap::exec
