#include "exec/bind_join.h"

#include <memory>
#include <set>

#include "capability/source.h"
#include "relational/operators.h"

namespace limcap::exec {

namespace {

using capability::AccessRecord;
using capability::AttributeSet;
using capability::Source;
using capability::SourceQuery;
using capability::SourceView;
using relational::IdRow;
using relational::Relation;

}  // namespace

Status ExecuteBindJoinChain(const capability::SourceCatalog& catalog,
                            const std::vector<std::string>& sequence,
                            const std::map<std::string, Value>& inputs,
                            const std::vector<std::string>& outputs,
                            capability::AccessLog* log,
                            relational::Relation* answer) {
  // Everything in the chain encodes against the answer's dictionary; the
  // input constants are interned once here and flow as ids from then on.
  const ValueDictionaryPtr& dict = answer->dict_ptr();
  std::map<std::string, ValueId> input_ids;
  for (const auto& [attribute, value] : inputs) {
    input_ids.emplace(attribute, dict->Intern(value));
  }

  // The running intermediate result; starts as the join identity.
  Relation intermediate(relational::Schema::MakeUnsafe({}), dict);
  intermediate.InsertIdsUnsafe({});

  for (const std::string& view_name : sequence) {
    LIMCAP_ASSIGN_OR_RETURN(Source * source, catalog.Find(view_name));
    const SourceView& view = source->view();
    auto shared_view = std::make_shared<const SourceView>(view);

    // Pick the first template satisfiable from the attributes available
    // at this point of the sequence (the executable sequence guarantees
    // one exists).
    AttributeSet available;
    for (const auto& [attribute, value] : inputs) available.insert(attribute);
    for (const std::string& attribute :
         intermediate.schema().attributes()) {
      available.insert(attribute);
    }
    auto template_index = view.SatisfiedTemplate(available);
    if (!template_index.has_value()) {
      return Status::Internal("executable sequence broken: no template of " +
                              view_name + " satisfiable");
    }

    // Each bound position takes its id from the input constants or from a
    // column of the intermediate result. BoundPositions ascend, so the
    // query positions come out in canonical order.
    std::vector<uint32_t> bound_positions;
    std::vector<ValueId> fixed_ids;       // input-bound id, by bound index
    std::vector<std::size_t> row_columns; // intermediate column, or npos
    constexpr std::size_t kFromInput = ~std::size_t{0};
    std::vector<std::size_t> key_columns; // intermediate columns, in order
    for (std::size_t i :
         view.templates()[*template_index].BoundPositions()) {
      const std::string& attribute = view.schema().attribute(i);
      bound_positions.push_back(static_cast<uint32_t>(i));
      auto input = input_ids.find(attribute);
      if (input != input_ids.end()) {
        fixed_ids.push_back(input->second);
        row_columns.push_back(kFromInput);
      } else {
        auto column = intermediate.schema().IndexOf(attribute);
        if (!column.has_value()) {
          return Status::Internal(
              "executable sequence broken: attribute " + attribute +
              " of view " + view_name + " is not bound");
        }
        fixed_ids.push_back(0);
        row_columns.push_back(*column);
        key_columns.push_back(*column);
      }
    }

    // Issue one source query per distinct binding combination — all id
    // comparisons, no value materialization.
    Relation fetched(view.schema(), dict);
    std::set<IdRow> asked;
    IdRow key(key_columns.size());
    IdRow row_ids;
    for (std::size_t pos = 0; pos < intermediate.size(); ++pos) {
      for (std::size_t c = 0; c < key_columns.size(); ++c) {
        key[c] = intermediate.IdAt(pos, key_columns[c]);
      }
      if (!asked.insert(key).second) continue;

      SourceQuery query;
      query.positions = bound_positions;
      query.dict = dict;
      query.ids.reserve(bound_positions.size());
      std::size_t next_key = 0;
      for (std::size_t b = 0; b < bound_positions.size(); ++b) {
        query.ids.push_back(row_columns[b] == kFromInput
                                ? fixed_ids[b]
                                : key[next_key++]);
      }
      LIMCAP_ASSIGN_OR_RETURN(Relation tuples, source->Execute(query));
      if (tuples.dict_ptr() != dict) {
        // Foreign-dictionary answer (non-conforming source): re-key once
        // at ingest.
        tuples = tuples.WithDictionary(dict);
      }

      AccessRecord record;
      record.source = view_name;
      record.query = query;
      record.view = shared_view;
      record.tuples_returned = tuples.size();
      for (std::size_t t = 0; t < tuples.size(); ++t) {
        // Enforce input assignments on the view's other attributes (the
        // source query only bound B(v)).
        bool matches = true;
        for (const auto& [attribute, id] : input_ids) {
          auto column = view.schema().IndexOf(attribute);
          if (column.has_value() && tuples.IdAt(t, *column) != id) {
            matches = false;
            break;
          }
        }
        if (!matches) continue;
        tuples.GatherRowIds(t, &row_ids);
        if (fetched.InsertIdsUnsafe(row_ids)) {
          ++record.new_tuples;
          record.returned_ids.push_back(row_ids);
        }
      }
      log->Record(std::move(record));
    }

    intermediate = relational::NaturalJoin(intermediate, fetched);
    if (intermediate.empty()) break;
  }

  if (intermediate.empty()) return Status::OK();
  LIMCAP_ASSIGN_OR_RETURN(Relation projected,
                          relational::Project(intermediate, outputs));
  IdRow row;
  for (std::size_t pos = 0; pos < projected.size(); ++pos) {
    projected.GatherRowIds(pos, &row);
    answer->InsertIdsUnsafe(row);
  }
  return Status::OK();
}

}  // namespace limcap::exec
