#ifndef LIMCAP_EXEC_SOURCE_DRIVEN_EVALUATOR_H_
#define LIMCAP_EXEC_SOURCE_DRIVEN_EVALUATOR_H_

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dynamic_relevance.h"
#include "capability/access_log.h"
#include "capability/source_catalog.h"
#include "common/result.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/fact_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/domain_map.h"
#include "planner/program_builder.h"
#include "planner/query.h"
#include "relational/relation.h"
#include "runtime/adaptive_state.h"
#include "runtime/fetch_report.h"
#include "runtime/options.h"

namespace limcap::planner {
class PlanCache;
}  // namespace limcap::planner

namespace limcap::exec {

/// How the evaluator schedules source queries between Datalog rounds.
enum class FetchStrategy {
  /// Each round issues every currently formable query, then derives —
  /// maximizes per-round parallelism (see exec/latency_model.h).
  kRoundBased,
  /// Issue one query, immediately derive, repeat — the depth-first style
  /// of the paper's Table 2 narration. Same fixpoint, different order;
  /// with early stopping (budgets, min_answers) it can need fewer
  /// queries, at the price of fully sequential rounds.
  kEager,
};

/// Whether (and how strictly) QueryAnswerer runs the static program
/// verifier (analysis/analyzer.h) over a program before executing it.
enum class StaticAnalysisMode {
  /// No analysis (default).
  kOff,
  /// Run the analyzer and attach its findings to the AnswerReport;
  /// execute regardless.
  kWarn,
  /// Refuse to execute a program with error-severity diagnostics (e.g.
  /// an unbindable view atom). The strict bind-join contract: every
  /// source-view atom must admit an executable ordering.
  kReject,
  /// Drop every rule the analyzer proves can never fire, then execute.
  /// Sound: pruned rules are evaluation-inert, the answer is unchanged.
  kPrune,
};

/// Execution knobs.
struct ExecOptions {
  planner::BuilderOptions builder;
  /// Static verification before execution; see StaticAnalysisMode.
  StaticAnalysisMode static_analysis = StaticAnalysisMode::kOff;
  datalog::Evaluator::Mode mode = datalog::Evaluator::Mode::kSemiNaive;
  /// Worker threads when `mode` is kParallelSemiNaive (0 = hardware
  /// concurrency); ignored by the serial modes.
  std::size_t eval_threads = 0;
  FetchStrategy strategy = FetchStrategy::kRoundBased;
  /// Source-access budget (Section 7.2 partial answers): the evaluator
  /// stops issuing source queries once this many have been sent and
  /// finishes deriving from what it has.
  std::size_t max_source_queries = std::numeric_limits<std::size_t>::max();
  /// Result target (Section 7.2: "we decide how many source queries to
  /// send based on how many results the user is interested in"): stop
  /// fetching as soon as the goal predicate holds at least this many
  /// facts. The final answer may exceed the target (a fetch round can
  /// add several answers at once).
  std::size_t min_answers = std::numeric_limits<std::size_t>::max();
  /// When true, a source query that fails (e.g. the source is down) is
  /// logged with its error and treated as returning no tuples, and the
  /// evaluation continues — the answer is then a sound partial answer
  /// whose ExecResult::fetch_report names the failed views. When false
  /// (default) the first permanent failure aborts the evaluation. Either
  /// way a query fails permanently only after `runtime.retry` (or the
  /// per-source override) is out of attempts.
  bool continue_on_source_error = false;
  /// The source-access runtime: concurrency, coalescing, retry/backoff,
  /// deadlines, circuit breakers, and the simulated LatencyModel clock.
  /// The defaults reproduce the legacy serial single-attempt fetch loop
  /// bit for bit. (`runtime.stop_on_error` is derived from
  /// `continue_on_source_error`; setting it here has no effect.)
  runtime::RuntimeOptions runtime;
  /// The session dictionary every relation, fact and source query of this
  /// execution encodes against. Null (default) creates a fresh one; the
  /// mediator passes its own so the answer stays decodable after the
  /// evaluator is gone.
  ValueDictionaryPtr session_dict;
  /// When true, the access log renders its paper-notation strings at
  /// record time instead of lazily on first read. Costs one decode pass
  /// per logged tuple on the execution path; useful for verbose tracing.
  bool eager_render_log = false;
  /// Fetch channels — (view name, template index) pairs — the evaluator
  /// must not schedule queries for. Filled by QueryAnswerer under
  /// StaticAnalysisMode::kPrune from the binding-flow verdicts
  /// (analysis/binding_flow.h): every listed channel is statically
  /// irrelevant or unreachable, so dropping it is answer-preserving.
  std::vector<std::pair<std::string, std::size_t>> pruned_channels;
  /// Compiled-plan cache (optional, non-owning, must outlive the call).
  /// When set, QueryAnswerer::Answer looks its (catalog fingerprint,
  /// query signature) key up before planning: a hit skips FIND_REL,
  /// program construction, Section 6 optimization and the static gate; a
  /// miss plans as usual and publishes the artifact. The evaluator itself
  /// ignores this — execution always runs. The mediator wires its
  /// session cache in here; standalone QueryAnswerer users may share one
  /// cache across answerers (it is thread-safe).
  planner::PlanCache* plan_cache = nullptr;
  /// Observability (both optional, non-owning, must outlive the
  /// execution; both belong to the driver thread only). `tracer` records
  /// the hierarchical span timeline — plan stages, per-round evaluation,
  /// per-fetch source calls; `metrics` receives the named counters of
  /// obs/metrics.h, reconciled exactly with EvalStats and FetchReport.
  /// Null (the default) keeps the hot path at a branch per emission
  /// point; tracing never changes answers (enforced by property tests).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// What an execution produced.
struct ExecResult {
  /// The obtainable answer: the goal predicate's facts, with the query's
  /// output attributes as schema.
  relational::Relation answer;
  /// The full source-access trace (the paper's Table 2).
  capability::AccessLog log;
  /// All derived facts — the alpha-predicates, domain predicates and goal
  /// (the paper's Table 3).
  datalog::FactStore store;
  datalog::EvalStats datalog_stats;
  /// Fetch-evaluate rounds executed.
  std::size_t rounds = 0;
  /// True when max_source_queries or min_answers stopped fetching early,
  /// making `answer` a (possibly) partial answer.
  bool budget_exhausted = false;
  /// What the fetch scheduler did: per-source attempts/retries/timeouts/
  /// breaker accounting, simulated makespans, and — when sources failed
  /// permanently under continue_on_source_error — the degraded-answer
  /// annotation naming the failed views (fetch_report.degraded()).
  runtime::FetchReport fetch_report;
  /// The dictionary `answer`, `store` and the log's interned records
  /// encode against (shared with the store).
  ValueDictionaryPtr session_dict;
  /// One machine-checkable certificate per fetch the adaptive
  /// dispatcher's dynamic relevance check suppressed (empty unless
  /// RuntimeOptions::adaptive is on), in suppression order. Each is
  /// re-checkable via analysis::VerifySkipCertificate.
  std::vector<analysis::SkipCertificate> skip_certificates;
  /// The dynamic relevance checker's inputs (filled only when adaptive
  /// dynamic pruning ran): the executed program and the channel
  /// metadata. Together with `store` they let anyone rebuild a checker
  /// and independently re-verify every skip certificate — frozen-ness
  /// and frozen extents are monotone across rounds, so the final store
  /// upholds every certificate issued mid-run.
  datalog::Program adaptive_program;
  std::vector<analysis::DynamicChannelInfo> adaptive_channels;
  /// The per-source latency/rows/failure profiles the adaptive
  /// dispatcher learned over this execution (empty when adaptive is
  /// off); rendered by explain's "Adaptive dispatch" section.
  std::map<std::string, runtime::SourceProfile> adaptive_profiles;
  /// Value↔id translations the session dictionary performed on the hot
  /// path after plan compilation, excluding source ingest (each source's
  /// Execute and any re-keying of foreign-dictionary answers) and the
  /// log's eager rendering. The single-translation invariant of the
  /// interned execution path makes this 0: once a tuple enters the
  /// session dictionary it flows as ids to the final answer. Tests
  /// assert on it.
  uint64_t post_ingest_translations = 0;
};

/// Evaluates a program Π(Q, V) against live capability-restricted sources
/// (Section 3.3). The program's EDB predicates are the view predicates;
/// they cannot be scanned, so the evaluator alternates:
///
///   1. run the Datalog program to fixpoint over the facts obtained so
///      far (deriving alpha-predicate facts, domain values, and answers);
///   2. for every view whose EDB predicate the program uses, form each
///      not-yet-issued source query from the current values of the bound
///      attributes' domain predicates, send it, and add the returned
///      tuples as EDB facts.
///
/// Every issued query satisfies the source's binding requirements by
/// construction. The loop ends when a fetch pass issues no new query —
/// then the goal predicate holds the maximal obtainable answer
/// (Proposition 3.2).
class SourceDrivenEvaluator {
 public:
  /// `catalog` must outlive the evaluator.
  SourceDrivenEvaluator(const capability::SourceCatalog* catalog,
                        planner::DomainMap domains, ExecOptions options = {})
      : catalog_(catalog),
        domains_(std::move(domains)),
        options_(std::move(options)) {}

  /// Runs `program` to completion. `query` supplies the goal's output
  /// schema.
  Result<ExecResult> Execute(const datalog::Program& program,
                             const planner::Query& query);

 private:
  const capability::SourceCatalog* catalog_;
  planner::DomainMap domains_;
  ExecOptions options_;
};

/// Folds an execution's EvalStats / FetchReport / answer shape into
/// `metrics` under the canonical names of obs/metrics.h. No-op on null.
/// Called by SourceDrivenEvaluator::Execute; exposed so tools and tests
/// can aggregate hand-driven executions the same way.
void RecordExecMetrics(const ExecResult& result,
                       obs::MetricsRegistry* metrics);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_SOURCE_DRIVEN_EVALUATOR_H_
