#ifndef LIMCAP_EXEC_QUERY_ANSWERER_H_
#define LIMCAP_EXEC_QUERY_ANSWERER_H_

#include <map>
#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "exec/query_context.h"
#include "exec/source_driven_evaluator.h"
#include "planner/plan_cache.h"
#include "planner/program_optimizer.h"
#include "relational/relation.h"

namespace limcap::exec {

/// What the plan cache did for one answer (all zero/false when no cache
/// was wired in or the path does not cache).
struct PlanCacheReport {
  /// A cache was consulted (options.plan_cache was set on a caching
  /// path — today that is QueryAnswerer::Answer).
  bool attempted = false;
  /// The plan was served from the cache; planning and the static gate
  /// were skipped.
  bool hit = false;
  /// The catalog half of the key (SourceCatalog::fingerprint()).
  uint64_t catalog_fingerprint = 0;
  /// The query half of the key (QuerySignature::hash).
  uint64_t key_fingerprint = 0;
  /// The canonical signature text behind key_fingerprint.
  std::string signature;
};

/// Everything produced by answering one query end-to-end.
struct AnswerReport {
  /// The plan: FIND_REL analysis, Π(Q, V), Π(Q, V_r), optimized program.
  planner::PlanResult plan;
  /// The static verifier's findings, when options.static_analysis was
  /// not kOff (see `analysis_ran`). Under kPrune, `executability` names
  /// the rules that were dropped before execution. On a plan-cache hit
  /// these are the cached verdicts — valid because the program they
  /// describe is byte-identical.
  analysis::AnalysisResult analysis;
  bool analysis_ran = false;
  /// Plan-cache outcome for this answer.
  PlanCacheReport cache;
  /// Execution of the optimized program against the sources.
  ExecResult exec;
};

/// The mediator facade: plan with FIND_REL + useless-rule removal
/// (Section 6), then evaluate the optimized program against the sources
/// (Section 3.3). This is the paper's full pipeline and the library's
/// front door:
///
///   QueryAnswerer answerer(&catalog, domains);
///   auto report = answerer.Answer(query);
///   report->exec.answer;  // the maximal obtainable answer
class QueryAnswerer {
 public:
  /// `catalog` must outlive the answerer.
  QueryAnswerer(const capability::SourceCatalog* catalog,
                planner::DomainMap domains)
      : catalog_(catalog), domains_(std::move(domains)) {}

  /// Validates, plans, and executes `query`.
  Result<AnswerReport> Answer(const planner::Query& query,
                              const ExecOptions& options = {}) const;

  /// The re-entrant core of Answer(): all per-query state lives in
  /// `context`, the answerer itself is immutable, so any number of
  /// threads may call this on ONE answerer concurrently — each with its
  /// own context — as long as shared handles the contexts carry
  /// (plan cache, fetch governor) are themselves thread-safe. This is
  /// what the multi-query server runs per request.
  Result<AnswerReport> Answer(const planner::Query& query,
                              QueryContext& context) const;

  /// Plans and executes the *unoptimized* Π(Q, V) — used by benches to
  /// measure what FIND_REL saves.
  Result<AnswerReport> AnswerUnoptimized(const planner::Query& query,
                                         const ExecOptions& options = {}) const;

  /// Hybrid strategy exploiting Theorem 4.1: independent connections are
  /// executed directly as bind-join chains (their complete answer needs
  /// no domain exploration), while the remaining connections run through
  /// the Datalog evaluator; the answers are unioned. Produces the same
  /// answer as Answer(). `options.max_source_queries` / `min_answers`
  /// apply to the Datalog part only.
  Result<AnswerReport> AnswerHybrid(const planner::Query& query,
                                    const ExecOptions& options = {}) const;

  /// Section 7.1: answers `query` with cached data folded in. Each entry
  /// of `cached` maps a view name to previously obtained tuples of that
  /// view (e.g. CachingSource::ObservedTuples() from an earlier session);
  /// every tuple becomes an alpha-predicate fact plus domain facts in the
  /// program, potentially unlocking sources and answers the cold start
  /// cannot reach. Fails when a cached view is unknown or a tuple's arity
  /// mismatches.
  Result<AnswerReport> AnswerWithCache(
      const planner::Query& query,
      const std::map<std::string, relational::Relation>& cached,
      const ExecOptions& options = {}) const;

 private:
  const capability::SourceCatalog* catalog_;
  planner::DomainMap domains_;
};

/// The strict static gate: runs the verifier over `program` (the one
/// about to execute) against `views` and applies
/// `options.static_analysis` — kOff passes the program through
/// untouched; kWarn analyzes and attaches the findings to `report`;
/// kReject returns CapabilityViolation when the analysis has
/// error-severity findings; kPrune returns the program with every
/// provably never-firing rule removed (answer-preserving). Exposed so
/// tests and tools can gate hand-written programs exactly the way
/// QueryAnswerer gates planned ones.
Result<datalog::Program> ApplyStaticAnalysisGate(
    const datalog::Program& program,
    const std::vector<capability::SourceView>& views,
    const planner::DomainMap& domains, const ExecOptions& options,
    AnswerReport* report);

/// Reads back per-connection answers from an execution whose program was
/// built with options.builder.per_connection_goals: maps each
/// connection's ToString() to the relation of answers that connection
/// contributed. `connections` must be the list the program was built
/// from — for QueryAnswerer::Answer that is
/// report.plan.relevance.queryable_connections.
/// Fills `report->degraded_connections` with the ToString() of every
/// connection that traverses a failed view (Section 7.2 partial-answer
/// semantics): the execution's answer is sound, but those connections may
/// be under-answered. QueryAnswerer calls this after every execution;
/// exposed so tests and tools can annotate hand-driven executions.
void AnnotateDegradedConnections(
    const std::vector<planner::Connection>& connections,
    runtime::FetchReport* report);

Result<std::map<std::string, relational::Relation>> PerConnectionAnswers(
    const ExecResult& exec,
    const std::vector<planner::Connection>& connections,
    const planner::Query& query,
    const planner::BuilderOptions& options = {});

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_QUERY_ANSWERER_H_
