#ifndef LIMCAP_EXEC_QUERY_CONTEXT_H_
#define LIMCAP_EXEC_QUERY_CONTEXT_H_

#include <initializer_list>

#include "exec/source_driven_evaluator.h"
#include "obs/metrics.h"
#include "planner/query.h"

namespace limcap::exec {

/// The per-query execution state, extracted so one QueryAnswerer (and
/// one Mediator) can answer many queries concurrently: everything a
/// query mutates while being answered lives here, and nothing here is
/// shared between queries.
///
///   * the session ValueDictionary (created fresh when the caller
///     supplied none, seeded with the query's input constants in input
///     order — the seeding order is part of the bit-identity contract:
///     warm, cold, serial and concurrent answers all intern the inputs
///     first, so ids evolve identically);
///   * a private MetricsRegistry the query's counters land in when
///     IsolateMetrics() is on, published to session/server registries
///     exactly once afterwards — never double-counted, never racing;
///   * the effective ExecOptions: tracer (driver-thread-only, so one per
///     query), budgets, and the handles to genuinely shared state — the
///     thread-safe PlanCache and the server-wide FetchGovernor — which
///     are referenced, not owned.
///
/// A QueryContext is pinned to its construction site (the options point
/// into the object when metrics are isolated), hence neither copyable
/// nor movable: construct it where the query runs, pass it by reference.
class QueryContext {
 public:
  /// Copies `base`, fills in a fresh session dictionary when it carries
  /// none, and resolves the query's input constants into it once — the
  /// execution layers below only ever copy the resulting ids.
  QueryContext(const ExecOptions& base, const planner::Query& query);

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Redirects the options' metrics sink into this context's private
  /// registry, remembering the caller's sink (if any) for
  /// PublishMetrics. Call before answering; idempotent.
  void IsolateMetrics();

  /// Merges the private registry into the remembered caller sink and
  /// into each non-null registry of `sinks`. Call at most once, after
  /// the answer completed (the mediator publishes only successful
  /// answers, keeping failed attempts out of session aggregates).
  void PublishMetrics(std::initializer_list<obs::MetricsRegistry*> sinks);

  /// The effective options to answer with.
  const ExecOptions& options() const { return options_; }
  ExecOptions& options() { return options_; }

  const ValueDictionaryPtr& dict() const { return options_.session_dict; }

  /// This query's own counters (meaningful once IsolateMetrics ran).
  const obs::MetricsRegistry& query_metrics() const { return query_metrics_; }

 private:
  ExecOptions options_;
  obs::MetricsRegistry query_metrics_;
  obs::MetricsRegistry* caller_metrics_ = nullptr;
  bool isolated_ = false;
};

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_QUERY_CONTEXT_H_
