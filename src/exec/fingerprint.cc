#include "exec/fingerprint.h"

#include <sstream>

namespace limcap::exec {

std::string OrderedFingerprint(const ExecResult& exec) {
  std::ostringstream out;
  out << "rounds=" << exec.rounds << " budget=" << exec.budget_exhausted
      << " dict=" << exec.session_dict->size() << "\n";
  relational::IdRow row;
  out << "answer:";
  for (std::size_t pos = 0; pos < exec.answer.size(); ++pos) {
    exec.answer.GatherRowIds(pos, &row);
    out << " <";
    for (ValueId id : row) out << id << ",";
    out << ">";
  }
  out << "\n";
  for (const auto& record : exec.log.records()) {
    out << record.source << " round=" << record.round << " q=[";
    for (std::size_t i = 0; i < record.query.ids.size(); ++i) {
      out << record.query.positions[i] << ":" << record.query.ids[i] << ",";
    }
    out << "] returned=" << record.tuples_returned
        << " new=" << record.new_tuples << " ids=";
    for (const auto& ids : record.returned_ids) {
      out << "<";
      for (ValueId id : ids) out << id << ",";
      out << ">";
    }
    out << " bindings=";
    for (const auto& [attribute, id] : record.new_binding_ids) {
      out << attribute << "=" << id << ",";
    }
    if (!record.error.empty()) out << " error=" << record.error;
    out << "\n";
  }
  for (const std::string& predicate : exec.store.Predicates()) {
    out << predicate << ":";
    for (datalog::RowView fact : exec.store.Facts(predicate)) {
      out << " <";
      for (std::size_t i = 0; i < fact.size(); ++i) out << fact[i] << ",";
      out << ">";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace limcap::exec
