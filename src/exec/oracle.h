#ifndef LIMCAP_EXEC_ORACLE_H_
#define LIMCAP_EXEC_ORACLE_H_

#include <map>
#include <string>

#include "capability/source_catalog.h"
#include "common/result.h"
#include "planner/query.h"
#include "relational/relation.h"

namespace limcap::exec {

/// Computes the *complete* answer to a query (Section 2.3) — the answer
/// the sources would give if they had no capability restrictions: for each
/// connection, the natural join of the full source relations, selected on
/// the input assignments and projected onto the outputs; unioned across
/// connections. This is the ground truth the obtainable answer is
/// compared against (obtainable ⊆ complete always; equality iff nothing
/// was lost to the restrictions).
///
/// `full_data` maps each view name mentioned by the query to the full
/// extent of the source relation — information the integration system
/// cannot see in production, which is exactly why this is an oracle for
/// tests and benches.
Result<relational::Relation> CompleteAnswer(
    const planner::Query& query,
    const std::map<std::string, relational::Relation>& full_data);

/// Convenience: extracts the full extents from a catalog of
/// InMemorySources. Fails if some source backing a queried view is not an
/// InMemorySource.
Result<relational::Relation> CompleteAnswer(
    const planner::Query& query, const capability::SourceCatalog& catalog);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_ORACLE_H_
