#include "exec/explain.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "analysis/binding_flow.h"
#include "analysis/dynamic_relevance.h"
#include "capability/catalog_fingerprint.h"
#include "common/text_table.h"
#include "capability/catalog_text.h"
#include "obs/export.h"
#include "planner/plan_cache.h"
#include "planner/query_parser.h"
#include "runtime/runtime_config.h"

namespace limcap::exec {

namespace {

void Section(std::ostringstream& out, const char* title) {
  out << "== " << title << " ==\n";
}

void RenderRelevance(const planner::PlanResult& plan,
                     std::ostringstream& out) {
  Section(out, "Relevance (FIND_REL)");
  out << plan.relevance.ToString();
  for (const planner::Connection& connection :
       plan.relevance.queryable_connections) {
    out << "-- connection " << connection.ToString() << " --\n"
        << plan.relevance.reports.at(connection.ToString()).ToString();
  }
  out << "\n";
}

void RenderProgram(const planner::PlanResult& plan,
                   std::ostringstream& out) {
  Section(out, "Optimized program");
  out << plan.optimized_program.size() << " rule(s); Section 6 removed "
      << plan.removed_rules.size() << " of "
      << plan.relevant_program.size() << " (full program: "
      << plan.full_program.size() << ")\n"
      << plan.optimized_program.ToString();
  if (!plan.removed_rules.empty()) {
    out << "removed as useless:\n";
    for (const datalog::Rule& rule : plan.removed_rules) {
      out << "  " << rule.ToString() << "\n";
    }
  }
  out << "\n";
}

void RenderBindingFlow(const planner::PlanResult& plan,
                       const std::vector<capability::SourceView>& views,
                       const planner::DomainMap& domains,
                       const std::string& goal, std::ostringstream& out) {
  // Run the binding-flow pass on the optimized program here (instead of
  // relying on the answer's gate mode) so the section renders under
  // every StaticAnalysisMode, including kOff.
  Section(out, "Binding flow");
  analysis::BindingFlowOptions options;
  options.goal_predicate = goal;
  out << analysis::RenderBindingFlowText(analysis::AnalyzeBindingFlow(
             plan.optimized_program, views, domains, options))
      << "\n";
}

void RenderPlanCache(const AnswerReport& answer,
                     const planner::PlanCache::Stats& stats,
                     std::ostringstream& out) {
  Section(out, "Plan cache");
  if (!answer.cache.attempted) {
    out << "not consulted\n\n";
    return;
  }
  out << (answer.cache.hit ? "hit" : "miss") << "  catalog fingerprint: "
      << capability::FingerprintToString(answer.cache.catalog_fingerprint)
      << "  key: "
      << capability::FingerprintToString(answer.cache.key_fingerprint)
      << "\nsignature: " << answer.cache.signature << "\nstate: "
      << stats.size << "/" << stats.capacity << " entries  hits " << stats.hits
      << "  misses " << stats.misses << "  inserts " << stats.inserts
      << "  evictions " << stats.evictions << "\n\n";
}

void RenderExecution(const AnswerReport& answer, std::ostringstream& out) {
  const ExecResult& exec = answer.exec;
  Section(out, "Execution");
  out << "fetch-eval rounds: " << exec.rounds
      << "  source queries: " << exec.log.total_queries()
      << "  facts derived: " << exec.datalog_stats.facts_derived
      << (exec.budget_exhausted ? "  [budget exhausted: partial answer]"
                                : "")
      << "\n";
  if (answer.analysis_ran) {
    out << "static analysis: " << answer.analysis.diagnostics.size()
        << " diagnostic(s), " << answer.analysis.diagnostics.errors()
        << " error(s)\n";
  }
  out << exec.log.ToTable(/*productive_only=*/false);
  out << exec.fetch_report.ToString() << "\n";
}

std::string Ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  return buffer;
}

void RenderAdaptive(const AnswerReport& answer, bool adaptive,
                    std::ostringstream& out) {
  Section(out, "Adaptive dispatch");
  if (!adaptive) {
    out << "off\n\n";
    return;
  }
  const ExecResult& exec = answer.exec;
  const runtime::FetchReport& fetch = exec.fetch_report;
  out << "skipped (dynamic relevance): " << fetch.skipped_dynamic
      << "  hedged: " << fetch.hedged << " (" << fetch.hedge_wins
      << " rescued)  batched: " << fetch.batched_calls << "\n";
  if (!exec.skip_certificates.empty()) {
    out << analysis::RenderSkipCertificates(exec.skip_certificates);
  }
  if (!exec.adaptive_profiles.empty()) {
    TextTable table({"Source", "Fetches", "EWMA ms", "p95 ms", "Rows",
                     "Fail rate", "Score"});
    for (const auto& [source, profile] : exec.adaptive_profiles) {
      char fail[32];
      std::snprintf(fail, sizeof(fail), "%.2f", profile.failure_rate);
      char score[32];
      std::snprintf(score, sizeof(score), "%.3f", profile.Score());
      table.AddRow({source, std::to_string(profile.observations),
                    Ms(profile.ewma_latency_ms),
                    Ms(profile.LatencyQuantileMs(0.95)),
                    Ms(profile.ewma_rows), fail, score});
    }
    out << table.ToString();
  }
  out << "\n";
}

}  // namespace

std::string RenderExplainText(const ExplainRenderInputs& inputs) {
  std::ostringstream out;
  out << inputs.preamble;
  Section(out, "Query");
  out << inputs.query->ToString() << "\n\n";
  RenderRelevance(inputs.answer->plan, out);
  RenderProgram(inputs.answer->plan, out);
  RenderBindingFlow(inputs.answer->plan, *inputs.views, *inputs.domains,
                    inputs.goal_predicate, out);
  RenderPlanCache(*inputs.answer, inputs.cache_stats, out);
  RenderExecution(*inputs.answer, out);
  RenderAdaptive(*inputs.answer, inputs.adaptive, out);

  Section(out, "Timeline");
  obs::SpanTreeOptions tree_options;
  tree_options.include_wall = inputs.include_timing;
  out << obs::RenderSpanTree(*inputs.tracer, tree_options) << "\n";

  Section(out, "Metrics");
  out << inputs.metrics->RenderText() << "\n";

  Section(out, "Answer");
  out << inputs.answer->exec.answer.size() << " row(s): "
      << inputs.answer->exec.answer.ToString() << "\n";
  if (inputs.answer->exec.fetch_report.degraded()) {
    out << "WARNING: partial answer — failed views: ";
    for (const std::string& view :
         inputs.answer->exec.fetch_report.failed_views) {
      out << view << " ";
    }
    out << "\n";
  }
  return out.str();
}

Result<ExplainReport> Explain(const ExplainRequest& request) {
  LIMCAP_ASSIGN_OR_RETURN(capability::ParsedCatalog parsed,
                          capability::ParseCatalog(request.catalog_text));
  LIMCAP_ASSIGN_OR_RETURN(planner::Query query,
                          planner::ParseQuery(request.query_text));

  ExplainReport report;
  report.query = std::move(query);

  ExecOptions options = request.options;
  if (!request.runtime_text.empty()) {
    // The config file has no adaptive stanza; an explicitly requested
    // adaptive mode (--adaptive) survives the config load.
    const runtime::AdaptiveOptions adaptive = options.runtime.adaptive;
    LIMCAP_ASSIGN_OR_RETURN(
        options.runtime, runtime::ParseRuntimeConfig(request.runtime_text));
    if (adaptive.enabled) options.runtime.adaptive = adaptive;
  }
  options.tracer = &report.tracer;
  options.metrics = &report.metrics;

  // One-shot cache so the report always carries the key the answer would
  // cache under (an explain run itself is always a cold miss).
  planner::PlanCache local_cache;
  if (options.plan_cache == nullptr) options.plan_cache = &local_cache;

  {
    // Answer in a scope of its own so every span is closed before the
    // exporters run.
    QueryAnswerer answerer(&parsed.catalog, planner::DomainMap());
    LIMCAP_ASSIGN_OR_RETURN(report.answer,
                            answerer.Answer(report.query, options));
  }
  const std::vector<capability::SourceView> views = parsed.catalog.Views();
  const planner::DomainMap domains;
  ExplainRenderInputs render;
  render.answer = &report.answer;
  render.query = &report.query;
  render.views = &views;
  render.domains = &domains;
  render.goal_predicate = options.builder.goal_predicate;
  render.cache_stats = options.plan_cache->stats();
  render.tracer = &report.tracer;
  render.metrics = &report.metrics;
  render.include_timing = request.include_timing;
  render.adaptive = options.runtime.adaptive.enabled;
  report.rendered = RenderExplainText(render);
  report.chrome_trace = obs::ChromeTraceJson(report.tracer);
  return report;
}

}  // namespace limcap::exec
