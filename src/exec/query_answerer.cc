#include "exec/query_answerer.h"

#include "exec/bind_join.h"
#include "planner/closure.h"

namespace limcap::exec {

namespace {

/// Plan-shape counters, recorded once per PlanQuery on every answer path.
void RecordPlanMetrics(const planner::PlanResult& plan,
                       obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Add(obs::metric::kPlanConnectionsQueryable,
               double(plan.relevance.queryable_connections.size()));
  metrics->Add(obs::metric::kPlanConnectionsDropped,
               double(plan.relevance.dropped_connections.size()));
  metrics->Add(obs::metric::kPlanRelevantViews,
               double(plan.relevance.relevant_union.size()));
  metrics->Add(obs::metric::kPlanRulesRemoved,
               double(plan.removed_rules.size()));
}

/// The gate mode as the plan-cache config tag: the gate is the one exec
/// knob that changes the compiled artifact (kPrune rewrites the program,
/// kWarn attaches verdicts), so plans compiled under different modes must
/// not share a cache key.
std::string_view StaticAnalysisModeTag(StaticAnalysisMode mode) {
  switch (mode) {
    case StaticAnalysisMode::kOff:
      return "off";
    case StaticAnalysisMode::kWarn:
      return "warn";
    case StaticAnalysisMode::kReject:
      return "reject";
    case StaticAnalysisMode::kPrune:
      return "prune";
  }
  return "off";
}

/// The execution options a path hands its evaluator: under kPrune, the
/// gate's (or a warm cache hit's replayed) binding-flow verdicts become
/// the evaluator's pruned-channel list, so statically irrelevant fetch
/// channels are never scheduled. Other modes execute unchanged.
ExecOptions WithStaticPrunes(const ExecOptions& options,
                             const AnswerReport& report) {
  ExecOptions out = options;
  if (options.static_analysis == StaticAnalysisMode::kPrune &&
      report.analysis_ran && report.analysis.binding_flow_ran) {
    out.pruned_channels = report.analysis.binding_flow.PrunedChannels();
  }
  return out;
}

}  // namespace

void AnnotateDegradedConnections(
    const std::vector<planner::Connection>& connections,
    runtime::FetchReport* report) {
  report->degraded_connections.clear();
  if (report->failed_views.empty()) return;
  for (const planner::Connection& connection : connections) {
    for (const std::string& name : connection.view_names()) {
      if (report->failed_views.count(name) != 0) {
        report->degraded_connections.push_back(connection.ToString());
        break;
      }
    }
  }
}

Result<datalog::Program> ApplyStaticAnalysisGate(
    const datalog::Program& program,
    const std::vector<capability::SourceView>& views,
    const planner::DomainMap& domains, const ExecOptions& options,
    AnswerReport* report) {
  if (options.static_analysis == StaticAnalysisMode::kOff) return program;
  obs::ScopedSpan gate_span(options.tracer, "analysis.gate");
  analysis::AnalysisOptions analysis_options;
  analysis_options.goal_predicate = options.builder.goal_predicate;
  analysis_options.domains = domains;
  report->analysis = analysis::AnalyzeProgram(program, views,
                                              analysis_options);
  report->analysis_ran = true;
  {
    // The binding-flow pass runs under its own span so the timeline
    // separates the channel-relevance fixpoint from the older passes.
    // Its LC030-LC032 findings are warnings/notes, so kReject semantics
    // are unchanged; under kPrune its verdicts drop the statically
    // irrelevant channels before scheduling (see below).
    obs::ScopedSpan flow_span(options.tracer, "analysis.binding_flow");
    analysis::BindingFlowOptions flow_options;
    flow_options.goal_predicate = options.builder.goal_predicate;
    report->analysis.binding_flow =
        analysis::AnalyzeBindingFlow(program, views, domains, flow_options);
    report->analysis.binding_flow_ran = true;
    analysis::AppendBindingFlowDiagnostics(
        program, report->analysis.binding_flow, nullptr,
        &report->analysis.diagnostics);
    report->analysis.diagnostics.Sort();
    flow_span.Counter(
        "prunable_channels",
        double(report->analysis.binding_flow.PrunedChannels().size()));
  }
  gate_span.Counter("diagnostics",
                    double(report->analysis.diagnostics.size()));
  if (options.metrics != nullptr) {
    options.metrics->Add(obs::metric::kAnalysisDiagnostics,
                         double(report->analysis.diagnostics.size()));
  }
  if (options.static_analysis == StaticAnalysisMode::kReject &&
      report->analysis.diagnostics.has_errors()) {
    return Status::CapabilityViolation(
        "static analysis rejected the program:\n" +
        report->analysis.diagnostics.RenderText());
  }
  if (options.static_analysis == StaticAnalysisMode::kPrune) {
    return analysis::PruneNeverFiringRules(program,
                                           report->analysis.executability);
  }
  return program;
}

Result<AnswerReport> QueryAnswerer::Answer(const planner::Query& query,
                                           const ExecOptions& options) const {
  // Validate before the context interns the query's inputs, so a
  // rejected query leaves a caller-supplied dictionary untouched.
  LIMCAP_RETURN_NOT_OK(query.Validate(*catalog_, domains_));
  QueryContext context(options, query);
  return Answer(query, context);
}

Result<AnswerReport> QueryAnswerer::Answer(const planner::Query& query,
                                           QueryContext& context) const {
  LIMCAP_RETURN_NOT_OK(query.Validate(*catalog_, domains_));
  const ExecOptions& session_options = context.options();
  obs::ScopedSpan answer_span(session_options.tracer, "answer");
  AnswerReport report;

  // Warm path: look the (catalog fingerprint, query signature) key up
  // before planning. A hit replays the compiled artifact — the plan, the
  // analysis verdicts, and the post-gate executable program — and goes
  // straight to execution. The session dictionary was already seeded with
  // the query's input constants above, in the same order as on the cold
  // path, so execution proceeds over an identically-evolving dictionary
  // and the warm answer is bit-identical to the cold one.
  std::shared_ptr<const planner::CachedPlan> cached;
  planner::QuerySignature signature;
  if (session_options.plan_cache != nullptr) {
    obs::ScopedSpan lookup_span(session_options.tracer, "plan.cache_lookup");
    LIMCAP_ASSIGN_OR_RETURN(
        signature,
        planner::MakeQuerySignature(
            query, *catalog_, domains_, session_options.builder,
            StaticAnalysisModeTag(session_options.static_analysis)));
    report.cache.attempted = true;
    report.cache.catalog_fingerprint = catalog_->fingerprint();
    report.cache.key_fingerprint = signature.hash;
    report.cache.signature = signature.canonical;
    cached = session_options.plan_cache->Lookup(
        report.cache.catalog_fingerprint, signature);
    report.cache.hit = cached != nullptr;
    lookup_span.Counter("hit", report.cache.hit ? 1 : 0);
    if (session_options.metrics != nullptr) {
      session_options.metrics->Add(report.cache.hit
                                       ? obs::metric::kPlanCacheHits
                                       : obs::metric::kPlanCacheMisses);
    }
  }

  datalog::Program program;
  if (cached != nullptr) {
    report.plan = cached->plan;
    program = cached->executable_program;
    RecordPlanMetrics(report.plan, session_options.metrics);
    if (cached->analysis_ran) {
      report.analysis = *std::static_pointer_cast<const analysis::AnalysisResult>(
          cached->verdicts);
      report.analysis_ran = true;
      // Mirror the gate's accounting so warm and cold answers report the
      // same metrics.
      if (session_options.metrics != nullptr) {
        session_options.metrics->Add(
            obs::metric::kAnalysisDiagnostics,
            double(report.analysis.diagnostics.size()));
      }
    }
  } else {
    LIMCAP_ASSIGN_OR_RETURN(
        report.plan, planner::PlanQuery(query, catalog_->Views(), domains_,
                                        session_options.builder, {},
                                        session_options.tracer));
    RecordPlanMetrics(report.plan, session_options.metrics);
    LIMCAP_ASSIGN_OR_RETURN(
        program,
        ApplyStaticAnalysisGate(report.plan.optimized_program,
                                catalog_->Views(), domains_, session_options,
                                &report));
    // Publish the artifact. kReject failures never reach this point (the
    // gate returned the error above), so rejections are re-diagnosed —
    // and re-reported — on every attempt.
    if (report.cache.attempted) {
      auto entry = std::make_shared<planner::CachedPlan>();
      entry->plan = report.plan;
      entry->executable_program = program;
      entry->analysis_ran = report.analysis_ran;
      if (report.analysis_ran) {
        entry->verdicts =
            std::make_shared<const analysis::AnalysisResult>(report.analysis);
      }
      entry->catalog_fingerprint = report.cache.catalog_fingerprint;
      entry->signature = signature;
      uint64_t evictions_before =
          session_options.plan_cache->stats().evictions;
      session_options.plan_cache->Insert(std::move(entry));
      if (session_options.metrics != nullptr) {
        uint64_t evicted = session_options.plan_cache->stats().evictions -
                           evictions_before;
        if (evicted > 0) {
          session_options.metrics->Add(obs::metric::kPlanCacheEvictions,
                                       double(evicted));
        }
      }
    }
  }

  const ExecOptions exec_options = WithStaticPrunes(session_options, report);
  SourceDrivenEvaluator evaluator(catalog_, domains_, exec_options);
  LIMCAP_ASSIGN_OR_RETURN(report.exec, evaluator.Execute(program, query));
  AnnotateDegradedConnections(report.plan.relevance.queryable_connections,
                              &report.exec.fetch_report);
  return report;
}

Result<AnswerReport> QueryAnswerer::AnswerHybrid(
    const planner::Query& query, const ExecOptions& options) const {
  LIMCAP_RETURN_NOT_OK(query.Validate(*catalog_, domains_));
  QueryContext context(options, query);
  const ExecOptions& session_options = context.options();
  const ValueDictionaryPtr& dict = session_options.session_dict;
  obs::ScopedSpan answer_span(session_options.tracer, "answer", "hybrid");
  AnswerReport report;
  LIMCAP_ASSIGN_OR_RETURN(
      report.plan, planner::PlanQuery(query, catalog_->Views(), domains_,
                                      session_options.builder, {},
                                      session_options.tracer));
  RecordPlanMetrics(report.plan, session_options.metrics);

  // Partition the queryable connections by (attribute-level)
  // independence.
  std::vector<planner::Connection> independent;
  std::vector<planner::Connection> dependent;
  std::map<std::string, std::vector<std::string>> sequences;
  for (const planner::Connection& connection :
       report.plan.relevance.queryable_connections) {
    std::vector<capability::SourceView> views;
    for (const std::string& name : connection.view_names()) {
      LIMCAP_ASSIGN_OR_RETURN(const capability::SourceView* view,
                              catalog_->FindView(name));
      views.push_back(*view);
    }
    auto sequence =
        planner::ExecutableSequence(query.InputAttributes(), views);
    if (sequence.ok()) {
      sequences.emplace(connection.ToString(), *sequence);
      independent.push_back(connection);
    } else {
      dependent.push_back(connection);
    }
  }

  // Datalog part for the dependent connections.
  if (!dependent.empty()) {
    planner::Query sub(query.inputs(), query.outputs(), dependent);
    LIMCAP_ASSIGN_OR_RETURN(
        planner::PlanResult subplan,
        planner::PlanQuery(sub, catalog_->Views(), domains_,
                           session_options.builder, {},
                           session_options.tracer));
    // The gate covers the Datalog part; the bind-join part below runs
    // sequences ExecutableSequence already proved executable.
    LIMCAP_ASSIGN_OR_RETURN(
        datalog::Program program,
        ApplyStaticAnalysisGate(subplan.optimized_program, catalog_->Views(),
                                domains_, session_options, &report));
    const ExecOptions exec_options =
        WithStaticPrunes(session_options, report);
    SourceDrivenEvaluator evaluator(catalog_, domains_, exec_options);
    LIMCAP_ASSIGN_OR_RETURN(report.exec, evaluator.Execute(program, sub));
    AnnotateDegradedConnections(dependent, &report.exec.fetch_report);
  } else {
    LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                            relational::Schema::Make(query.outputs()));
    report.exec.answer = relational::Relation(std::move(out_schema), dict);
    report.exec.session_dict = dict;
  }

  // Bind-join part for the independent connections, per input
  // combination (Theorem 4.1: this retrieves their complete answers).
  std::map<std::string, std::vector<Value>> input_values;
  for (const planner::InputAssignment& input : query.inputs()) {
    input_values[input.attribute].push_back(input.value);
  }
  std::vector<std::pair<std::string, std::vector<Value>>> choices(
      input_values.begin(), input_values.end());
  for (const planner::Connection& connection : independent) {
    const std::vector<std::string>& sequence =
        sequences.at(connection.ToString());
    std::vector<std::size_t> pick(choices.size(), 0);
    while (true) {
      std::map<std::string, Value> combo;
      for (std::size_t i = 0; i < choices.size(); ++i) {
        combo.emplace(choices[i].first, choices[i].second[pick[i]]);
      }
      LIMCAP_RETURN_NOT_OK(
          ExecuteBindJoinChain(*catalog_, sequence, combo, query.outputs(),
                               &report.exec.log, &report.exec.answer));
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < choices[i].second.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }
  return report;
}

Result<AnswerReport> QueryAnswerer::AnswerWithCache(
    const planner::Query& query,
    const std::map<std::string, relational::Relation>& cached,
    const ExecOptions& options) const {
  LIMCAP_RETURN_NOT_OK(query.Validate(*catalog_, domains_));
  QueryContext context(options, query);
  const ExecOptions& session_options = context.options();
  obs::ScopedSpan answer_span(session_options.tracer, "answer", "cached");
  AnswerReport report;
  // Cached views seed their attributes' domains, which can make views —
  // and whole connections — queryable that a cold start would drop.
  capability::AttributeSet seeded;
  for (const auto& [name, tuples] : cached) {
    if (tuples.empty()) continue;
    LIMCAP_ASSIGN_OR_RETURN(const capability::SourceView* view,
                            catalog_->FindView(name));
    capability::AttributeSet attrs = view->Attributes();
    seeded.insert(attrs.begin(), attrs.end());
  }
  LIMCAP_ASSIGN_OR_RETURN(
      report.plan, planner::PlanQuery(query, catalog_->Views(), domains_,
                                      session_options.builder, seeded,
                                      session_options.tracer));
  RecordPlanMetrics(report.plan, session_options.metrics);
  // Fold the cached tuples into the optimized program as fact rules
  // (Section 7.1). Facts only add derivations, so the relevance analysis
  // computed without them stays sound.
  datalog::Program program = report.plan.optimized_program;
  for (const auto& [name, tuples] : cached) {
    LIMCAP_ASSIGN_OR_RETURN(const capability::SourceView* view,
                            catalog_->FindView(name));
    for (const relational::Row& row : tuples.DecodedRows()) {
      LIMCAP_RETURN_NOT_OK(planner::AddCachedTupleRules(
          *view, row, domains_, session_options.builder, &program));
    }
  }
  // Gate after folding the cached facts in: they seed domains, so rules
  // a cold-start analysis would call dead may fire here.
  LIMCAP_ASSIGN_OR_RETURN(
      program, ApplyStaticAnalysisGate(program, catalog_->Views(), domains_,
                                       session_options, &report));
  const ExecOptions exec_options = WithStaticPrunes(session_options, report);
  SourceDrivenEvaluator evaluator(catalog_, domains_, exec_options);
  LIMCAP_ASSIGN_OR_RETURN(report.exec, evaluator.Execute(program, query));
  AnnotateDegradedConnections(report.plan.relevance.queryable_connections,
                              &report.exec.fetch_report);
  return report;
}

Result<AnswerReport> QueryAnswerer::AnswerUnoptimized(
    const planner::Query& query, const ExecOptions& options) const {
  LIMCAP_RETURN_NOT_OK(query.Validate(*catalog_, domains_));
  QueryContext context(options, query);
  const ExecOptions& session_options = context.options();
  obs::ScopedSpan answer_span(session_options.tracer, "answer",
                              "unoptimized");
  AnswerReport report;
  LIMCAP_ASSIGN_OR_RETURN(
      report.plan, planner::PlanQuery(query, catalog_->Views(), domains_,
                                      session_options.builder, {},
                                      session_options.tracer));
  RecordPlanMetrics(report.plan, session_options.metrics);
  LIMCAP_ASSIGN_OR_RETURN(
      datalog::Program program,
      ApplyStaticAnalysisGate(report.plan.full_program, catalog_->Views(),
                              domains_, session_options, &report));
  const ExecOptions exec_options = WithStaticPrunes(session_options, report);
  SourceDrivenEvaluator evaluator(catalog_, domains_, exec_options);
  LIMCAP_ASSIGN_OR_RETURN(report.exec, evaluator.Execute(program, query));
  AnnotateDegradedConnections(report.plan.relevance.queryable_connections,
                              &report.exec.fetch_report);
  return report;
}

Result<std::map<std::string, relational::Relation>> PerConnectionAnswers(
    const ExecResult& exec,
    const std::vector<planner::Connection>& connections,
    const planner::Query& query, const planner::BuilderOptions& options) {
  LIMCAP_ASSIGN_OR_RETURN(relational::Schema out_schema,
                          relational::Schema::Make(query.outputs()));
  std::map<std::string, relational::Relation> per_connection;
  for (std::size_t k = 0; k < connections.size(); ++k) {
    std::string predicate =
        options.goal_predicate + "$c" + std::to_string(k);
    LIMCAP_ASSIGN_OR_RETURN(relational::Relation answers,
                            exec.store.ToRelation(predicate, out_schema));
    per_connection.emplace(connections[k].ToString(), std::move(answers));
  }
  return per_connection;
}

}  // namespace limcap::exec
