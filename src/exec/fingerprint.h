#ifndef LIMCAP_EXEC_FINGERPRINT_H_
#define LIMCAP_EXEC_FINGERPRINT_H_

#include <string>

#include "exec/source_driven_evaluator.h"

namespace limcap::exec {

/// Everything observable about an execution, id-level, rendered in
/// deterministic order: round/budget counters, the dictionary size, the
/// answer rows in order, the full access trace, and every derived fact.
/// Two executions with equal fingerprints made the same source queries in
/// the same order, interned the same values to the same ids, and derived
/// the same facts — the bit-identity contract the concurrent runtime and
/// the tracing layer are tested against (equal fingerprint ⇒ the user
/// can't tell the runs apart).
std::string OrderedFingerprint(const ExecResult& exec);

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_FINGERPRINT_H_
