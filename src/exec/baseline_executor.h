#ifndef LIMCAP_EXEC_BASELINE_EXECUTOR_H_
#define LIMCAP_EXEC_BASELINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "capability/access_log.h"
#include "capability/source_catalog.h"
#include "common/result.h"
#include "planner/query.h"
#include "relational/relation.h"

namespace limcap::exec {

/// Result of a baseline (per-connection) execution.
struct BaselineResult {
  relational::Relation answer;
  capability::AccessLog log;
  /// Connections skipped because no executable sequence exists using only
  /// the connection's own views — the prior systems' "give up" case
  /// (Theorem 4.1 discussion; [8, 16]).
  std::vector<planner::Connection> skipped_connections;
};

/// The comparison baseline from the paper's Section 2 discussion
/// ([10, 14, 16]): each connection (join) is processed on its own, using
/// only the views it mentions. If the connection is independent —
/// f-closure(I(Q), T) = T — it is executed as a chain of bind-joins along
/// the executable sequence; otherwise it is skipped entirely. In
/// Example 2.1 this returns {$15} where the paper's framework obtains
/// {$15, $13, $10}.
///
/// For an independent connection the bind-join chain retrieves the
/// complete answer (Theorem 4.1), so on fully independent queries the
/// baseline and the framework agree.
class BaselineExecutor {
 public:
  explicit BaselineExecutor(const capability::SourceCatalog* catalog)
      : catalog_(catalog) {}

  Result<BaselineResult> Execute(const planner::Query& query);

 private:
  const capability::SourceCatalog* catalog_;
};

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_BASELINE_EXECUTOR_H_
