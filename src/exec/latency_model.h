#ifndef LIMCAP_EXEC_LATENCY_MODEL_H_
#define LIMCAP_EXEC_LATENCY_MODEL_H_

// The latency model moved to the source-access runtime (runtime/), which
// both the exec layer and the fetch scheduler build on. This header keeps
// the historical exec-layer spelling working.

#include "runtime/latency_model.h"

namespace limcap::exec {

using runtime::EstimateMakespan;
using runtime::LatencyModel;
using runtime::MakespanReport;

}  // namespace limcap::exec

#endif  // LIMCAP_EXEC_LATENCY_MODEL_H_
