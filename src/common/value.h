#ifndef LIMCAP_COMMON_VALUE_H_
#define LIMCAP_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace limcap {

/// A dynamically typed scalar value: the atoms that flow through source
/// relations, Datalog facts, and query answers. Values are ordered first
/// by kind, then by payload, giving a total order usable for canonical
/// printing and set containers.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value String(std::string_view v) {
    return Value(Repr(std::string(v)));
  }
  static Value String(const char* v) { return Value(Repr(std::string(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  Kind kind() const { return static_cast<Kind>(repr_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int64() const { return kind() == Kind::kInt64; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }

  /// Payload accessors; the value must hold the requested kind.
  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  /// Renders the value for display: strings bare, doubles with shortest
  /// round-trip formatting, null as "⊥".
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  std::size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace limcap

namespace std {
template <>
struct hash<limcap::Value> {
  std::size_t operator()(const limcap::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // LIMCAP_COMMON_VALUE_H_
