#include "common/string_util.h"

#include <cctype>

namespace limcap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? text.substr(start)
                                 : text.substr(start, pos - start);
    out.emplace_back(Trim(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace limcap
