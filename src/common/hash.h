#ifndef LIMCAP_COMMON_HASH_H_
#define LIMCAP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace limcap {

/// Mixes `value` into `seed` (boost::hash_combine with a 64-bit constant).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of hashable elements.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0x51ed2701a1b2c3d4ULL;
  using ValueType = typename std::iterator_traits<It>::value_type;
  std::hash<ValueType> hasher;
  for (; first != last; ++first) {
    HashCombine(seed, hasher(*first));
  }
  return seed;
}

/// std::hash-compatible functor for vectors of hashable elements, used for
/// engine rows (vectors of dictionary-encoded value ids).
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_HASH_H_
