#ifndef LIMCAP_COMMON_HASH_H_
#define LIMCAP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace limcap {

/// Mixes `value` into `seed` (boost::hash_combine with a 64-bit constant).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of hashable elements.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0x51ed2701a1b2c3d4ULL;
  using ValueType = typename std::iterator_traits<It>::value_type;
  std::hash<ValueType> hasher;
  for (; first != last; ++first) {
    HashCombine(seed, hasher(*first));
  }
  return seed;
}

/// std::hash-compatible functor for vectors of hashable elements, used for
/// engine rows (vectors of dictionary-encoded value ids).
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// Finalizes a hash with the splitmix64 mixer. HashCombine alone maps
/// sequential inputs (dense dictionary ids) to near-sequential outputs,
/// which degenerates open-addressing tables into long probe runs; the
/// multiply-xorshift cascade restores uniformity.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes `count` elements starting at `data` — the flat-arena row variant
/// of HashRange with a Mix64 finalizer, used by the open-addressing row
/// sets and column indexes.
template <typename T>
std::size_t HashSpan(const T* data, std::size_t count) {
  return static_cast<std::size_t>(Mix64(HashRange(data, data + count)));
}

}  // namespace limcap

#endif  // LIMCAP_COMMON_HASH_H_
