#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace limcap {

namespace {

const Json& NullJson() {
  static const Json kNull;
  return kNull;
}

/// Recursive-descent parser over a string_view cursor. Depth-bounded so a
/// hostile frame cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    LIMCAP_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(std::size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (ConsumeWord("null")) return Json();
      return Error("invalid literal");
    }
    if (c == 't') {
      if (ConsumeWord("true")) return Json(true);
      return Error("invalid literal");
    }
    if (c == 'f') {
      if (ConsumeWord("false")) return Json(false);
      return Error("invalid literal");
    }
    if (c == '"') return ParseString();
    if (c == '[') return ParseArray(depth);
    if (c == '{') return ParseObject(depth);
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Json> ParseString() {
    LIMCAP_ASSIGN_OR_RETURN(std::string text, ParseRawString());
    return Json(std::move(text));
  }

  Result<std::string> ParseRawString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4U;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // combined — the protocol never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6U));
              out += static_cast<char>(0x80 | (code & 0x3FU));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12U));
              out += static_cast<char>(0x80 | ((code >> 6U) & 0x3FU));
              out += static_cast<char>(0x80 | (code & 0x3FU));
            }
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out += c;
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size() || !std::isfinite(value)) {
      return Error("invalid number '" + literal + "'");
    }
    return Json(value);
  }

  Result<Json> ParseArray(std::size_t depth) {
    Consume('[');
    Json out = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      LIMCAP_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseObject(std::size_t depth) {
    Consume('{');
    Json out = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      LIMCAP_ASSIGN_OR_RETURN(std::string key, ParseRawString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LIMCAP_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void DumpString(const std::string& text, std::string* out) {
  *out += '"';
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void DumpNumber(double value, std::string* out) {
  // Integral values (the common case: ids, counters) render without a
  // fraction; everything else uses %.17g, enough to round-trip a double.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    *out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

void DumpValue(const Json& value, std::string* out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      return;
    case Json::Kind::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case Json::Kind::kNumber:
      DumpNumber(value.AsNumber(), out);
      return;
    case Json::Kind::kString:
      DumpString(value.AsString(), out);
      return;
    case Json::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& element : value.array()) {
        if (!first) *out += ',';
        first = false;
        DumpValue(element, out);
      }
      *out += ']';
      return;
    }
    case Json::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, element] : value.object()) {
        if (!first) *out += ',';
        first = false;
        DumpString(key, out);
        *out += ':';
        DumpValue(element, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

Json& Json::operator=(const Json& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = other.string_;
  array_ = other.array_;
  object_ = other.object_ != nullptr
                ? std::make_unique<Object>(*other.object_)
                : nullptr;
  return *this;
}

Json::Object& Json::object() {
  if (object_ == nullptr) object_ = std::make_unique<Object>();
  return *object_;
}

const Json::Object& Json::object() const {
  static const Object kEmpty;
  return object_ != nullptr ? *object_ : kEmpty;
}

Json& Json::Set(const std::string& key, Json value) {
  kind_ = Kind::kObject;
  object()[key] = std::move(value);
  return *this;
}

void Json::Append(Json value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
}

const Json& Json::Get(std::string_view key) const {
  if (!is_object() || object_ == nullptr) return NullJson();
  auto it = object_->find(std::string(key));
  return it == object_->end() ? NullJson() : it->second;
}

bool Json::Has(std::string_view key) const {
  return is_object() && object_ != nullptr &&
         object_->count(std::string(key)) > 0;
}

std::string Json::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return number_ == other.number_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object() == other.object();
  }
  return false;
}

}  // namespace limcap
