#ifndef LIMCAP_COMMON_STRING_UTIL_H_
#define LIMCAP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace limcap {

/// Joins the elements of `parts` with `sep`, calling `ToString`-like
/// stringification via std::string conversion of each element.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins an arbitrary range with `sep` using a projection functor.
template <typename Range, typename Fn>
std::string JoinMapped(const Range& range, std::string_view sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out.append(sep);
    first = false;
    out += fn(item);
  }
  return out;
}

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are preserved (except that splitting an empty string
/// yields an empty vector).
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace limcap

#endif  // LIMCAP_COMMON_STRING_UTIL_H_
