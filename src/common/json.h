#ifndef LIMCAP_COMMON_JSON_H_
#define LIMCAP_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace limcap {

/// A minimal JSON document model for the serve protocol (and any other
/// machine interface that needs structured requests): null, bool, number
/// (double), string, array, object. Small by design — no streaming, no
/// comments, no non-finite numbers — because every frame on the wire is a
/// short control or result message, never bulk data.
///
/// Objects keep their keys sorted (std::map), so Dump() is canonical:
/// two equal documents render byte-identically, which the protocol tests
/// and golden files rely on.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  Json(int value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  Json(unsigned value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  Json(std::int64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  Json(std::uint64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  Json(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT
  Json(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}  // NOLINT
  Json(Object value) : kind_(Kind::kObject) {  // NOLINT
    object_ = std::make_unique<Object>(std::move(value));
  }

  Json(const Json& other) { *this = other; }
  Json& operator=(const Json& other);
  Json(Json&&) noexcept = default;
  Json& operator=(Json&&) noexcept = default;

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  Array& array() { return array_; }
  const Array& array() const { return array_; }
  Object& object();
  const Object& object() const;

  /// Object member access. Get returns null for a missing key (or on a
  /// non-object), so readers chain lookups without branching.
  Json& Set(const std::string& key, Json value);
  void Append(Json value);
  const Json& Get(std::string_view key) const;
  bool Has(std::string_view key) const;

  /// Typed member readers with fallbacks — the protocol's tolerant-read
  /// convention: absent or mistyped fields take the fallback.
  double GetNumber(std::string_view key, double fallback = 0) const {
    return Get(key).AsNumber(fallback);
  }
  bool GetBool(std::string_view key, bool fallback = false) const {
    return Get(key).AsBool(fallback);
  }
  std::string GetString(std::string_view key,
                        std::string fallback = std::string()) const {
    const Json& value = Get(key);
    return value.is_string() ? value.AsString() : std::move(fallback);
  }

  /// Serializes canonically (sorted keys, no whitespace, shortest
  /// round-tripping number form).
  std::string Dump() const;

  /// Parses one document; trailing non-whitespace is an error.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  /// Behind a pointer so Json stays movable despite the recursive map
  /// value type (libstdc++ std::map requires a complete mapped_type).
  std::unique_ptr<Object> object_;
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_JSON_H_
