#ifndef LIMCAP_COMMON_TEXT_TABLE_H_
#define LIMCAP_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace limcap {

/// Accumulates rows of strings and renders an aligned ASCII table, used by
/// the bench harness to print the paper's tables (Table 1–3 etc.) in a
/// shape directly comparable with the paper.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header separator, e.g.
  ///   Source | Contents       | Must Bind
  ///   -------+----------------+----------
  ///   s1     | v1(Song, Cd)   | Song
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_TEXT_TABLE_H_
