#ifndef LIMCAP_COMMON_VALUE_DICTIONARY_H_
#define LIMCAP_COMMON_VALUE_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace limcap {

/// Dense id assigned to an interned Value. Ids are assigned sequentially
/// starting at 0 and are stable for the dictionary's lifetime.
using ValueId = uint32_t;

/// Interns Values to dense ValueIds. The Datalog execution engine
/// dictionary-encodes every constant it touches so that engine rows are
/// flat vectors of 32-bit ids with cheap equality/hash, the standard
/// encoding trick in analytic database executors.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;
  ValueDictionary(ValueDictionary&&) = default;
  ValueDictionary& operator=(ValueDictionary&&) = default;

  /// Returns the id for `value`, interning it if unseen.
  ValueId Intern(const Value& value);

  /// Returns the id of `value` if already interned, or false.
  bool Lookup(const Value& value, ValueId* id) const;

  /// Returns the value for an id assigned by this dictionary.
  const Value& Get(ValueId id) const { return values_[id]; }

  std::size_t size() const { return values_.size(); }

 private:
  std::unordered_map<Value, ValueId> ids_;
  std::vector<Value> values_;
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_VALUE_DICTIONARY_H_
