#ifndef LIMCAP_COMMON_VALUE_DICTIONARY_H_
#define LIMCAP_COMMON_VALUE_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace limcap {

/// Dense id assigned to an interned Value. Ids are assigned sequentially
/// starting at 0 and are stable for the dictionary's lifetime.
using ValueId = uint32_t;

/// Interns Values to dense ValueIds. The execution pipeline dictionary-
/// encodes every constant it touches so that engine rows are flat vectors
/// of 32-bit ids with cheap equality/hash, the standard encoding trick in
/// analytic database executors.
///
/// One dictionary is shared per answering session: the mediator (or
/// QueryAnswerer) creates it, and the fact store, source queries, source
/// answers, and the answer relation all encode against it, so a tuple is
/// translated between Value and ValueId at most once — at source ingest.
///
/// Every Value↔id crossing is counted (encode: Intern/Lookup; decode:
/// Get). The exec layer snapshots translation_count() around the post-
/// ingest hot path to enforce the single-translation invariant; see
/// exec::ExecResult::post_ingest_translations. Counters are relaxed
/// atomics so read-side decodes may race harmlessly with each other, but
/// Intern itself is NOT thread-safe — interning is confined to the
/// session's driver thread (the parallel evaluator's workers only ever
/// compare ids).
class ValueDictionary {
 public:
  ValueDictionary() = default;

  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;
  ValueDictionary(ValueDictionary&& other) noexcept
      : ids_(std::move(other.ids_)),
        values_(std::move(other.values_)),
        encodes_(other.encodes_.load(std::memory_order_relaxed)),
        decodes_(other.decodes_.load(std::memory_order_relaxed)) {}
  ValueDictionary& operator=(ValueDictionary&& other) noexcept {
    ids_ = std::move(other.ids_);
    values_ = std::move(other.values_);
    encodes_.store(other.encodes_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    decodes_.store(other.decodes_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// Returns the id for `value`, interning it if unseen.
  ValueId Intern(const Value& value);

  /// Interns every value of `other` into this dictionary in `other`'s id
  /// order (id 0 first), the deterministic merge of the multi-query
  /// server: absorbing per-query dictionaries in a fixed order (query
  /// admission order) yields a server dictionary whose ids are a pure
  /// function of that order, never of completion timing. When `remap` is
  /// non-null it is resized to other.size() with remap[old_id] = the id
  /// here, so absorbed relations can be re-keyed without another decode
  /// pass. Counts as encode traffic on this dictionary and decode
  /// traffic on `other` (ingest-style translation, by design off any
  /// query's hot path).
  void Absorb(const ValueDictionary& other,
              std::vector<ValueId>* remap = nullptr);

  /// Returns the id of `value` if already interned, or false.
  bool Lookup(const Value& value, ValueId* id) const;

  /// Returns the value for an id assigned by this dictionary.
  const Value& Get(ValueId id) const {
    decodes_.fetch_add(1, std::memory_order_relaxed);
    return values_[id];
  }

  std::size_t size() const { return values_.size(); }

  /// Value→id crossings so far (Intern + Lookup calls).
  uint64_t encode_count() const {
    return encodes_.load(std::memory_order_relaxed);
  }
  /// id→Value crossings so far (Get calls).
  uint64_t decode_count() const {
    return decodes_.load(std::memory_order_relaxed);
  }
  /// All Value↔id crossings so far.
  uint64_t translation_count() const {
    return encode_count() + decode_count();
  }

 private:
  std::unordered_map<Value, ValueId> ids_;
  std::vector<Value> values_;
  mutable std::atomic<uint64_t> encodes_{0};
  mutable std::atomic<uint64_t> decodes_{0};
};

/// Shared ownership handle for a session dictionary. Layers that outlive
/// one call (cached relations, access logs) hold the handle so decoded
/// rendering stays valid after the session that produced them ends.
using ValueDictionaryPtr = std::shared_ptr<ValueDictionary>;

}  // namespace limcap

#endif  // LIMCAP_COMMON_VALUE_DICTIONARY_H_
