#include "common/text_table.h"

#include <algorithm>

namespace limcap {

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, char pad,
                        const char* sep) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += cell;
      line.append(widths[i] - cell.size() + 1, pad);
      if (i + 1 < widths.size()) {
        line += sep;
        line += pad;
      }
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_, ' ', "|");
  std::vector<std::string> dashes;
  for (std::size_t w : widths) dashes.emplace_back(w, '-');
  std::string sep_line;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    sep_line += dashes[i];
    sep_line += '-';
    if (i + 1 < widths.size()) sep_line += "+-";
  }
  out += sep_line + "\n";
  for (const auto& row : rows_) out += render_row(row, ' ', "|");
  return out;
}

}  // namespace limcap
