#ifndef LIMCAP_COMMON_STATUS_H_
#define LIMCAP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace limcap {

/// Error codes used across the library. Modeled on the Arrow/RocksDB
/// convention: functions that can fail return a Status (or a Result<T>),
/// and exceptions never cross the public API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnsupported = 5,
  kInternal = 6,
  /// A source query violated the source's binding-pattern requirements
  /// (the integration-specific failure mode of this library).
  kCapabilityViolation = 7,
  /// A resource budget (e.g., the source-access budget of a partial-answer
  /// execution) was exhausted before completion.
  kBudgetExhausted = 8,
  /// A source could not be reached: it refused to answer, its circuit
  /// breaker is open, or a fault was injected. Retryable by nature.
  kUnavailable = 9,
  /// A source answered, but not within the per-attempt deadline of the
  /// fetch scheduler's retry policy; the late answer was discarded.
  kDeadlineExceeded = 10,
  /// The multi-query server refused the request at admission: its queue
  /// is full or it is draining for shutdown. Distinct from kUnavailable
  /// (a *source* could not be reached) so clients can tell "retry this
  /// server later" from "this answer is degraded".
  kLoadShed = 11,
  /// The serve wire protocol was violated: a frame declared a payload
  /// larger than the cap, or the peer closed the connection mid-frame.
  /// Distinct from kInternal (our bug) and kInvalidArgument (a
  /// well-framed but malformed request) so servers can close the
  /// connection cleanly instead of hanging on a half-read frame.
  kProtocolError = 12,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status holds the outcome of an operation: either OK, or an error code
/// plus a message. Statuses are cheap to copy in the OK case (no
/// allocation) and are ordinary value types.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CapabilityViolation(std::string msg) {
    return Status(StatusCode::kCapabilityViolation, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status LoadShed(std::string msg) {
    return Status(StatusCode::kLoadShed, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace limcap

/// Evaluates an expression returning Status; returns it from the enclosing
/// function if it is not OK.
#define LIMCAP_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::limcap::Status _limcap_status = (expr);      \
    if (!_limcap_status.ok()) return _limcap_status; \
  } while (false)

#endif  // LIMCAP_COMMON_STATUS_H_
