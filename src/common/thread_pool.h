#ifndef LIMCAP_COMMON_THREAD_POOL_H_
#define LIMCAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace limcap {

/// A fixed pool of worker threads driven in lockstep "parallel regions":
/// RunOnAll(fn) wakes every worker, runs fn(worker_index) on each, and
/// blocks the caller until all workers finish. Workers idle between
/// regions, so per-round dispatch (the semi-naive loop runs one region per
/// fixpoint round) costs two condition-variable sweeps instead of thread
/// spawns.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Runs `fn(worker_index)` on every worker and returns when all have
  /// finished. `fn` must not call RunOnAll reentrantly. Exceptions must
  /// not escape `fn`.
  void RunOnAll(const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop(std::size_t index);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  uint64_t generation_ = 0;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_THREAD_POOL_H_
