#include "common/status.h"

namespace limcap {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCapabilityViolation:
      return "Capability violation";
    case StatusCode::kBudgetExhausted:
      return "Budget exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kLoadShed:
      return "Load shed";
    case StatusCode::kProtocolError:
      return "Protocol error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace limcap
