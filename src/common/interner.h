#ifndef LIMCAP_COMMON_INTERNER_H_
#define LIMCAP_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace limcap {

/// Transparent hash/equality so interner lookups take string_views without
/// materializing a std::string per probe.
struct StringViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Interns strings to dense ids of type `Id`, assigned sequentially from 0
/// and stable for the interner's lifetime. The Datalog engine uses this to
/// replace string predicate keys with vector indexes on every hot path
/// (fact storage, index probes, semi-naive watermarks, dependency edges).
template <typename Id = uint32_t>
class Interner {
 public:
  Interner() = default;

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the id for `name`, interning it if unseen.
  Id Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    Id id = static_cast<Id>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name` if already interned, or false.
  bool Lookup(std::string_view name, Id* id) const {
    auto it = ids_.find(name);
    if (it == ids_.end()) return false;
    *id = it->second;
    return true;
  }

  /// The string for an id assigned by this interner.
  const std::string& Name(Id id) const { return names_[id]; }

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Id, StringViewHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace limcap

#endif  // LIMCAP_COMMON_INTERNER_H_
