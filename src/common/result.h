#ifndef LIMCAP_COMMON_RESULT_H_
#define LIMCAP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace limcap {

/// Result<T> carries either a value of type T or a non-OK Status, in the
/// style of arrow::Result / absl::StatusOr. A Result is never in the OK
/// state without a value.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the held status: OK() when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace limcap

/// Assigns the value of a Result-returning expression to `lhs`, or returns
/// the error status from the enclosing function.
#define LIMCAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LIMCAP_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define LIMCAP_ASSIGN_OR_RETURN_NAME(a, b) LIMCAP_ASSIGN_OR_RETURN_CONCAT(a, b)

#define LIMCAP_ASSIGN_OR_RETURN(lhs, expr) \
  LIMCAP_ASSIGN_OR_RETURN_IMPL(            \
      LIMCAP_ASSIGN_OR_RETURN_NAME(_limcap_result_, __LINE__), lhs, expr)

#endif  // LIMCAP_COMMON_RESULT_H_
