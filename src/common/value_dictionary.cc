#include "common/value_dictionary.h"

namespace limcap {

ValueId ValueDictionary::Intern(const Value& value) {
  encodes_.fetch_add(1, std::memory_order_relaxed);
  auto it = ids_.find(value);
  if (it != ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(value);
  ids_.emplace(value, id);
  return id;
}

bool ValueDictionary::Lookup(const Value& value, ValueId* id) const {
  encodes_.fetch_add(1, std::memory_order_relaxed);
  auto it = ids_.find(value);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

}  // namespace limcap
