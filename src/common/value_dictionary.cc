#include "common/value_dictionary.h"

namespace limcap {

ValueId ValueDictionary::Intern(const Value& value) {
  encodes_.fetch_add(1, std::memory_order_relaxed);
  auto it = ids_.find(value);
  if (it != ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(value);
  ids_.emplace(value, id);
  return id;
}

void ValueDictionary::Absorb(const ValueDictionary& other,
                             std::vector<ValueId>* remap) {
  if (remap != nullptr) {
    remap->clear();
    remap->reserve(other.size());
  }
  for (std::size_t id = 0; id < other.size(); ++id) {
    ValueId here = Intern(other.Get(static_cast<ValueId>(id)));
    if (remap != nullptr) remap->push_back(here);
  }
}

bool ValueDictionary::Lookup(const Value& value, ValueId* id) const {
  encodes_.fetch_add(1, std::memory_order_relaxed);
  auto it = ids_.find(value);
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

}  // namespace limcap
