#include "common/value.h"

#include <charconv>
#include <cstdio>

#include "common/hash.h"

namespace limcap {

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "\xE2\x8A\xA5";  // ⊥
    case Kind::kInt64:
      return std::to_string(int64());
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", dbl());
      // Shorten when a shorter representation round-trips.
      for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, dbl());
        double parsed = 0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == dbl()) return shorter;
      }
      return buf;
    }
    case Kind::kString:
      return str();
  }
  return "?";
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
    case Kind::kNull:
      break;
    case Kind::kInt64:
      HashCombine(seed, std::hash<int64_t>{}(int64()));
      break;
    case Kind::kDouble:
      HashCombine(seed, std::hash<double>{}(dbl()));
      break;
    case Kind::kString:
      HashCombine(seed, std::hash<std::string>{}(str()));
      break;
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace limcap
