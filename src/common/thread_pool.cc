#include "common/thread_pool.h"

#include <algorithm>

namespace limcap {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::RunOnAll(const std::function<void(std::size_t)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &fn;
  running_ = threads_.size();
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] { return running_ == 0; });
  task_ = nullptr;
}

void ThreadPool::WorkerLoop(std::size_t index) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || (task_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace limcap
