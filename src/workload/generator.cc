#include <cctype>
#include "workload/generator.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "paperdata/paper_examples.h"

namespace limcap::workload {

namespace {

using capability::BindingPattern;
using capability::InMemorySource;
using capability::SourceView;
using relational::Relation;
using relational::Row;
using relational::Schema;

std::string AttributeName(const CatalogSpec& spec, std::size_t i) {
  return spec.attribute_prefix + std::to_string(i);
}

BindingPattern RandomPattern(std::size_t arity, double bound_probability,
                             Rng* rng) {
  std::vector<capability::Adornment> adornments;
  adornments.reserve(arity);
  std::size_t bound = 0;
  for (std::size_t i = 0; i < arity; ++i) {
    bool b = rng->Chance(bound_probability);
    adornments.push_back(b ? capability::Adornment::kBound
                           : capability::Adornment::kFree);
    if (b) ++bound;
  }
  if (bound == arity && arity > 1) {
    adornments[rng->Below(arity)] = capability::Adornment::kFree;
  }
  return BindingPattern(std::move(adornments));
}

}  // namespace

Value GeneratedInstance::DomainValue(const std::string& attribute,
                                     std::size_t k) {
  std::string lowered = attribute;
  if (!lowered.empty()) {
    lowered[0] = static_cast<char>(std::tolower(lowered[0]));
  }
  return Value::String(lowered + "_" + std::to_string(k));
}

GeneratedInstance GenerateInstance(const CatalogSpec& spec) {
  GeneratedInstance instance;
  Rng rng(spec.seed);

  const std::size_t attribute_count =
      spec.topology == CatalogSpec::Topology::kChain ? spec.num_views + 1
                                                     : spec.num_attributes;
  for (std::size_t i = 0; i < attribute_count; ++i) {
    instance.attributes.push_back(AttributeName(spec, i));
  }

  for (std::size_t v = 0; v < spec.num_views; ++v) {
    std::vector<std::string> schema_attributes;
    BindingPattern pattern;
    switch (spec.topology) {
      case CatalogSpec::Topology::kChain: {
        schema_attributes = {AttributeName(spec, v), AttributeName(spec, v + 1)};
        pattern = *BindingPattern::Parse("bf");
        break;
      }
      case CatalogSpec::Topology::kStar: {
        std::size_t spoke = 1 + rng.Below(attribute_count - 1);
        schema_attributes = {AttributeName(spec, 0), AttributeName(spec, spoke)};
        pattern = RandomPattern(2, spec.bound_probability, &rng);
        break;
      }
      case CatalogSpec::Topology::kRandom: {
        std::size_t arity = spec.min_arity +
                            rng.Below(spec.max_arity - spec.min_arity + 1);
        arity = std::min(arity, attribute_count);
        std::set<std::size_t> chosen;
        while (chosen.size() < arity) {
          chosen.insert(rng.Below(attribute_count));
        }
        for (std::size_t a : chosen) {
          schema_attributes.push_back(AttributeName(spec, a));
        }
        pattern =
            RandomPattern(schema_attributes.size(), spec.bound_probability,
                          &rng);
        break;
      }
    }

    SourceView view = *SourceView::Make(
        spec.view_prefix + "v" + std::to_string(v + 1),
        Schema::MakeUnsafe(schema_attributes), pattern);

    Relation data(view.schema());
    for (std::size_t t = 0; t < spec.tuples_per_view; ++t) {
      Row row;
      row.reserve(schema_attributes.size());
      for (const std::string& attribute : schema_attributes) {
        row.push_back(GeneratedInstance::DomainValue(
            attribute, rng.Below(spec.domain_size)));
      }
      data.InsertUnsafe(std::move(row));
    }

    instance.views.push_back(view);
    instance.full_data.emplace(view.name(), data);
    instance.catalog.RegisterUnsafe(std::make_unique<InMemorySource>(
        InMemorySource::MakeUnsafe(view, std::move(data))));
  }
  return instance;
}

Result<planner::Query> GenerateQuery(const GeneratedInstance& instance,
                                     const QuerySpec& spec) {
  Rng rng(spec.seed);
  const std::size_t view_count = instance.views.size();
  if (view_count == 0) return Status::InvalidArgument("empty instance");

  for (int attempt = 0; attempt < 64; ++attempt) {
    // Grow each connection by an attribute-sharing random walk so the
    // natural joins are meaningful.
    std::vector<planner::Connection> connections;
    bool failed = false;
    for (std::size_t c = 0; c < spec.num_connections && !failed; ++c) {
      std::vector<std::string> names;
      std::set<std::string> used;
      capability::AttributeSet attributes;
      std::size_t first = rng.Below(view_count);
      names.push_back(instance.views[first].name());
      used.insert(names.back());
      {
        auto attrs = instance.views[first].Attributes();
        attributes.insert(attrs.begin(), attrs.end());
      }
      for (std::size_t step = 1; step < spec.views_per_connection; ++step) {
        // Candidates sharing an attribute with the walk so far.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < view_count; ++i) {
          if (used.count(instance.views[i].name()) > 0) continue;
          auto attrs = instance.views[i].Attributes();
          if (std::any_of(attrs.begin(), attrs.end(),
                          [&](const std::string& a) {
                            return attributes.count(a) > 0;
                          })) {
            candidates.push_back(i);
          }
        }
        if (candidates.empty()) {
          failed = true;
          break;
        }
        std::size_t next = candidates[rng.Below(candidates.size())];
        names.push_back(instance.views[next].name());
        used.insert(names.back());
        auto attrs = instance.views[next].Attributes();
        attributes.insert(attrs.begin(), attrs.end());
      }
      if (!failed) connections.emplace_back(std::move(names));
    }
    if (failed) continue;

    // Outputs: attributes common to every connection.
    capability::AttributeSet common;
    for (std::size_t c = 0; c < connections.size(); ++c) {
      auto attrs =
          planner::ConnectionAttributes(connections[c], instance.catalog);
      if (!attrs.ok()) return attrs.status();
      if (c == 0) {
        common = *attrs;
      } else {
        capability::AttributeSet next;
        for (const std::string& a : *attrs) {
          if (common.count(a) > 0) next.insert(a);
        }
        common = std::move(next);
      }
    }
    if (common.size() < spec.num_outputs + 1) continue;  // need an input too

    std::vector<std::string> pool(common.begin(), common.end());
    // Shuffle deterministically.
    for (std::size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.Below(i)]);
    }
    std::vector<std::string> outputs(pool.begin(),
                                     pool.begin() + spec.num_outputs);
    std::string input_attribute = pool[spec.num_outputs];
    // Pick a domain value that actually occurs in some source tuple for
    // the attribute, so the query has a chance of non-empty answers.
    std::vector<Value> present;
    for (const auto& [name, data] : instance.full_data) {
      auto column = data.schema().IndexOf(input_attribute);
      if (!column.has_value()) continue;
      for (const Value& value : data.ColumnValues(*column)) {
        present.push_back(value);
      }
    }
    if (present.empty()) continue;
    Value input_value = present[rng.Below(present.size())];

    planner::Query query({{input_attribute, input_value}}, outputs,
                         connections);
    if (query.Validate(instance.catalog).ok()) return query;
  }
  return Status::NotFound(
      "could not generate a valid query for the requested shape");
}

const char* MixedRequestClassName(MixedRequest::Class query_class) {
  switch (query_class) {
    case MixedRequest::Class::kPaper:
      return "paper";
    case MixedRequest::Class::kChain:
      return "chain";
    case MixedRequest::Class::kRandom:
      return "random";
  }
  return "unknown";
}

namespace {

/// Copies every view of `instance` into the merged workload: the same
/// SourceView (so queries generated against the sub-instance validate
/// against the merged catalog too) backed by a copy of the ground-truth
/// extent. Register fails on a name collision, which the prefixes are
/// there to prevent.
Status MergeInstance(const GeneratedInstance& instance,
                     MixedWorkload* workload) {
  for (const SourceView& view : instance.views) {
    const Relation& data = instance.full_data.at(view.name());
    workload->full_data.emplace(view.name(), data);
    LIMCAP_RETURN_NOT_OK(workload->catalog.Register(
        std::make_unique<InMemorySource>(
            InMemorySource::MakeUnsafe(view, data))));
  }
  return Status::OK();
}

}  // namespace

Result<MixedWorkload> GenerateMixedWorkload(const MixedWorkloadSpec& spec) {
  if (spec.paper_weight <= 0 && spec.chain_weight <= 0 &&
      spec.random_weight <= 0) {
    return Status::InvalidArgument("every class weight is zero");
  }
  MixedWorkload workload;
  Rng rng(spec.seed);

  // Paper class: Example 2.1's sources, domains, and (constant) query.
  // The repeated identical query is the plan cache's warm path.
  planner::Query paper_query;
  if (spec.paper_weight > 0) {
    paperdata::PaperExample example = paperdata::MakeExample21();
    for (const capability::SourceView& view : example.views) {
      LIMCAP_ASSIGN_OR_RETURN(capability::Source * source,
                              example.catalog.Find(view.name()));
      auto* in_memory = dynamic_cast<capability::InMemorySource*>(source);
      if (in_memory == nullptr) {
        return Status::Internal("paper example source is not in-memory");
      }
      workload.full_data.emplace(view.name(), in_memory->data());
      LIMCAP_RETURN_NOT_OK(workload.catalog.Register(
          std::make_unique<InMemorySource>(
              InMemorySource::MakeUnsafe(view, in_memory->data()))));
    }
    for (const auto& [attribute, domain] : example.domains.overrides()) {
      workload.domains.SetDomain(attribute, domain);
    }
    paper_query = example.query;
  }

  // Chain and random sub-catalogs, name-prefixed apart from each other
  // and from the paper's v1..v4 / Song..Price namespace. Each class keeps
  // its own attribute pool, so its domains stay disjoint too (binding
  // assumption 1: values never cross domains between classes).
  GeneratedInstance chain_instance;
  if (spec.chain_weight > 0) {
    CatalogSpec chain_spec = spec.chain;
    chain_spec.topology = CatalogSpec::Topology::kChain;
    chain_spec.view_prefix = "c";
    chain_spec.attribute_prefix = "CA";
    chain_spec.seed ^= spec.seed;
    chain_instance = GenerateInstance(chain_spec);
    LIMCAP_RETURN_NOT_OK(MergeInstance(chain_instance, &workload));
  }
  GeneratedInstance random_instance;
  if (spec.random_weight > 0) {
    CatalogSpec random_spec = spec.random;
    random_spec.topology = CatalogSpec::Topology::kRandom;
    random_spec.view_prefix = "r";
    random_spec.attribute_prefix = "RA";
    random_spec.seed ^= ~spec.seed;
    random_instance = GenerateInstance(random_spec);
    LIMCAP_RETURN_NOT_OK(MergeInstance(random_instance, &workload));
  }

  // Seeded arrival order: one weighted class draw per slot, then a fresh
  // query for the generated classes (seed drawn from the same stream, so
  // the whole sequence replays from spec.seed alone).
  const double total = std::max(0.0, spec.paper_weight) +
                       std::max(0.0, spec.chain_weight) +
                       std::max(0.0, spec.random_weight);
  workload.requests.reserve(spec.num_requests);
  for (std::size_t i = 0; i < spec.num_requests; ++i) {
    MixedRequest request;
    const double pick = rng.NextDouble() * total;
    if (pick < std::max(0.0, spec.paper_weight)) {
      request.query_class = MixedRequest::Class::kPaper;
      request.query = paper_query;
    } else {
      const bool chain =
          pick < std::max(0.0, spec.paper_weight) +
                     std::max(0.0, spec.chain_weight);
      request.query_class = chain ? MixedRequest::Class::kChain
                                  : MixedRequest::Class::kRandom;
      const GeneratedInstance& instance =
          chain ? chain_instance : random_instance;
      QuerySpec query_spec = chain ? spec.chain_query : spec.random_query;
      // GenerateQuery's internal retries are per-seed; reseed a few times
      // before giving up on the shape entirely.
      Result<planner::Query> query =
          Status::NotFound("no query attempt made");
      for (int reseed = 0; reseed < 8 && !query.ok(); ++reseed) {
        query_spec.seed = rng.Next();
        query = GenerateQuery(instance, query_spec);
      }
      if (!query.ok()) return query.status();
      request.query = *std::move(query);
    }
    workload.requests.push_back(std::move(request));
  }
  return workload;
}

}  // namespace limcap::workload
