#ifndef LIMCAP_WORKLOAD_GENERATOR_H_
#define LIMCAP_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capability/in_memory_source.h"
#include "capability/source_catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "planner/domain_map.h"
#include "planner/query.h"

namespace limcap::workload {

/// Shape of a synthetic source catalog.
struct CatalogSpec {
  enum class Topology {
    /// v_i(A_i, A_{i+1}) with pattern "bf": a pipeline where each view
    /// feeds bindings to the next — the worst case for per-join baselines
    /// and the shape behind the paper's repeated-access examples.
    kChain,
    /// v_i(A_0, A_i): every view shares the hub attribute A_0; adornments
    /// randomized.
    kStar,
    /// Views draw their schemas uniformly from the attribute pool;
    /// adornments randomized.
    kRandom,
  };

  Topology topology = Topology::kRandom;
  std::size_t num_views = 10;
  /// Size of the global attribute pool (A0..A{n-1}).
  std::size_t num_attributes = 8;
  std::size_t min_arity = 2;
  std::size_t max_arity = 4;
  /// Probability that a position is adorned 'b' (kStar/kRandom). A view
  /// that would come out all-bound with arity > 1 gets one position
  /// flipped to 'f' so it can contribute bindings.
  double bound_probability = 0.4;
  std::size_t tuples_per_view = 50;
  /// Distinct values per attribute domain; smaller values join more.
  std::size_t domain_size = 30;
  uint64_t seed = 42;
};

/// A fully materialized synthetic integration instance.
struct GeneratedInstance {
  capability::SourceCatalog catalog;
  std::vector<capability::SourceView> views;
  planner::DomainMap domains;  // default: one domain per attribute
  /// Ground-truth extents for the oracle.
  std::map<std::string, relational::Relation> full_data;
  /// The attribute pool, "A0".."A{n-1}".
  std::vector<std::string> attributes;

  /// The k-th value of `attribute`'s domain ("a3_17" style).
  static Value DomainValue(const std::string& attribute, std::size_t k);
};

/// Generates a catalog with data, deterministically from spec.seed.
GeneratedInstance GenerateInstance(const CatalogSpec& spec);

/// Shape of a synthetic connection query.
struct QuerySpec {
  std::size_t num_connections = 2;
  std::size_t views_per_connection = 2;
  std::size_t num_outputs = 1;
  uint64_t seed = 7;
};

/// Generates a valid connection query over `instance`: each connection is
/// grown by a random attribute-sharing walk, outputs are attributes common
/// to every connection, and the input is an attribute of the first
/// connection assigned a random domain value. Fails (NotFound) when no
/// valid query exists for the requested shape after bounded retries.
Result<planner::Query> GenerateQuery(const GeneratedInstance& instance,
                                     const QuerySpec& spec);

}  // namespace limcap::workload

#endif  // LIMCAP_WORKLOAD_GENERATOR_H_
