#ifndef LIMCAP_WORKLOAD_GENERATOR_H_
#define LIMCAP_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capability/in_memory_source.h"
#include "capability/source_catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "planner/domain_map.h"
#include "planner/query.h"

namespace limcap::workload {

/// Shape of a synthetic source catalog.
struct CatalogSpec {
  enum class Topology {
    /// v_i(A_i, A_{i+1}) with pattern "bf": a pipeline where each view
    /// feeds bindings to the next — the worst case for per-join baselines
    /// and the shape behind the paper's repeated-access examples.
    kChain,
    /// v_i(A_0, A_i): every view shares the hub attribute A_0; adornments
    /// randomized.
    kStar,
    /// Views draw their schemas uniformly from the attribute pool;
    /// adornments randomized.
    kRandom,
  };

  Topology topology = Topology::kRandom;
  /// Name prefixes, so instances generated from several specs can merge
  /// into one catalog (the mixed serving workload) without collisions:
  /// views are named "<view_prefix>v1".., attributes
  /// "<attribute_prefix>0"... The defaults reproduce the historical
  /// names ("v1", "A0").
  std::string view_prefix;
  std::string attribute_prefix = "A";
  std::size_t num_views = 10;
  /// Size of the global attribute pool (A0..A{n-1}).
  std::size_t num_attributes = 8;
  std::size_t min_arity = 2;
  std::size_t max_arity = 4;
  /// Probability that a position is adorned 'b' (kStar/kRandom). A view
  /// that would come out all-bound with arity > 1 gets one position
  /// flipped to 'f' so it can contribute bindings.
  double bound_probability = 0.4;
  std::size_t tuples_per_view = 50;
  /// Distinct values per attribute domain; smaller values join more.
  std::size_t domain_size = 30;
  uint64_t seed = 42;
};

/// A fully materialized synthetic integration instance.
struct GeneratedInstance {
  capability::SourceCatalog catalog;
  std::vector<capability::SourceView> views;
  planner::DomainMap domains;  // default: one domain per attribute
  /// Ground-truth extents for the oracle.
  std::map<std::string, relational::Relation> full_data;
  /// The attribute pool, "A0".."A{n-1}".
  std::vector<std::string> attributes;

  /// The k-th value of `attribute`'s domain ("a3_17" style).
  static Value DomainValue(const std::string& attribute, std::size_t k);
};

/// Generates a catalog with data, deterministically from spec.seed.
GeneratedInstance GenerateInstance(const CatalogSpec& spec);

/// Shape of a synthetic connection query.
struct QuerySpec {
  std::size_t num_connections = 2;
  std::size_t views_per_connection = 2;
  std::size_t num_outputs = 1;
  uint64_t seed = 7;
};

/// Generates a valid connection query over `instance`: each connection is
/// grown by a random attribute-sharing walk, outputs are attributes common
/// to every connection, and the input is an attribute of the first
/// connection assigned a random domain value. Fails (NotFound) when no
/// valid query exists for the requested shape after bounded retries.
Result<planner::Query> GenerateQuery(const GeneratedInstance& instance,
                                     const QuerySpec& spec);

/// One request of a mixed serving workload: which query class it belongs
/// to and the query itself.
struct MixedRequest {
  enum class Class {
    kPaper,   ///< the paper's Example 2.1 query (constant — cache-warm)
    kChain,   ///< a fresh query over the chain sub-catalog
    kRandom,  ///< a fresh query over the random-topology sub-catalog
  };
  Class query_class = Class::kPaper;
  planner::Query query;
};

const char* MixedRequestClassName(MixedRequest::Class query_class);

/// Shape of a mixed serving workload: three query classes interleaved in
/// a seeded arrival order over ONE merged catalog, so a single
/// ServeSession can answer all of them. A zero weight drops a class and
/// its sources entirely.
struct MixedWorkloadSpec {
  std::size_t num_requests = 64;
  /// Drives the arrival order, the per-request query seeds, and (xor'd
  /// in) the sub-catalog seeds — one knob reproduces the whole workload.
  uint64_t seed = 1;
  double paper_weight = 1.0;
  double chain_weight = 1.0;
  double random_weight = 1.0;
  /// Sub-catalog shapes. Topologies and name prefixes are forced by the
  /// generator (kChain with "c"/"CA", kRandom with "r"/"RA") so the
  /// merged catalog has no name collisions with the paper's v1..v4.
  CatalogSpec chain;
  CatalogSpec random;
  QuerySpec chain_query{1, 3, 1, 7};
  QuerySpec random_query{2, 2, 1, 7};
};

/// A mixed workload, fully materialized: the merged catalog (paper
/// Example 2.1 sources + chain views + random-topology views), merged
/// domains, ground-truth extents, and the seeded request sequence.
/// Every request validates against `catalog`. Queries round-trip through
/// planner::ParseQuery / Query::ToString, so the limcap_serve client can
/// regenerate the identical sequence from the same spec and send it as
/// text.
struct MixedWorkload {
  capability::SourceCatalog catalog;
  planner::DomainMap domains;
  /// Ground-truth extents of every merged view, for oracles.
  std::map<std::string, relational::Relation> full_data;
  /// Arrival order.
  std::vector<MixedRequest> requests;
};

/// Generates a mixed workload, deterministically from spec.seed. Fails
/// when every weight is zero or a sub-generator cannot produce a valid
/// query for the requested shape.
Result<MixedWorkload> GenerateMixedWorkload(const MixedWorkloadSpec& spec);

}  // namespace limcap::workload

#endif  // LIMCAP_WORKLOAD_GENERATOR_H_
