#ifndef LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_
#define LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace limcap::datalog {

/// The predicate dependency graph of a program: an edge p -> q for every
/// rule with head p and body atom q. Used for recursion detection (the
/// paper's programs are recursive even though queries are not) and for the
/// dead-rule elimination of Section 6, which removes rules whose heads are
/// unreachable from the goal predicate.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  /// Predicates `from` depends on directly (its rules' body predicates).
  const std::set<std::string>& DependsOn(const std::string& from) const;

  /// All predicates reachable from `start` by following dependency edges,
  /// including `start` itself if present in the program.
  std::set<std::string> ReachableFrom(const std::string& start) const;

  /// Strongly connected components in reverse topological order
  /// (dependencies before dependents), computed with Tarjan's algorithm.
  std::vector<std::vector<std::string>> StronglyConnectedComponents() const;

  /// True when some predicate transitively depends on itself.
  bool IsRecursive() const;

  /// True when `predicate` is in a nontrivial SCC or has a self-loop.
  bool IsRecursivePredicate(const std::string& predicate) const;

 private:
  std::map<std::string, std::set<std::string>> edges_;
  std::set<std::string> nodes_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_
