#ifndef LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_
#define LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_

#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/fact_store.h"

namespace limcap::datalog {

/// The predicate dependency graph of a program: an edge p -> q for every
/// rule with head p and body atom q. Used for recursion detection (the
/// paper's programs are recursive even though queries are not) and for the
/// dead-rule elimination of Section 6, which removes rules whose heads are
/// unreachable from the goal predicate.
///
/// Predicates are interned to dense ids at construction; adjacency is
/// id-indexed vectors and strongly connected components are computed once,
/// so reachability and recursion queries are array walks rather than
/// string-map traversals. The string overloads remain for tests and
/// diagnostics.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  /// The graph's predicate interner (ids are local to this graph).
  const PredicateTable& predicates() const { return table_; }

  /// The id of `predicate`, or kNoPredicate when absent.
  PredicateId Find(std::string_view predicate) const;

  /// Predicates `from` depends on directly (its rules' body predicates),
  /// deduplicated, in id order.
  std::span<const PredicateId> DependsOn(PredicateId from) const {
    return edges_[from];
  }
  std::set<std::string> DependsOn(const std::string& from) const;

  /// Bitmask over predicate ids of everything reachable from `start` by
  /// following dependency edges, including `start` itself.
  std::vector<bool> ReachableMask(PredicateId start) const;

  /// All predicates reachable from `start` by following dependency edges,
  /// including `start` itself if present in the program.
  std::set<std::string> ReachableFrom(const std::string& start) const;

  /// Strongly connected components in reverse topological order
  /// (dependencies before dependents), computed with Tarjan's algorithm
  /// at construction; names within a component are sorted.
  std::vector<std::vector<std::string>> StronglyConnectedComponents() const;

  /// True when some predicate transitively depends on itself.
  bool IsRecursive() const;

  /// True when `predicate` is in a nontrivial SCC or has a self-loop.
  bool IsRecursivePredicate(const std::string& predicate) const;
  bool IsRecursivePredicate(PredicateId predicate) const {
    return recursive_[predicate];
  }

 private:
  PredicateTable table_;
  std::vector<std::vector<PredicateId>> edges_;
  std::vector<std::vector<PredicateId>> components_;
  std::vector<bool> recursive_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_DEPENDENCY_GRAPH_H_
