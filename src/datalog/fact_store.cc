#include "datalog/fact_store.h"

#include <algorithm>

namespace limcap::datalog {

namespace {

IdRow ExtractKey(const IdRow& row, const std::vector<std::size_t>& columns) {
  IdRow key;
  key.reserve(columns.size());
  for (std::size_t c : columns) key.push_back(row[c]);
  return key;
}

const std::vector<IdRow>& EmptyFacts() {
  static const std::vector<IdRow>* empty = new std::vector<IdRow>();
  return *empty;
}

}  // namespace

Status FactStore::Declare(const std::string& predicate, std::size_t arity) {
  auto [it, inserted] = predicates_.try_emplace(predicate);
  if (inserted) {
    it->second.arity = arity;
    return Status::OK();
  }
  if (it->second.arity != arity) {
    return Status::InvalidArgument(
        "predicate " + predicate + " declared with arity " +
        std::to_string(it->second.arity) + ", redeclared with " +
        std::to_string(arity));
  }
  return Status::OK();
}

Result<std::size_t> FactStore::Arity(const std::string& predicate) const {
  auto it = predicates_.find(predicate);
  if (it == predicates_.end()) {
    return Status::NotFound("predicate not declared: " + predicate);
  }
  return it->second.arity;
}

Result<bool> FactStore::Insert(const std::string& predicate,
                               const relational::Row& row) {
  IdRow encoded;
  encoded.reserve(row.size());
  for (const Value& value : row) encoded.push_back(dict_.Intern(value));
  return InsertIds(predicate, std::move(encoded));
}

Result<bool> FactStore::InsertIds(const std::string& predicate, IdRow row) {
  LIMCAP_RETURN_NOT_OK(Declare(predicate, row.size()));
  PredicateFacts& facts = predicates_.at(predicate);
  if (row.size() != facts.arity) {
    return Status::InvalidArgument(
        "fact arity " + std::to_string(row.size()) + " != declared arity " +
        std::to_string(facts.arity) + " for predicate " + predicate);
  }
  if (facts.row_set.count(row) > 0) return false;
  for (auto& [columns, index] : facts.indexes) {
    index[ExtractKey(row, columns)].push_back(facts.rows.size());
  }
  facts.row_set.insert(row);
  facts.rows.push_back(std::move(row));
  return true;
}

bool FactStore::Contains(const std::string& predicate, const IdRow& row) const {
  auto it = predicates_.find(predicate);
  return it != predicates_.end() && it->second.row_set.count(row) > 0;
}

std::size_t FactStore::Count(const std::string& predicate) const {
  auto it = predicates_.find(predicate);
  return it == predicates_.end() ? 0 : it->second.rows.size();
}

std::size_t FactStore::TotalCount() const {
  std::size_t total = 0;
  for (const auto& [name, facts] : predicates_) total += facts.rows.size();
  return total;
}

const std::vector<IdRow>& FactStore::Facts(const std::string& predicate) const {
  auto it = predicates_.find(predicate);
  return it == predicates_.end() ? EmptyFacts() : it->second.rows;
}

std::vector<std::size_t> FactStore::Probe(
    const std::string& predicate, const std::vector<std::size_t>& columns,
    const IdRow& key, std::size_t limit) const {
  auto pred_it = predicates_.find(predicate);
  if (pred_it == predicates_.end()) return {};
  const PredicateFacts& facts = pred_it->second;

  auto index_it = facts.indexes.find(columns);
  if (index_it == facts.indexes.end()) {
    std::unordered_map<IdRow, std::vector<std::size_t>, VectorHash<ValueId>>
        index;
    for (std::size_t i = 0; i < facts.rows.size(); ++i) {
      index[ExtractKey(facts.rows[i], columns)].push_back(i);
    }
    index_it = facts.indexes.emplace(columns, std::move(index)).first;
  }
  auto match = index_it->second.find(key);
  if (match == index_it->second.end()) return {};
  const std::vector<std::size_t>& positions = match->second;
  // Positions are ascending; cut at `limit`.
  auto end = std::lower_bound(positions.begin(), positions.end(), limit);
  return std::vector<std::size_t>(positions.begin(), end);
}

Result<relational::Relation> FactStore::ToRelation(
    const std::string& predicate, const relational::Schema& schema) const {
  auto it = predicates_.find(predicate);
  relational::Relation relation(schema);
  if (it == predicates_.end()) return relation;
  if (it->second.arity != schema.arity()) {
    return Status::InvalidArgument(
        "schema arity " + std::to_string(schema.arity()) +
        " != predicate arity " + std::to_string(it->second.arity));
  }
  for (const IdRow& row : it->second.rows) {
    relation.InsertUnsafe(Decode(row));
  }
  return relation;
}

relational::Row FactStore::Decode(const IdRow& row) const {
  relational::Row decoded;
  decoded.reserve(row.size());
  for (ValueId id : row) decoded.push_back(dict_.Get(id));
  return decoded;
}

std::vector<std::string> FactStore::Predicates() const {
  std::vector<std::string> names;
  names.reserve(predicates_.size());
  for (const auto& [name, facts] : predicates_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace limcap::datalog
