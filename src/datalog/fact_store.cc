#include "datalog/fact_store.h"

#include <algorithm>

namespace limcap::datalog {

namespace {

/// Initial power-of-two capacity for row sets and index slot arrays.
constexpr std::size_t kInitialSlots = 16;

/// Grow when occupancy exceeds 7/8 of this fraction denominator… i.e. we
/// keep load factor under 0.7 (10 * n > 7 * capacity triggers growth).
bool NeedsGrowth(std::size_t occupied, std::size_t capacity) {
  return 10 * (occupied + 1) > 7 * capacity;
}

}  // namespace

Result<PredicateId> FactStore::DeclareId(std::string_view predicate,
                                         std::size_t arity) {
  PredicateId id;
  if (names_.Lookup(predicate, &id)) {
    if (preds_[id].arity != arity) {
      return Status::InvalidArgument(
          "predicate " + std::string(predicate) + " declared with arity " +
          std::to_string(preds_[id].arity) + ", redeclared with " +
          std::to_string(arity));
    }
    return id;
  }
  id = names_.Intern(predicate);
  preds_.emplace_back();
  preds_.back().arity = arity;
  return id;
}

Status FactStore::Declare(const std::string& predicate, std::size_t arity) {
  return DeclareId(predicate, arity).status();
}

PredicateId FactStore::FindPredicate(std::string_view predicate) const {
  PredicateId id;
  return names_.Lookup(predicate, &id) ? id : kNoPredicate;
}

Result<std::size_t> FactStore::Arity(const std::string& predicate) const {
  PredicateId id = FindPredicate(predicate);
  if (id == kNoPredicate) {
    return Status::NotFound("predicate not declared: " + predicate);
  }
  return preds_[id].arity;
}

Result<bool> FactStore::Insert(const std::string& predicate,
                               const relational::Row& row) {
  LIMCAP_ASSIGN_OR_RETURN(PredicateId pred, DeclareId(predicate, row.size()));
  // Encode into a small stack-backed scratch when possible.
  IdRow encoded;
  encoded.reserve(row.size());
  for (const Value& value : row) encoded.push_back(dict_->Intern(value));
  return InsertIds(pred, RowView(encoded));
}

Result<bool> FactStore::InsertIds(const std::string& predicate,
                                  const IdRow& row) {
  LIMCAP_ASSIGN_OR_RETURN(PredicateId pred, DeclareId(predicate, row.size()));
  return InsertIds(pred, RowView(row));
}

Result<bool> FactStore::InsertIds(PredicateId pred, RowView row) {
  PredicateData& data = preds_[pred];
  if (row.size() != data.arity) {
    return Status::InvalidArgument(
        "fact arity " + std::to_string(row.size()) + " != declared arity " +
        std::to_string(data.arity) + " for predicate " + names_.Name(pred));
  }
  std::size_t slot;
  if (FindRowSlot(data, row, &slot)) return false;
  if (data.set_slots.empty() ||
      NeedsGrowth(data.num_rows, data.set_slots.size())) {
    GrowRowSet(data);
    FindRowSlot(data, row, &slot);  // recompute the target slot
  }
  const std::size_t pos = data.num_rows;
  data.arena.insert(data.arena.end(), row.begin(), row.end());
  ++data.num_rows;
  data.set_slots[slot] = static_cast<uint32_t>(pos);
  for (ColumnIndex& index : data.indexes) IndexInsert(data, index, pos);
  return true;
}

bool FactStore::Contains(const std::string& predicate, const IdRow& row) const {
  PredicateId pred = FindPredicate(predicate);
  return pred != kNoPredicate && Contains(pred, RowView(row));
}

bool FactStore::Contains(PredicateId pred, RowView row) const {
  const PredicateData& data = preds_[pred];
  if (row.size() != data.arity) return false;
  std::size_t slot;
  return FindRowSlot(data, row, &slot);
}

std::size_t FactStore::Count(const std::string& predicate) const {
  PredicateId pred = FindPredicate(predicate);
  return pred == kNoPredicate ? 0 : preds_[pred].num_rows;
}

std::size_t FactStore::TotalCount() const {
  std::size_t total = 0;
  for (const PredicateData& data : preds_) total += data.num_rows;
  return total;
}

FactSpan FactStore::Facts(const std::string& predicate) const {
  PredicateId pred = FindPredicate(predicate);
  return pred == kNoPredicate ? FactSpan() : Facts(pred);
}

FactSpan FactStore::Facts(PredicateId pred) const {
  const PredicateData& data = preds_[pred];
  return FactSpan(data.arena.data(), data.arity, data.num_rows);
}

bool FactStore::FindRowSlot(const PredicateData& data, RowView row,
                            std::size_t* out_slot) const {
  if (data.set_slots.empty()) {
    *out_slot = kNoSlot;
    return false;
  }
  const std::size_t mask = data.set_slots.size() - 1;
  std::size_t slot = HashSpan(row.data(), row.size()) & mask;
  while (true) {
    const uint32_t occupant = data.set_slots[slot];
    if (occupant == kEmptySlot) {
      *out_slot = slot;
      return false;
    }
    RowView stored = ArenaRow(data, occupant);
    if (std::equal(row.begin(), row.end(), stored.begin())) {
      *out_slot = slot;
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

void FactStore::GrowRowSet(PredicateData& data) {
  const std::size_t capacity =
      data.set_slots.empty() ? kInitialSlots : data.set_slots.size() * 2;
  data.set_slots.assign(capacity, kEmptySlot);
  const std::size_t mask = capacity - 1;
  for (std::size_t pos = 0; pos < data.num_rows; ++pos) {
    RowView row = ArenaRow(data, pos);
    std::size_t slot = HashSpan(row.data(), row.size()) & mask;
    while (data.set_slots[slot] != kEmptySlot) slot = (slot + 1) & mask;
    data.set_slots[slot] = static_cast<uint32_t>(pos);
  }
}

std::size_t FactStore::KeyHashOfRow(const PredicateData& data,
                                    const ColumnIndex& index,
                                    std::size_t pos) {
  const ValueId* row = data.arena.data() + pos * data.arity;
  std::size_t seed = 0x51ed2701a1b2c3d4ULL;
  std::hash<ValueId> hasher;
  for (uint32_t c : index.columns) HashCombine(seed, hasher(row[c]));
  // Must match HashSpan over the extracted key (same combine + Mix64).
  return static_cast<std::size_t>(Mix64(seed));
}

bool FactStore::KeyEqualsRow(const PredicateData& data,
                             const ColumnIndex& index, std::size_t pos,
                             RowView key) const {
  const ValueId* row = data.arena.data() + pos * data.arity;
  for (std::size_t c = 0; c < index.columns.size(); ++c) {
    if (row[index.columns[c]] != key[c]) return false;
  }
  return true;
}

std::size_t FactStore::FindKeySlot(const PredicateData& data,
                                   const ColumnIndex& index,
                                   RowView key) const {
  if (index.slots.empty()) return kNoSlot;
  const std::size_t mask = index.slots.size() - 1;
  const std::size_t hash = HashSpan(key.data(), key.size());
  std::size_t slot = hash & mask;
  while (true) {
    const ColumnIndex::Slot& s = index.slots[slot];
    if (s.head == kEmptySlot) return kNoSlot;
    if (s.hash == hash &&
        KeyEqualsRow(data, index, index.postings[s.head].pos, key)) {
      return slot;
    }
    slot = (slot + 1) & mask;
  }
}

const FactStore::ColumnIndex* FactStore::FindIndex(
    const PredicateData& data, std::span<const uint32_t> columns) const {
  for (const ColumnIndex& index : data.indexes) {
    if (index.columns.size() == columns.size() &&
        std::equal(columns.begin(), columns.end(), index.columns.begin())) {
      return &index;
    }
  }
  return nullptr;
}

void FactStore::IndexInsert(PredicateData& data, ColumnIndex& index,
                            std::size_t pos) {
  if (index.slots.empty() || NeedsGrowth(index.num_keys, index.slots.size())) {
    GrowIndex(index);
  }
  const std::size_t mask = index.slots.size() - 1;
  const std::size_t hash = KeyHashOfRow(data, index, pos);
  std::size_t slot = hash & mask;
  while (true) {
    ColumnIndex::Slot& s = index.slots[slot];
    if (s.head == kEmptySlot) {
      // New key: open a chain.
      const uint32_t posting = static_cast<uint32_t>(index.postings.size());
      index.postings.push_back({static_cast<uint32_t>(pos), kEmptySlot});
      s.hash = hash;
      s.head = posting;
      s.tail = posting;
      ++index.num_keys;
      return;
    }
    if (s.hash == hash) {
      RowView row = ArenaRow(data, pos);
      // Compare against the chain head's key columns.
      const std::size_t head_pos = index.postings[s.head].pos;
      const ValueId* head_row = data.arena.data() + head_pos * data.arity;
      bool equal = true;
      for (uint32_t c : index.columns) {
        if (head_row[c] != row[c]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        // Append at the tail so chains stay in ascending row order.
        const uint32_t posting = static_cast<uint32_t>(index.postings.size());
        index.postings.push_back({static_cast<uint32_t>(pos), kEmptySlot});
        index.postings[s.tail].next = posting;
        s.tail = posting;
        return;
      }
    }
    slot = (slot + 1) & mask;
  }
}

void FactStore::GrowIndex(ColumnIndex& index) {
  const std::size_t capacity =
      index.slots.empty() ? kInitialSlots : index.slots.size() * 2;
  std::vector<ColumnIndex::Slot> old = std::move(index.slots);
  index.slots.assign(capacity, ColumnIndex::Slot{});
  const std::size_t mask = capacity - 1;
  for (const ColumnIndex::Slot& s : old) {
    if (s.head == kEmptySlot) continue;
    std::size_t slot = s.hash & mask;
    while (index.slots[slot].head != kEmptySlot) slot = (slot + 1) & mask;
    index.slots[slot] = s;
  }
}

void FactStore::EnsureIndex(PredicateId pred,
                            std::span<const uint32_t> columns) {
  PredicateData& data = preds_[pred];
  if (FindIndex(data, columns) != nullptr) return;
  data.indexes.emplace_back();
  ColumnIndex& index = data.indexes.back();
  index.columns.assign(columns.begin(), columns.end());
  index.postings.reserve(data.num_rows);
  for (std::size_t pos = 0; pos < data.num_rows; ++pos) {
    IndexInsert(data, index, pos);
  }
}

std::vector<std::size_t> FactStore::Probe(
    const std::string& predicate, const std::vector<std::size_t>& columns,
    const IdRow& key, std::size_t limit) {
  PredicateId pred = FindPredicate(predicate);
  if (pred == kNoPredicate) return {};
  std::vector<uint32_t> cols(columns.begin(), columns.end());
  EnsureIndex(pred, cols);
  std::vector<std::size_t> positions;
  ProbeEach(pred, cols, RowView(key), limit, [&](std::size_t pos) {
    positions.push_back(pos);
    return true;
  });
  return positions;
}

Result<relational::Relation> FactStore::ToRelation(
    const std::string& predicate, const relational::Schema& schema) const {
  PredicateId pred = FindPredicate(predicate);
  relational::Relation relation(schema, dict_);
  if (pred == kNoPredicate) return relation;
  if (preds_[pred].arity != schema.arity()) {
    return Status::InvalidArgument(
        "schema arity " + std::to_string(schema.arity()) +
        " != predicate arity " + std::to_string(preds_[pred].arity));
  }
  // Same dictionary on both sides: rows cross the seam as raw ids.
  for (RowView row : Facts(pred)) {
    relation.InsertIdsUnsafe(row);
  }
  return relation;
}

relational::Row FactStore::Decode(RowView row) const {
  relational::Row decoded;
  decoded.reserve(row.size());
  for (ValueId id : row) decoded.push_back(dict_->Get(id));
  return decoded;
}

std::vector<std::string> FactStore::Predicates() const {
  std::vector<std::string> names;
  names.reserve(preds_.size());
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    names.push_back(names_.Name(static_cast<PredicateId>(i)));
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace limcap::datalog
