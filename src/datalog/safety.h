#ifndef LIMCAP_DATALOG_SAFETY_H_
#define LIMCAP_DATALOG_SAFETY_H_

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/parser.h"

namespace limcap::datalog {

/// Appends the structural safety diagnostics of `program` to `bag`:
///
///   * LC001 — a predicate used with two different arities,
///   * LC002 — a head variable not bound by any positive body atom
///     (range restriction, Ullman's definition, used by the paper's
///     Proposition 3.1),
///   * LC003 — a fact (empty-body rule) containing a variable; Section 7
///     cached-tuple and domain-knowledge facts must be ground.
///
/// Every body atom of this dialect is a positive relational atom — there
/// is no negation or arithmetic, so every body occurrence of a variable
/// is a binding occurrence (the regression tests in analysis_test.cc
/// lock this down; if negated or built-in atoms are ever added, they
/// must be excluded from the binding set here).
///
/// `source_map` (optional) supplies line numbers for the locations.
void AppendSafetyDiagnostics(const Program& program,
                             const ProgramSourceMap* source_map,
                             analysis::DiagnosticBag* bag);

/// Safety diagnostics of a single rule (LC002/LC003). `rule_index` and
/// `span` decorate the locations; pass Location::kNone / nullptr when
/// the rule stands alone.
void AppendRuleSafetyDiagnostics(const Rule& rule, int rule_index,
                                 const RuleSpan* span,
                                 analysis::DiagnosticBag* bag);

/// Checks range-restriction safety plus arity consistency and returns the
/// first violation as a Status whose message carries the diagnostic code,
/// the offending rule, and the variable (e.g. "LC002: head variable 'Y'
/// ... in 'p(X, Y) :- q(X).'").
Status CheckSafety(const Program& program);

/// Safety of a single rule.
Status CheckRuleSafety(const Rule& rule);

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_SAFETY_H_
