#ifndef LIMCAP_DATALOG_SAFETY_H_
#define LIMCAP_DATALOG_SAFETY_H_

#include "common/status.h"
#include "datalog/ast.h"

namespace limcap::datalog {

/// Checks range-restriction safety (Ullman's definition, used by the
/// paper's Proposition 3.1): every variable in a rule head must occur in
/// the rule's (positive) body. Facts must be ground. Also validates that
/// every predicate is used with a consistent arity.
Status CheckSafety(const Program& program);

/// Safety of a single rule.
Status CheckRuleSafety(const Rule& rule);

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_SAFETY_H_
