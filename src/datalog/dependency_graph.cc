#include "datalog/dependency_graph.h"

#include <algorithm>
#include <functional>

namespace limcap::datalog {

DependencyGraph::DependencyGraph(const Program& program) {
  for (const Rule& rule : program.rules()) {
    nodes_.insert(rule.head.predicate);
    auto& deps = edges_[rule.head.predicate];
    for (const Atom& atom : rule.body) {
      nodes_.insert(atom.predicate);
      deps.insert(atom.predicate);
    }
  }
}

const std::set<std::string>& DependencyGraph::DependsOn(
    const std::string& from) const {
  static const std::set<std::string>* empty = new std::set<std::string>();
  auto it = edges_.find(from);
  return it == edges_.end() ? *empty : it->second;
}

std::set<std::string> DependencyGraph::ReachableFrom(
    const std::string& start) const {
  std::set<std::string> visited;
  if (nodes_.count(start) == 0) return visited;
  std::vector<std::string> stack = {start};
  visited.insert(start);
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    for (const std::string& next : DependsOn(current)) {
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return visited;
}

std::vector<std::vector<std::string>>
DependencyGraph::StronglyConnectedComponents() const {
  // Tarjan's algorithm, iterative on the node list with a recursive lambda
  // (programs here are small; recursion depth equals the longest
  // dependency chain).
  std::vector<std::vector<std::string>> components;
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = next_index;
        lowlink[v] = next_index;
        ++next_index;
        stack.push_back(v);
        on_stack[v] = true;
        for (const std::string& w : DependsOn(v)) {
          if (index.find(w) == index.end()) {
            strongconnect(w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack[w]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> component;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
      };

  for (const std::string& node : nodes_) {
    if (index.find(node) == index.end()) strongconnect(node);
  }
  return components;
}

bool DependencyGraph::IsRecursive() const {
  for (const std::string& node : nodes_) {
    if (IsRecursivePredicate(node)) return true;
  }
  return false;
}

bool DependencyGraph::IsRecursivePredicate(const std::string& predicate) const {
  // Self-loop?
  if (DependsOn(predicate).count(predicate) > 0) return true;
  // In a nontrivial SCC?
  for (const auto& component : StronglyConnectedComponents()) {
    if (component.size() > 1 &&
        std::find(component.begin(), component.end(), predicate) !=
            component.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace limcap::datalog
