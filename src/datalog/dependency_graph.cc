#include "datalog/dependency_graph.h"

#include <algorithm>

namespace limcap::datalog {

DependencyGraph::DependencyGraph(const Program& program) {
  for (const Rule& rule : program.rules()) {
    PredicateId head = table_.Intern(rule.head.predicate);
    if (edges_.size() < table_.size()) edges_.resize(table_.size());
    for (const Atom& atom : rule.body) {
      PredicateId body = table_.Intern(atom.predicate);
      if (edges_.size() < table_.size()) edges_.resize(table_.size());
      edges_[head].push_back(body);
    }
  }
  for (std::vector<PredicateId>& deps : edges_) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }

  // Tarjan's algorithm, iterative over an explicit frame stack so deep
  // dependency chains cannot overflow the call stack.
  const std::size_t n = table_.size();
  constexpr int kUnvisited = -1;
  std::vector<int> index(n, kUnvisited);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<PredicateId> stack;
  int next_index = 0;

  struct Frame {
    PredicateId node;
    std::size_t next_edge;
  };
  std::vector<Frame> frames;
  for (PredicateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const PredicateId v = frame.node;
      if (frame.next_edge < edges_[v].size()) {
        const PredicateId w = edges_[v][frame.next_edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<PredicateId> component;
        while (true) {
          PredicateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == v) break;
        }
        components_.push_back(std::move(component));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[v]);
      }
    }
  }

  recursive_.assign(n, false);
  for (const std::vector<PredicateId>& component : components_) {
    if (component.size() > 1) {
      for (PredicateId node : component) recursive_[node] = true;
    }
  }
  for (PredicateId node = 0; node < n; ++node) {
    // Self-loop?
    if (std::binary_search(edges_[node].begin(), edges_[node].end(), node)) {
      recursive_[node] = true;
    }
  }
}

PredicateId DependencyGraph::Find(std::string_view predicate) const {
  PredicateId id;
  return table_.Lookup(predicate, &id) ? id : kNoPredicate;
}

std::set<std::string> DependencyGraph::DependsOn(
    const std::string& from) const {
  std::set<std::string> out;
  PredicateId id = Find(from);
  if (id == kNoPredicate) return out;
  for (PredicateId dep : edges_[id]) out.insert(table_.Name(dep));
  return out;
}

std::vector<bool> DependencyGraph::ReachableMask(PredicateId start) const {
  std::vector<bool> visited(table_.size(), false);
  std::vector<PredicateId> stack = {start};
  visited[start] = true;
  while (!stack.empty()) {
    PredicateId current = stack.back();
    stack.pop_back();
    for (PredicateId next : edges_[current]) {
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return visited;
}

std::set<std::string> DependencyGraph::ReachableFrom(
    const std::string& start) const {
  std::set<std::string> out;
  PredicateId id = Find(start);
  if (id == kNoPredicate) return out;
  std::vector<bool> mask = ReachableMask(id);
  for (PredicateId node = 0; node < mask.size(); ++node) {
    if (mask[node]) out.insert(table_.Name(node));
  }
  return out;
}

std::vector<std::vector<std::string>>
DependencyGraph::StronglyConnectedComponents() const {
  std::vector<std::vector<std::string>> out;
  out.reserve(components_.size());
  for (const std::vector<PredicateId>& component : components_) {
    std::vector<std::string> names;
    names.reserve(component.size());
    for (PredicateId node : component) names.push_back(table_.Name(node));
    std::sort(names.begin(), names.end());
    out.push_back(std::move(names));
  }
  return out;
}

bool DependencyGraph::IsRecursive() const {
  return std::find(recursive_.begin(), recursive_.end(), true) !=
         recursive_.end();
}

bool DependencyGraph::IsRecursivePredicate(
    const std::string& predicate) const {
  PredicateId id = Find(predicate);
  return id != kNoPredicate && recursive_[id];
}

}  // namespace limcap::datalog
