#ifndef LIMCAP_DATALOG_EVALUATOR_H_
#define LIMCAP_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"
#include "datalog/fact_store.h"

namespace limcap::datalog {

/// Counters exposed by an evaluation, used by the ablation benches.
struct EvalStats {
  uint64_t iterations = 0;       ///< fixpoint rounds
  uint64_t rule_activations = 0; ///< (rule, delta-position) match passes
  uint64_t matches = 0;          ///< complete body substitutions found
  uint64_t facts_derived = 0;    ///< new facts inserted into the store
};

/// Bottom-up evaluator for positive (negation-free) Datalog, with two
/// strategies:
///
/// * kNaive — every iteration re-derives from the full relations; the
///   textbook baseline.
/// * kSemiNaive — delta-driven: each rule is re-evaluated only against the
///   facts that appeared since it was last processed, joining the delta of
///   one body atom with the full extent of the others.
///
/// Body atoms are matched with sideways information passing: after the
/// delta atom, remaining atoms are ordered greedily by the number of
/// already-bound argument positions, and each probe uses the fact store's
/// hash indexes.
///
/// Run() is resumable: callers may insert extensional facts into the store
/// between calls and re-run; semi-naive watermarks persist across calls,
/// so only new facts are reprocessed. The paper's source-driven evaluation
/// (Section 3.3) relies on this to interleave Datalog rounds with source
/// queries.
class Evaluator {
 public:
  enum class Mode { kNaive, kSemiNaive };

  /// Compiles `program` against `store` (interning rule constants).
  /// Fails if the program is unsafe (Proposition 3.1's precondition) or
  /// has inconsistent predicate arities. `store` must outlive the
  /// evaluator.
  static Result<std::unique_ptr<Evaluator>> Create(
      const Program& program, FactStore* store,
      Mode mode = Mode::kSemiNaive);

  /// Runs to fixpoint over the store's current contents.
  Status Run();

  const EvalStats& stats() const { return stats_; }

 private:
  struct CompiledTerm {
    bool is_var;
    uint32_t var;      // valid when is_var
    ValueId constant;  // valid when !is_var
  };
  struct CompiledAtom {
    std::string predicate;
    std::vector<CompiledTerm> terms;
  };
  struct CompiledRule {
    CompiledAtom head;
    std::vector<CompiledAtom> body;
    uint32_t num_vars;
    // Greedy atom orders: orders[d] starts with body atom d (the delta
    // atom); orders[body.size()] is the order used by naive evaluation.
    std::vector<std::vector<std::size_t>> orders;
  };

  Evaluator(FactStore* store, Mode mode) : store_(store), mode_(mode) {}

  static std::vector<std::size_t> GreedyOrder(const CompiledRule& rule,
                                              std::size_t first_atom);

  void SeedFacts();
  Status RunNaive();
  Status RunSemiNaive();

  /// Matches `rule` using atom order `order`. When `use_delta` is true the
  /// first atom in the order ranges over [delta_lo, delta_hi); every other
  /// atom ranges over [0, snapshot[predicate]). Emits head facts into the
  /// store.
  Status MatchRule(const CompiledRule& rule,
                   const std::vector<std::size_t>& order, bool use_delta,
                   std::size_t delta_lo, std::size_t delta_hi,
                   const std::map<std::string, std::size_t>& snapshot,
                   bool* derived_new);

  FactStore* store_;
  Mode mode_;
  std::vector<CompiledRule> rules_;
  std::vector<std::pair<std::string, IdRow>> ground_facts_;
  bool facts_seeded_ = false;
  // Semi-naive: per-predicate count of rows already processed as delta.
  std::map<std::string, std::size_t> processed_;
  EvalStats stats_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_EVALUATOR_H_
