#ifndef LIMCAP_DATALOG_EVALUATOR_H_
#define LIMCAP_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "datalog/ast.h"
#include "datalog/fact_store.h"
#include "obs/trace.h"

namespace limcap::datalog {

/// Counters exposed by an evaluation, used by the ablation benches.
struct EvalStats {
  uint64_t iterations = 0;       ///< fixpoint rounds
  uint64_t rule_activations = 0; ///< (rule, delta-position) match passes
  uint64_t matches = 0;          ///< complete body substitutions found
  uint64_t facts_derived = 0;    ///< new facts inserted into the store
  uint64_t probes = 0;           ///< index lookups issued for body atoms
  uint64_t probe_rows = 0;       ///< rows enumerated from index chains
  uint64_t scan_rows = 0;        ///< rows enumerated by delta/full scans
  /// One-time bytes allocated for match scratch (bindings, probe keys,
  /// head rows) at compile time; the match inner loop itself performs no
  /// per-substitution heap allocation.
  uint64_t scratch_bytes = 0;
  uint64_t threads_used = 1;     ///< worker threads (1 in serial modes)
  /// Activations per fixpoint round, index = round number.
  std::vector<uint64_t> round_activations;
};

/// Bottom-up evaluator for positive (negation-free) Datalog, with three
/// strategies:
///
/// * kNaive — every iteration re-derives from the full relations; the
///   textbook baseline.
/// * kSemiNaive — delta-driven: each rule is re-evaluated only against the
///   facts that appeared since it was last processed, joining the delta of
///   one body atom with the full extent of the others.
/// * kParallelSemiNaive — semi-naive with each round's (rule, delta-atom)
///   activations partitioned across a worker pool. Workers match against
///   the frozen store and emit into per-activation buffers; buffers merge
///   into the store single-threaded in activation order at the round
///   barrier, so the derived fact set AND its insertion order are
///   bit-identical to serial semi-naive.
///
/// Rules compile to match plans: predicate names intern to dense
/// PredicateIds, and for each (rule, delta-atom) order the bind/check/
/// probe structure of every step is fixed at compile time. Matching runs
/// against the fact store's flat arenas through the allocation-free
/// ProbeEach cursor; derived facts are buffered per activation and merged
/// at activation (serial) or round (parallel) boundaries, so the store is
/// never mutated mid-scan.
///
/// Run() is resumable: callers may insert extensional facts into the store
/// between calls and re-run; semi-naive watermarks persist across calls,
/// so only new facts are reprocessed. The paper's source-driven evaluation
/// (Section 3.3) relies on this to interleave Datalog rounds with source
/// queries. The watermark contract is identical in serial and parallel
/// modes.
class Evaluator {
 public:
  enum class Mode { kNaive, kSemiNaive, kParallelSemiNaive };

  struct Options {
    Mode mode = Mode::kSemiNaive;
    /// Worker threads for kParallelSemiNaive; 0 means
    /// std::thread::hardware_concurrency(). Ignored by serial modes.
    std::size_t num_threads = 0;
    /// Observability: when set (and enabled), every fixpoint round emits
    /// one "eval.round" span with its activation / derived-fact counters.
    /// Spans are recorded only on the driver thread — in the parallel
    /// mode at the round barrier, never from workers — so tracing cannot
    /// perturb evaluation. Null: the hot path pays two branches per
    /// round. Must outlive the evaluator.
    obs::Tracer* tracer = nullptr;
  };

  /// Compiles `program` against `store` (interning rule constants and
  /// predicate names, pre-declaring arities, and pre-building every index
  /// the match plans probe). Fails if the program is unsafe (Proposition
  /// 3.1's precondition) or has inconsistent predicate arities. `store`
  /// must outlive the evaluator.
  static Result<std::unique_ptr<Evaluator>> Create(
      const Program& program, FactStore* store,
      Mode mode = Mode::kSemiNaive);
  static Result<std::unique_ptr<Evaluator>> Create(const Program& program,
                                                   FactStore* store,
                                                   const Options& options);

  /// Runs to fixpoint over the store's current contents.
  Status Run();

  const EvalStats& stats() const { return stats_; }

 private:
  struct CompiledTerm {
    bool is_var;
    uint32_t var;      // valid when is_var
    ValueId constant;  // valid when !is_var
  };
  struct CompiledAtom {
    PredicateId pred = kNoPredicate;
    std::vector<CompiledTerm> terms;
  };

  /// One body atom of a match plan with its fixed runtime behavior:
  /// `binds` writes first-occurrence variables from the row, `checks`
  /// rejects rows that disagree with constants or already-bound
  /// variables, and `probe_cols`/`key_parts` describe the index lookup
  /// (empty probe_cols → scan). Which variables are bound at each step is
  /// static for a fixed atom order, so none of this is decided per row.
  struct MatchStep {
    PredicateId pred = kNoPredicate;
    struct Bind {
      uint32_t pos;
      uint32_t var;
    };
    struct Check {
      uint32_t pos;
      bool is_const;
      ValueId constant;
      uint32_t var;
    };
    struct KeyPart {
      bool is_const;
      ValueId constant;
      uint32_t var;
    };
    std::vector<Bind> binds;
    std::vector<Check> checks;
    std::vector<uint32_t> probe_cols;
    std::vector<KeyPart> key_parts;
    uint32_t key_offset = 0;  // slot of this step's key in the key scratch
  };
  struct MatchPlan {
    std::vector<MatchStep> steps;
    uint32_t key_scratch_size = 0;
  };
  struct CompiledRule {
    CompiledAtom head;
    std::vector<CompiledAtom> body;
    uint32_t num_vars = 0;
    // plans[d] starts with body atom d (the delta atom); plans[body
    // .size()] is the order used by naive evaluation.
    std::vector<MatchPlan> plans;
  };

  /// Per-worker reusable buffers; sized once at compile so the match loop
  /// never allocates.
  struct MatchScratch {
    std::vector<ValueId> binding;
    std::vector<ValueId> keys;
    std::vector<ValueId> head_row;
    uint64_t matches = 0;
    uint64_t probes = 0;
    uint64_t probe_rows = 0;
    uint64_t scan_rows = 0;
  };

  /// Arity-strided buffer of derived rows with open-addressing dedup,
  /// reused across activations.
  struct DerivedBuffer {
    std::vector<ValueId> arena;
    std::vector<uint32_t> slots;
    std::size_t arity = 0;
    std::size_t num_rows = 0;

    void Reset(std::size_t row_arity);
    bool Add(RowView row);  // false when already buffered
    RowView RowAt(std::size_t i) const {
      return RowView(arena.data() + i * arity, arity);
    }
  };

  /// One (rule, delta-atom) unit of work within a round.
  struct Activation {
    uint32_t rule;
    uint32_t plan;  // plan index: delta atom, or body.size() for naive
    std::size_t delta_lo;
    std::size_t delta_hi;
  };

  Evaluator(FactStore* store, const Options& options)
      : store_(store), options_(options) {}

  static std::vector<std::size_t> GreedyOrder(const CompiledRule& rule,
                                              std::size_t first_atom);
  static MatchPlan BuildPlan(const CompiledRule& rule,
                             const std::vector<std::size_t>& order);

  void SeedFacts();
  void RefreshSnapshot();
  Status RunNaive();
  Status RunSemiNaive();
  Status RunParallelSemiNaive();

  /// Matches one activation against the frozen store, emitting deduped
  /// derived rows into `buffer`. Thread-safe: touches only `scratch`,
  /// `buffer`, and read paths of the store.
  void MatchActivation(const Activation& activation, MatchScratch& scratch,
                       DerivedBuffer& buffer) const;

  template <typename Sink>
  void MatchStepRec(const CompiledRule& rule, const MatchPlan& plan,
                    std::size_t k, std::size_t scan_lo, std::size_t scan_hi,
                    MatchScratch& scratch, Sink& sink) const;

  /// Inserts `buffer` into the store (single-threaded), updating
  /// facts_derived; sets *derived_new when any row was new.
  Status MergeBuffer(const CompiledRule& rule, const DerivedBuffer& buffer,
                     bool* derived_new);

  void AbsorbScratchStats(MatchScratch& scratch);

  FactStore* store_;
  Options options_;
  std::vector<CompiledRule> rules_;
  std::vector<std::pair<PredicateId, IdRow>> ground_facts_;
  bool facts_seeded_ = false;
  /// Distinct body predicates, the domain of snapshots and watermarks.
  std::vector<PredicateId> body_preds_;
  /// Per-predicate row-count snapshot taken at the top of each round; the
  /// limit for every non-delta atom range.
  std::vector<std::size_t> snapshot_;
  /// Semi-naive: per-predicate count of rows already processed as delta.
  std::vector<std::size_t> processed_;
  MatchScratch scratch_;
  std::vector<MatchScratch> worker_scratch_;
  DerivedBuffer buffer_;
  std::vector<DerivedBuffer> activation_buffers_;
  std::unique_ptr<ThreadPool> pool_;
  EvalStats stats_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_EVALUATOR_H_
