#ifndef LIMCAP_DATALOG_PARSER_H_
#define LIMCAP_DATALOG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "datalog/ast.h"

namespace limcap::datalog {

/// Parses Datalog text into a Program. The grammar follows the paper's
/// notation:
///
///   ans(P) :- v1^(t1, C), v3^(C, A, P).
///   song(t1).
///   % comment (also //)
///
/// * Identifiers beginning with an upper-case letter are variables; all
///   others are string constants (paper convention).
/// * `^` is allowed inside identifiers so alpha-predicates print/parse as
///   `v1^`.
/// * A token beginning with `$` is a string constant (e.g. `$15`).
/// * Integer and floating-point literals become Int64/Double values.
/// * Quoted strings ("...") are string constants regardless of case.
/// * Facts may be written `f(a).` or `f(a) :- .`.
Result<Program> ParseProgram(std::string_view text);

/// Parses a single rule (same syntax, one rule, trailing '.').
Result<Rule> ParseRule(std::string_view text);

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_PARSER_H_
