#ifndef LIMCAP_DATALOG_PARSER_H_
#define LIMCAP_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"

namespace limcap::datalog {

/// A 1-based position in the parsed text.
struct SourceSpan {
  int line = 0;
  int column = 0;
};

/// Source positions of one rule: the rule itself (= its head atom) and
/// each body atom, in body order.
struct RuleSpan {
  SourceSpan rule;
  std::vector<SourceSpan> body;
};

/// Side table mapping each rule of a parsed Program (by index) back to
/// its position in the source text. Produced by ParseProgram on request;
/// the static analyzer threads it into diagnostics so findings point at
/// lines, not just rule indices.
struct ProgramSourceMap {
  std::vector<RuleSpan> rules;
};

/// Parses Datalog text into a Program. The grammar follows the paper's
/// notation:
///
///   ans(P) :- v1^(t1, C), v3^(C, A, P).
///   song(t1).
///   % comment (also //)
///
/// * Identifiers beginning with an upper-case letter are variables; all
///   others are string constants (paper convention).
/// * `^` is allowed inside identifiers so alpha-predicates print/parse as
///   `v1^`.
/// * A token beginning with `$` is a string constant (e.g. `$15`).
/// * Integer and floating-point literals become Int64/Double values.
/// * Quoted strings ("...") are string constants regardless of case.
/// * Facts may be written `f(a).` or `f(a) :- .`.
///
/// When `source_map` is non-null it receives one RuleSpan per parsed
/// rule (cleared first).
Result<Program> ParseProgram(std::string_view text);
Result<Program> ParseProgram(std::string_view text,
                             ProgramSourceMap* source_map);

/// Parses a single rule (same syntax, one rule, trailing '.').
Result<Rule> ParseRule(std::string_view text);

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_PARSER_H_
