#include "datalog/evaluator.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "datalog/safety.h"

namespace limcap::datalog {

Result<std::unique_ptr<Evaluator>> Evaluator::Create(const Program& program,
                                                     FactStore* store,
                                                     Mode mode) {
  LIMCAP_RETURN_NOT_OK(CheckSafety(program));
  // Pre-declare every predicate's arity so facts arriving from outside
  // (source results) are arity-checked against the program instead of
  // silently defining a conflicting shape.
  LIMCAP_ASSIGN_OR_RETURN(auto arities, program.PredicateArities());
  for (const auto& [predicate, arity] : arities) {
    LIMCAP_RETURN_NOT_OK(store->Declare(predicate, arity));
  }
  auto evaluator = std::unique_ptr<Evaluator>(new Evaluator(store, mode));

  for (const Rule& rule : program.rules()) {
    // Variable name -> dense index within the rule.
    std::unordered_map<std::string, uint32_t> var_ids;
    auto compile_atom = [&](const Atom& atom) {
      CompiledAtom compiled;
      compiled.predicate = atom.predicate;
      for (const Term& term : atom.terms) {
        CompiledTerm ct;
        if (term.is_variable()) {
          ct.is_var = true;
          auto [it, inserted] = var_ids.emplace(
              term.var(), static_cast<uint32_t>(var_ids.size()));
          ct.var = it->second;
          ct.constant = 0;
        } else {
          ct.is_var = false;
          ct.var = 0;
          ct.constant = store->dict().Intern(term.constant());
        }
        compiled.terms.push_back(ct);
      }
      return compiled;
    };

    if (rule.is_fact()) {
      // Ground facts are seeded directly; safety guarantees groundness.
      IdRow row;
      row.reserve(rule.head.terms.size());
      for (const Term& term : rule.head.terms) {
        row.push_back(store->dict().Intern(term.constant()));
      }
      evaluator->ground_facts_.emplace_back(rule.head.predicate,
                                            std::move(row));
      continue;
    }

    CompiledRule compiled;
    compiled.body.reserve(rule.body.size());
    for (const Atom& atom : rule.body) {
      compiled.body.push_back(compile_atom(atom));
    }
    compiled.head = compile_atom(rule.head);
    compiled.num_vars = static_cast<uint32_t>(var_ids.size());
    for (std::size_t d = 0; d < compiled.body.size(); ++d) {
      compiled.orders.push_back(GreedyOrder(compiled, d));
    }
    compiled.orders.push_back(GreedyOrder(compiled, compiled.body.size()));
    evaluator->rules_.push_back(std::move(compiled));
  }
  return evaluator;
}

std::vector<std::size_t> Evaluator::GreedyOrder(const CompiledRule& rule,
                                                std::size_t first_atom) {
  std::vector<std::size_t> order;
  std::vector<bool> used(rule.body.size(), false);
  std::vector<bool> bound(rule.num_vars, false);

  auto bind_atom = [&](std::size_t index) {
    for (const CompiledTerm& term : rule.body[index].terms) {
      if (term.is_var) bound[term.var] = true;
    }
  };
  if (first_atom < rule.body.size()) {
    order.push_back(first_atom);
    used[first_atom] = true;
    bind_atom(first_atom);
  }
  while (order.size() < rule.body.size()) {
    // Pick the unused atom with the most bound argument positions
    // (constants count as bound); ties resolve to program order.
    std::size_t best = rule.body.size();
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i]) continue;
      std::size_t score = 1;  // so the first candidate wins over "none"
      for (const CompiledTerm& term : rule.body[i].terms) {
        if (!term.is_var || bound[term.var]) ++score;
      }
      if (best == rule.body.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    order.push_back(best);
    used[best] = true;
    bind_atom(best);
  }
  return order;
}

void Evaluator::SeedFacts() {
  if (facts_seeded_) return;
  for (const auto& [predicate, row] : ground_facts_) {
    auto inserted = store_->InsertIds(predicate, row);
    if (inserted.ok() && inserted.value()) ++stats_.facts_derived;
  }
  facts_seeded_ = true;
}

Status Evaluator::Run() {
  SeedFacts();
  return mode_ == Mode::kNaive ? RunNaive() : RunSemiNaive();
}

Status Evaluator::RunNaive() {
  while (true) {
    ++stats_.iterations;
    std::map<std::string, std::size_t> snapshot;
    for (const CompiledRule& rule : rules_) {
      for (const CompiledAtom& atom : rule.body) {
        snapshot[atom.predicate] = store_->Count(atom.predicate);
      }
    }
    bool derived_new = false;
    for (const CompiledRule& rule : rules_) {
      ++stats_.rule_activations;
      LIMCAP_RETURN_NOT_OK(MatchRule(rule, rule.orders.back(),
                                     /*use_delta=*/false, 0, 0, snapshot,
                                     &derived_new));
    }
    if (!derived_new) return Status::OK();
  }
}

Status Evaluator::RunSemiNaive() {
  while (true) {
    // Snapshot the extent of every body predicate; rows at positions
    // [processed, snapshot) are this round's delta.
    std::map<std::string, std::size_t> snapshot;
    for (const CompiledRule& rule : rules_) {
      for (const CompiledAtom& atom : rule.body) {
        snapshot[atom.predicate] = store_->Count(atom.predicate);
      }
    }
    bool has_delta = false;
    for (const auto& [predicate, size] : snapshot) {
      if (processed_[predicate] < size) {
        has_delta = true;
        break;
      }
    }
    if (!has_delta) return Status::OK();
    ++stats_.iterations;

    bool derived_new = false;
    for (const CompiledRule& rule : rules_) {
      for (std::size_t d = 0; d < rule.body.size(); ++d) {
        const std::string& predicate = rule.body[d].predicate;
        std::size_t lo = processed_[predicate];
        std::size_t hi = snapshot[predicate];
        if (lo >= hi) continue;
        ++stats_.rule_activations;
        LIMCAP_RETURN_NOT_OK(MatchRule(rule, rule.orders[d],
                                       /*use_delta=*/true, lo, hi, snapshot,
                                       &derived_new));
      }
    }
    for (const auto& [predicate, size] : snapshot) {
      processed_[predicate] = std::max(processed_[predicate], size);
    }
  }
}

Status Evaluator::MatchRule(const CompiledRule& rule,
                            const std::vector<std::size_t>& order,
                            bool use_delta, std::size_t delta_lo,
                            std::size_t delta_hi,
                            const std::map<std::string, std::size_t>& snapshot,
                            bool* derived_new) {
  std::vector<ValueId> binding(rule.num_vars, 0);
  std::vector<bool> bound(rule.num_vars, false);
  Status status = Status::OK();

  // Unifies `row` with `atom` under the current binding; on success,
  // records newly bound variables in `newly_bound` and returns true.
  auto try_unify = [&](const CompiledAtom& atom, const IdRow& row,
                       std::vector<uint32_t>* newly_bound) {
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const CompiledTerm& term = atom.terms[i];
      if (!term.is_var) {
        if (row[i] != term.constant) return false;
      } else if (bound[term.var]) {
        if (row[i] != binding[term.var]) return false;
      } else {
        bound[term.var] = true;
        binding[term.var] = row[i];
        newly_bound->push_back(term.var);
      }
    }
    return true;
  };
  auto undo = [&](const std::vector<uint32_t>& newly_bound) {
    for (uint32_t var : newly_bound) bound[var] = false;
  };

  std::function<void(std::size_t)> recurse = [&](std::size_t k) {
    if (!status.ok()) return;
    if (k == order.size()) {
      ++stats_.matches;
      IdRow head_row;
      head_row.reserve(rule.head.terms.size());
      for (const CompiledTerm& term : rule.head.terms) {
        head_row.push_back(term.is_var ? binding[term.var] : term.constant);
      }
      auto inserted = store_->InsertIds(rule.head.predicate,
                                        std::move(head_row));
      if (!inserted.ok()) {
        status = inserted.status();
        return;
      }
      if (inserted.value()) {
        ++stats_.facts_derived;
        *derived_new = true;
      }
      return;
    }

    const CompiledAtom& atom = rule.body[order[k]];
    const bool is_delta_atom = use_delta && k == 0;
    auto snap_it = snapshot.find(atom.predicate);
    const std::size_t limit =
        snap_it == snapshot.end() ? store_->Count(atom.predicate)
                                  : snap_it->second;

    if (is_delta_atom) {
      // Delta ranges are contiguous; scan them linearly.
      const std::vector<IdRow>& facts = store_->Facts(atom.predicate);
      for (std::size_t i = delta_lo; i < delta_hi && status.ok(); ++i) {
        std::vector<uint32_t> newly_bound;
        if (try_unify(atom, facts[i], &newly_bound)) recurse(k + 1);
        undo(newly_bound);
      }
      return;
    }

    // Collect bound argument positions to probe the hash index.
    std::vector<std::size_t> columns;
    IdRow key;
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const CompiledTerm& term = atom.terms[i];
      if (!term.is_var) {
        columns.push_back(i);
        key.push_back(term.constant);
      } else if (bound[term.var]) {
        columns.push_back(i);
        key.push_back(binding[term.var]);
      }
    }

    if (columns.empty()) {
      const std::vector<IdRow>& facts = store_->Facts(atom.predicate);
      for (std::size_t i = 0; i < limit && status.ok(); ++i) {
        std::vector<uint32_t> newly_bound;
        if (try_unify(atom, facts[i], &newly_bound)) recurse(k + 1);
        undo(newly_bound);
      }
      return;
    }

    std::vector<std::size_t> positions =
        store_->Probe(atom.predicate, columns, key, limit);
    const std::vector<IdRow>& facts = store_->Facts(atom.predicate);
    for (std::size_t pos : positions) {
      if (!status.ok()) break;
      std::vector<uint32_t> newly_bound;
      if (try_unify(atom, facts[pos], &newly_bound)) recurse(k + 1);
      undo(newly_bound);
    }
  };

  recurse(0);
  return status;
}

}  // namespace limcap::datalog
