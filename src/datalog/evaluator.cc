#include "datalog/evaluator.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/hash.h"
#include "datalog/safety.h"

namespace limcap::datalog {

namespace {

constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

}  // namespace

void Evaluator::DerivedBuffer::Reset(std::size_t row_arity) {
  arity = row_arity;
  num_rows = 0;
  arena.clear();
  slots.assign(std::max<std::size_t>(16, slots.size()), kEmptySlot);
}

bool Evaluator::DerivedBuffer::Add(RowView row) {
  const std::size_t mask = slots.size() - 1;
  std::size_t slot = HashSpan(row.data(), row.size()) & mask;
  while (true) {
    const uint32_t occupant = slots[slot];
    if (occupant == kEmptySlot) break;
    RowView stored = RowAt(occupant);
    if (std::equal(row.begin(), row.end(), stored.begin())) return false;
    slot = (slot + 1) & mask;
  }
  slots[slot] = static_cast<uint32_t>(num_rows);
  arena.insert(arena.end(), row.begin(), row.end());
  ++num_rows;
  if (10 * (num_rows + 1) > 7 * slots.size()) {
    // Rehash at double capacity.
    std::vector<uint32_t> grown(slots.size() * 2, kEmptySlot);
    const std::size_t grown_mask = grown.size() - 1;
    for (std::size_t i = 0; i < num_rows; ++i) {
      RowView r = RowAt(i);
      std::size_t s = HashSpan(r.data(), r.size()) & grown_mask;
      while (grown[s] != kEmptySlot) s = (s + 1) & grown_mask;
      grown[s] = static_cast<uint32_t>(i);
    }
    slots = std::move(grown);
  }
  return true;
}

Result<std::unique_ptr<Evaluator>> Evaluator::Create(const Program& program,
                                                     FactStore* store,
                                                     Mode mode) {
  Options options;
  options.mode = mode;
  return Create(program, store, options);
}

Result<std::unique_ptr<Evaluator>> Evaluator::Create(const Program& program,
                                                     FactStore* store,
                                                     const Options& options) {
  LIMCAP_RETURN_NOT_OK(CheckSafety(program));
  // Pre-declare every predicate's arity so facts arriving from outside
  // (source results) are arity-checked against the program instead of
  // silently defining a conflicting shape. This also interns every
  // predicate to its dense id.
  LIMCAP_ASSIGN_OR_RETURN(auto arities, program.PredicateArities());
  for (const auto& [predicate, arity] : arities) {
    LIMCAP_RETURN_NOT_OK(store->DeclareId(predicate, arity).status());
  }
  auto evaluator =
      std::unique_ptr<Evaluator>(new Evaluator(store, options));

  for (const Rule& rule : program.rules()) {
    // Variable name -> dense index within the rule.
    std::unordered_map<std::string, uint32_t> var_ids;
    auto compile_atom = [&](const Atom& atom) {
      CompiledAtom compiled;
      compiled.pred = store->FindPredicate(atom.predicate);
      for (const Term& term : atom.terms) {
        CompiledTerm ct;
        if (term.is_variable()) {
          ct.is_var = true;
          auto [it, inserted] = var_ids.emplace(
              term.var(), static_cast<uint32_t>(var_ids.size()));
          ct.var = it->second;
          ct.constant = 0;
        } else {
          ct.is_var = false;
          ct.var = 0;
          ct.constant = store->dict().Intern(term.constant());
        }
        compiled.terms.push_back(ct);
      }
      return compiled;
    };

    if (rule.is_fact()) {
      // Ground facts are seeded directly; safety guarantees groundness.
      IdRow row;
      row.reserve(rule.head.terms.size());
      for (const Term& term : rule.head.terms) {
        row.push_back(store->dict().Intern(term.constant()));
      }
      evaluator->ground_facts_.emplace_back(
          store->FindPredicate(rule.head.predicate), std::move(row));
      continue;
    }

    CompiledRule compiled;
    compiled.body.reserve(rule.body.size());
    for (const Atom& atom : rule.body) {
      compiled.body.push_back(compile_atom(atom));
    }
    compiled.head = compile_atom(rule.head);
    compiled.num_vars = static_cast<uint32_t>(var_ids.size());
    for (std::size_t d = 0; d <= compiled.body.size(); ++d) {
      compiled.plans.push_back(
          BuildPlan(compiled, GreedyOrder(compiled, d)));
    }
    evaluator->rules_.push_back(std::move(compiled));
  }

  // The set of body predicates drives snapshots and delta watermarks.
  for (const CompiledRule& rule : evaluator->rules_) {
    for (const CompiledAtom& atom : rule.body) {
      evaluator->body_preds_.push_back(atom.pred);
    }
  }
  std::sort(evaluator->body_preds_.begin(), evaluator->body_preds_.end());
  evaluator->body_preds_.erase(
      std::unique(evaluator->body_preds_.begin(),
                  evaluator->body_preds_.end()),
      evaluator->body_preds_.end());

  // Pre-build every index the plans probe: after this, match-time probes
  // are read-only, which is what makes the parallel workers safe.
  std::size_t max_vars = 0, max_keys = 0, max_head = 0;
  for (const CompiledRule& rule : evaluator->rules_) {
    max_vars = std::max<std::size_t>(max_vars, rule.num_vars);
    max_head = std::max<std::size_t>(max_head, rule.head.terms.size());
    for (const MatchPlan& plan : rule.plans) {
      max_keys = std::max<std::size_t>(max_keys, plan.key_scratch_size);
      for (const MatchStep& step : plan.steps) {
        if (!step.probe_cols.empty()) {
          store->EnsureIndex(step.pred, step.probe_cols);
        }
      }
    }
  }

  auto size_scratch = [&](MatchScratch& scratch) {
    scratch.binding.assign(max_vars, 0);
    scratch.keys.assign(max_keys, 0);
    scratch.head_row.assign(max_head, 0);
    evaluator->stats_.scratch_bytes +=
        (max_vars + max_keys + max_head) * sizeof(ValueId);
  };
  size_scratch(evaluator->scratch_);
  if (options.mode == Mode::kParallelSemiNaive) {
    std::size_t threads = options.num_threads != 0
                              ? options.num_threads
                              : std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, threads);
    evaluator->pool_ = std::make_unique<ThreadPool>(threads);
    evaluator->worker_scratch_.resize(threads);
    for (MatchScratch& scratch : evaluator->worker_scratch_) {
      size_scratch(scratch);
    }
    evaluator->stats_.threads_used = threads;
  }
  return evaluator;
}

std::vector<std::size_t> Evaluator::GreedyOrder(const CompiledRule& rule,
                                                std::size_t first_atom) {
  std::vector<std::size_t> order;
  std::vector<bool> used(rule.body.size(), false);
  std::vector<bool> bound(rule.num_vars, false);

  auto bind_atom = [&](std::size_t index) {
    for (const CompiledTerm& term : rule.body[index].terms) {
      if (term.is_var) bound[term.var] = true;
    }
  };
  if (first_atom < rule.body.size()) {
    order.push_back(first_atom);
    used[first_atom] = true;
    bind_atom(first_atom);
  }
  while (order.size() < rule.body.size()) {
    // Pick the unused atom with the most bound argument positions
    // (constants count as bound); ties resolve to program order.
    std::size_t best = rule.body.size();
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i]) continue;
      std::size_t score = 1;  // so the first candidate wins over "none"
      for (const CompiledTerm& term : rule.body[i].terms) {
        if (!term.is_var || bound[term.var]) ++score;
      }
      if (best == rule.body.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    order.push_back(best);
    used[best] = true;
    bind_atom(best);
  }
  return order;
}

Evaluator::MatchPlan Evaluator::BuildPlan(
    const CompiledRule& rule, const std::vector<std::size_t>& order) {
  MatchPlan plan;
  std::vector<bool> bound(rule.num_vars, false);
  uint32_t key_offset = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const CompiledAtom& atom = rule.body[order[k]];
    MatchStep step;
    step.pred = atom.pred;
    step.key_offset = key_offset;
    // Variables bound by earlier steps may serve as probe-key parts; a
    // variable first bound by this very atom may not (its value comes
    // from the row being examined), so repeats within the atom become
    // equality checks instead.
    const std::vector<bool> bound_before = bound;
    for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const CompiledTerm& term = atom.terms[pos];
      const uint32_t pos32 = static_cast<uint32_t>(pos);
      if (!term.is_var) {
        if (k == 0) {
          step.checks.push_back({pos32, true, term.constant, 0});
        } else {
          step.probe_cols.push_back(pos32);
          step.key_parts.push_back({true, term.constant, 0});
        }
      } else if (!bound[term.var]) {
        bound[term.var] = true;
        step.binds.push_back({pos32, term.var});
      } else if (k > 0 && bound_before[term.var]) {
        step.probe_cols.push_back(pos32);
        step.key_parts.push_back({false, 0, term.var});
      } else {
        // Step 0 scans; and repeated variables within one atom check
        // against the binding their first occurrence just wrote.
        step.checks.push_back({pos32, false, 0, term.var});
      }
    }
    key_offset += static_cast<uint32_t>(step.key_parts.size());
    plan.steps.push_back(std::move(step));
  }
  plan.key_scratch_size = key_offset;
  return plan;
}

void Evaluator::SeedFacts() {
  if (facts_seeded_) return;
  const uint64_t facts_before = stats_.facts_derived;
  for (const auto& [pred, row] : ground_facts_) {
    auto inserted = store_->InsertIds(pred, RowView(row));
    if (inserted.ok() && inserted.value()) ++stats_.facts_derived;
  }
  facts_seeded_ = true;
  // Seeded ground facts count into facts_derived but fall outside every
  // "eval.round" span; this instant keeps the trace's fact accounting
  // complete (round facts + seed facts == facts_derived).
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    const obs::SpanId span = options_.tracer->Instant("eval.seed");
    options_.tracer->Counter(
        span, "facts", static_cast<double>(stats_.facts_derived - facts_before));
  }
}

Status Evaluator::Run() {
  SeedFacts();
  switch (options_.mode) {
    case Mode::kNaive:
      return RunNaive();
    case Mode::kSemiNaive:
      return RunSemiNaive();
    case Mode::kParallelSemiNaive:
      return RunParallelSemiNaive();
  }
  return Status::InvalidArgument("unknown evaluation mode");
}

void Evaluator::RefreshSnapshot() {
  snapshot_.assign(store_->NumPredicates(), 0);
  if (processed_.size() < snapshot_.size()) {
    processed_.resize(snapshot_.size(), 0);
  }
  for (PredicateId pred : body_preds_) {
    snapshot_[pred] = store_->Count(pred);
  }
}

template <typename Sink>
void Evaluator::MatchStepRec(const CompiledRule& rule, const MatchPlan& plan,
                             std::size_t k, std::size_t scan_lo,
                             std::size_t scan_hi, MatchScratch& scratch,
                             Sink& sink) const {
  if (k == plan.steps.size()) {
    ++scratch.matches;
    for (std::size_t i = 0; i < rule.head.terms.size(); ++i) {
      const CompiledTerm& term = rule.head.terms[i];
      scratch.head_row[i] =
          term.is_var ? scratch.binding[term.var] : term.constant;
    }
    sink(RowView(scratch.head_row.data(), rule.head.terms.size()));
    return;
  }

  const MatchStep& step = plan.steps[k];

  // Applies one row: writes first-occurrence bindings, then verifies
  // equality checks. Binds-before-checks is correct even for repeated
  // variables within the atom (the check reads the binding the bind just
  // wrote). Nothing to undo: bind sets are static per step, so stale
  // bindings are never read.
  auto apply_row = [&](RowView row) {
    for (const MatchStep::Bind& bind : step.binds) {
      scratch.binding[bind.var] = row[bind.pos];
    }
    for (const MatchStep::Check& check : step.checks) {
      const ValueId expect =
          check.is_const ? check.constant : scratch.binding[check.var];
      if (row[check.pos] != expect) return;
    }
    MatchStepRec(rule, plan, k + 1, scan_lo, scan_hi, scratch, sink);
  };

  if (k == 0) {
    // First atom: contiguous scan — the delta range for delta plans, the
    // full snapshot extent for the naive plan.
    const FactSpan facts = store_->Facts(step.pred);
    for (std::size_t pos = scan_lo; pos < scan_hi; ++pos) {
      ++scratch.scan_rows;
      apply_row(facts[pos]);
    }
    return;
  }

  const std::size_t limit = snapshot_[step.pred];
  if (step.probe_cols.empty()) {
    const FactSpan facts = store_->Facts(step.pred);
    const std::size_t bound = std::min(limit, facts.size());
    for (std::size_t pos = 0; pos < bound; ++pos) {
      ++scratch.scan_rows;
      apply_row(facts[pos]);
    }
    return;
  }

  // Assemble the probe key in this step's fixed scratch slot.
  ValueId* key = scratch.keys.data() + step.key_offset;
  for (std::size_t i = 0; i < step.key_parts.size(); ++i) {
    const MatchStep::KeyPart& part = step.key_parts[i];
    key[i] = part.is_const ? part.constant : scratch.binding[part.var];
  }
  ++scratch.probes;
  const FactSpan facts = store_->Facts(step.pred);
  store_->ProbeEach(step.pred, step.probe_cols,
                    RowView(key, step.key_parts.size()), limit,
                    [&](std::size_t pos) {
                      ++scratch.probe_rows;
                      apply_row(facts[pos]);
                      return true;
                    });
}

void Evaluator::MatchActivation(const Activation& activation,
                                MatchScratch& scratch,
                                DerivedBuffer& buffer) const {
  const CompiledRule& rule = rules_[activation.rule];
  const MatchPlan& plan = rule.plans[activation.plan];
  buffer.Reset(rule.head.terms.size());
  auto sink = [&](RowView head_row) {
    // Dedup against the frozen store first (cheap membership probe), then
    // within the buffer; both are read paths plus thread-local writes.
    if (store_->Contains(rule.head.pred, head_row)) return;
    buffer.Add(head_row);
  };
  MatchStepRec(rule, plan, 0, activation.delta_lo, activation.delta_hi,
               scratch, sink);
}

Status Evaluator::MergeBuffer(const CompiledRule& rule,
                              const DerivedBuffer& buffer,
                              bool* derived_new) {
  for (std::size_t i = 0; i < buffer.num_rows; ++i) {
    LIMCAP_ASSIGN_OR_RETURN(
        bool inserted, store_->InsertIds(rule.head.pred, buffer.RowAt(i)));
    if (inserted) {
      ++stats_.facts_derived;
      *derived_new = true;
    }
  }
  return Status::OK();
}

void Evaluator::AbsorbScratchStats(MatchScratch& scratch) {
  stats_.matches += scratch.matches;
  stats_.probes += scratch.probes;
  stats_.probe_rows += scratch.probe_rows;
  stats_.scan_rows += scratch.scan_rows;
  scratch.matches = scratch.probes = scratch.probe_rows = scratch.scan_rows =
      0;
}

Status Evaluator::RunNaive() {
  while (true) {
    obs::ScopedSpan round_span(options_.tracer, "eval.round");
    ++stats_.iterations;
    RefreshSnapshot();
    stats_.round_activations.push_back(0);
    const uint64_t facts_before = stats_.facts_derived;
    bool derived_new = false;
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      ++stats_.rule_activations;
      ++stats_.round_activations.back();
      const Activation activation{
          r, static_cast<uint32_t>(rules_[r].body.size()), 0,
          rules_[r].body.empty()
              ? 0
              : snapshot_[rules_[r].plans.back().steps[0].pred]};
      MatchActivation(activation, scratch_, buffer_);
      AbsorbScratchStats(scratch_);
      LIMCAP_RETURN_NOT_OK(MergeBuffer(rules_[r], buffer_, &derived_new));
    }
    round_span.Counter("activations",
                       static_cast<double>(stats_.round_activations.back()));
    round_span.Counter(
        "facts", static_cast<double>(stats_.facts_derived - facts_before));
    if (!derived_new) return Status::OK();
  }
}

Status Evaluator::RunSemiNaive() {
  while (true) {
    RefreshSnapshot();
    bool has_delta = false;
    for (PredicateId pred : body_preds_) {
      if (processed_[pred] < snapshot_[pred]) {
        has_delta = true;
        break;
      }
    }
    if (!has_delta) return Status::OK();
    obs::ScopedSpan round_span(options_.tracer, "eval.round");
    ++stats_.iterations;
    stats_.round_activations.push_back(0);
    const uint64_t facts_before = stats_.facts_derived;

    bool derived_new = false;
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      const CompiledRule& rule = rules_[r];
      for (uint32_t d = 0; d < rule.body.size(); ++d) {
        const PredicateId pred = rule.body[d].pred;
        const std::size_t lo = processed_[pred];
        const std::size_t hi = snapshot_[pred];
        if (lo >= hi) continue;
        ++stats_.rule_activations;
        ++stats_.round_activations.back();
        MatchActivation(Activation{r, d, lo, hi}, scratch_, buffer_);
        AbsorbScratchStats(scratch_);
        LIMCAP_RETURN_NOT_OK(MergeBuffer(rule, buffer_, &derived_new));
      }
    }
    for (PredicateId pred : body_preds_) {
      processed_[pred] = std::max(processed_[pred], snapshot_[pred]);
    }
    round_span.Counter("activations",
                       static_cast<double>(stats_.round_activations.back()));
    round_span.Counter(
        "facts", static_cast<double>(stats_.facts_derived - facts_before));
  }
}

Status Evaluator::RunParallelSemiNaive() {
  std::vector<Activation> activations;
  while (true) {
    RefreshSnapshot();
    activations.clear();
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      const CompiledRule& rule = rules_[r];
      for (uint32_t d = 0; d < rule.body.size(); ++d) {
        const PredicateId pred = rule.body[d].pred;
        const std::size_t lo = processed_[pred];
        const std::size_t hi = snapshot_[pred];
        if (lo < hi) activations.push_back(Activation{r, d, lo, hi});
      }
    }
    if (activations.empty()) return Status::OK();
    obs::ScopedSpan round_span(options_.tracer, "eval.round");
    ++stats_.iterations;
    stats_.rule_activations += activations.size();
    stats_.round_activations.push_back(activations.size());
    const uint64_t facts_before = stats_.facts_derived;

    if (activations.size() > activation_buffers_.size()) {
      activation_buffers_.resize(activations.size());
    }
    // Workers pull activations off a shared counter and match against the
    // frozen store into per-activation buffers. No store mutation happens
    // until every worker is done.
    std::atomic<std::size_t> next{0};
    pool_->RunOnAll([&](std::size_t worker) {
      MatchScratch& scratch = worker_scratch_[worker];
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= activations.size()) break;
        MatchActivation(activations[i], scratch,
                        activation_buffers_[i]);
      }
    });
    for (MatchScratch& scratch : worker_scratch_) {
      AbsorbScratchStats(scratch);
    }

    // Round barrier: merge in activation order, which reproduces the
    // serial insertion order exactly (first occurrence of each new fact
    // appears at the same position), so parallel and serial runs yield
    // bit-identical stores.
    bool derived_new = false;
    for (std::size_t i = 0; i < activations.size(); ++i) {
      LIMCAP_RETURN_NOT_OK(MergeBuffer(rules_[activations[i].rule],
                                       activation_buffers_[i],
                                       &derived_new));
    }
    for (PredicateId pred : body_preds_) {
      processed_[pred] = std::max(processed_[pred], snapshot_[pred]);
    }
    round_span.Counter("activations",
                       static_cast<double>(activations.size()));
    round_span.Counter(
        "facts", static_cast<double>(stats_.facts_derived - facts_before));
  }
}

}  // namespace limcap::datalog
