#include "datalog/safety.h"

#include <map>
#include <unordered_set>
#include <utility>

namespace limcap::datalog {

namespace {

using analysis::Code;
using analysis::DiagnosticBag;
using analysis::Location;

Location RuleLocation(const Rule& rule, int rule_index, const RuleSpan* span) {
  Location location;
  location.rule = rule_index;
  if (span != nullptr) {
    location.line = span->rule.line;
    location.column = span->rule.column;
  }
  location.context = rule.ToString();
  return location;
}

/// LC001: every predicate must be used with a single arity. Reports one
/// diagnostic per offending predicate, at the first conflicting use.
void AppendArityDiagnostics(const Program& program,
                            const ProgramSourceMap* source_map,
                            DiagnosticBag* bag) {
  // predicate -> (arity, rule index of first use)
  std::map<std::string, std::pair<std::size_t, int>> arities;
  std::unordered_set<std::string> reported;
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    auto check_atom = [&](const Atom& atom) {
      auto [it, inserted] = arities.emplace(
          atom.predicate,
          std::make_pair(atom.arity(), static_cast<int>(r)));
      if (inserted || it->second.first == atom.arity()) return;
      if (!reported.insert(atom.predicate).second) return;
      const RuleSpan* span =
          source_map != nullptr && r < source_map->rules.size()
              ? &source_map->rules[r]
              : nullptr;
      bag->Report(Code::kArityClash,
                  "predicate '" + atom.predicate + "' is used with arity " +
                      std::to_string(atom.arity()) + " here but with arity " +
                      std::to_string(it->second.first) + " in rule " +
                      std::to_string(it->second.second),
                  RuleLocation(rule, static_cast<int>(r), span));
    };
    check_atom(rule.head);
    for (const Atom& atom : rule.body) check_atom(atom);
  }
}

}  // namespace

void AppendRuleSafetyDiagnostics(const Rule& rule, int rule_index,
                                 const RuleSpan* span, DiagnosticBag* bag) {
  // Every body atom is a positive relational atom in this dialect, so
  // every body variable is a binding occurrence. (A future negated or
  // arithmetic atom must NOT be added to `body_vars`.)
  std::unordered_set<std::string> body_vars;
  for (const Atom& atom : rule.body) {
    for (const Term& term : atom.terms) {
      if (term.is_variable()) body_vars.insert(term.var());
    }
  }
  std::unordered_set<std::string> reported;
  for (const Term& term : rule.head.terms) {
    if (!term.is_variable() || body_vars.count(term.var()) > 0) continue;
    if (!reported.insert(term.var()).second) continue;
    if (rule.is_fact()) {
      bag->Report(Code::kNonGroundFact,
                  "fact contains variable '" + term.var() +
                      "' (facts must be ground) in '" + rule.ToString() + "'",
                  RuleLocation(rule, rule_index, span));
    } else {
      bag->Report(Code::kUnsafeHeadVariable,
                  "head variable '" + term.var() + "' of '" +
                      rule.head.predicate +
                      "' is not bound by any positive body atom in '" +
                      rule.ToString() + "'",
                  RuleLocation(rule, rule_index, span));
    }
  }
}

void AppendSafetyDiagnostics(const Program& program,
                             const ProgramSourceMap* source_map,
                             DiagnosticBag* bag) {
  AppendArityDiagnostics(program, source_map, bag);
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const RuleSpan* span =
        source_map != nullptr && r < source_map->rules.size()
            ? &source_map->rules[r]
            : nullptr;
    AppendRuleSafetyDiagnostics(program.rules()[r], static_cast<int>(r), span,
                                bag);
  }
}

Status CheckSafety(const Program& program) {
  analysis::DiagnosticBag bag;
  AppendSafetyDiagnostics(program, nullptr, &bag);
  return bag.ToStatus();
}

Status CheckRuleSafety(const Rule& rule) {
  analysis::DiagnosticBag bag;
  AppendRuleSafetyDiagnostics(rule, Location::kNone, nullptr, &bag);
  return bag.ToStatus();
}

}  // namespace limcap::datalog
