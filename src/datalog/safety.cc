#include "datalog/safety.h"

#include <unordered_set>

namespace limcap::datalog {

Status CheckRuleSafety(const Rule& rule) {
  std::unordered_set<std::string> body_vars;
  for (const Atom& atom : rule.body) {
    for (const Term& term : atom.terms) {
      if (term.is_variable()) body_vars.insert(term.var());
    }
  }
  for (const Term& term : rule.head.terms) {
    if (term.is_variable() && body_vars.count(term.var()) == 0) {
      return Status::InvalidArgument(
          "unsafe rule (head variable " + term.var() +
          " not bound in body): " + rule.ToString());
    }
  }
  return Status::OK();
}

Status CheckSafety(const Program& program) {
  LIMCAP_RETURN_NOT_OK(program.PredicateArities().status());
  for (const Rule& rule : program.rules()) {
    LIMCAP_RETURN_NOT_OK(CheckRuleSafety(rule));
  }
  return Status::OK();
}

}  // namespace limcap::datalog
