#include "datalog/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace limcap::datalog {

namespace {

/// Hand-written lexer/recursive-descent parser with line/column tracking
/// for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text, ProgramSourceMap* source_map = nullptr)
      : text_(text), source_map_(source_map) {
    if (source_map_ != nullptr) source_map_->rules.clear();
  }

  Result<Program> ParseProgram() {
    Program program;
    SkipTrivia();
    while (!AtEnd()) {
      LIMCAP_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
      program.AddRule(std::move(rule));
      SkipTrivia();
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    SkipTrivia();
    LIMCAP_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    SkipTrivia();
    if (!AtEnd()) return Error("trailing input after rule");
    return rule;
  }

 private:
  Result<Rule> ParseOneRule() {
    Rule rule;
    RuleSpan span;
    SkipTrivia();
    span.rule = Here();
    LIMCAP_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    SkipTrivia();
    if (ConsumeIf(":-")) {
      SkipTrivia();
      // Allow an empty body: `f(a) :- .`
      if (!Peek('.')) {
        while (true) {
          SkipTrivia();
          span.body.push_back(Here());
          LIMCAP_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
          rule.body.push_back(std::move(atom));
          SkipTrivia();
          if (!ConsumeIf(",")) break;
          SkipTrivia();
        }
      }
    }
    SkipTrivia();
    if (!ConsumeIf(".")) return Error("expected '.' at end of rule");
    if (source_map_ != nullptr) source_map_->rules.push_back(std::move(span));
    return rule;
  }

  Result<Atom> ParseAtom() {
    SkipTrivia();
    LIMCAP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    Atom atom;
    atom.predicate = std::move(name);
    SkipTrivia();
    if (!ConsumeIf("(")) return Error("expected '(' after predicate name");
    SkipTrivia();
    if (!ConsumeIf(")")) {
      while (true) {
        LIMCAP_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.terms.push_back(std::move(term));
        SkipTrivia();
        if (ConsumeIf(")")) break;
        if (!ConsumeIf(",")) return Error("expected ',' or ')' in atom");
        SkipTrivia();
      }
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    SkipTrivia();
    if (AtEnd()) return Error("expected term");
    char c = text_[pos_];
    if (c == '"') return ParseQuotedString();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return ParseNumber();
    }
    if (IsIdentStart(c)) {
      LIMCAP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
      if (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_') {
        return Term::Var(std::move(name));
      }
      return Term::Constant(Value::String(std::move(name)));
    }
    return Error(std::string("unexpected character '") + c + "' in term");
  }

  Result<Term> ParseQuotedString() {
    ++pos_;  // opening quote
    std::string out;
    while (!AtEnd() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    if (AtEnd()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    return Term::Constant(Value::String(std::move(out)));
  }

  Result<Term> ParseNumber() {
    std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected digits after '-'");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    // A '.' is part of the number only when followed by a digit; otherwise
    // it terminates the rule.
    if (!AtEnd() && text_[pos_] == '.' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      is_double = true;
      ++pos_;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (is_double) return Term::Constant(Value::Double(std::strtod(token.c_str(), nullptr)));
    return Term::Constant(
        Value::Int64(std::strtoll(token.c_str(), nullptr, 10)));
  }

  Result<std::string> ParseIdentifier() {
    if (AtEnd() || !IsIdentStart(text_[pos_])) {
      return Error("expected identifier");
    }
    std::size_t start = pos_;
    while (!AtEnd() && IsIdentChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '^' || c == '$';
  }

  void SkipTrivia() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  bool Peek(char c) const { return !AtEnd() && text_[pos_] == c; }

  bool ConsumeIf(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  SourceSpan Here() const {
    return SourceSpan{static_cast<int>(line_),
                      static_cast<int>(pos_ - line_start_ + 1)};
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument(
        message + " at line " + std::to_string(line_) + ", column " +
        std::to_string(pos_ - line_start_ + 1));
  }

  std::string_view text_;
  ProgramSourceMap* source_map_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  return Parser(text).ParseProgram();
}

Result<Program> ParseProgram(std::string_view text,
                             ProgramSourceMap* source_map) {
  return Parser(text, source_map).ParseProgram();
}

Result<Rule> ParseRule(std::string_view text) {
  return Parser(text).ParseSingleRule();
}

}  // namespace limcap::datalog
