#ifndef LIMCAP_DATALOG_FACT_STORE_H_
#define LIMCAP_DATALOG_FACT_STORE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/value.h"
#include "common/value_dictionary.h"
#include "relational/relation.h"

namespace limcap::datalog {

/// A fact row with dictionary-encoded values.
using IdRow = std::vector<ValueId>;

/// Holds the extensional and derived facts of a Datalog evaluation, one
/// fact set per predicate. Values are interned into a shared dictionary so
/// engine rows are flat id vectors; facts are appended (never removed), so
/// a row-count watermark identifies a predicate's delta — exactly what
/// semi-naive iteration and the resumable source-driven evaluation need.
class FactStore {
 public:
  FactStore() = default;

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;
  FactStore(FactStore&&) = default;
  FactStore& operator=(FactStore&&) = default;

  ValueDictionary& dict() { return dict_; }
  const ValueDictionary& dict() const { return dict_; }

  /// Declares `predicate` with the given arity (idempotent; fails on a
  /// conflicting arity).
  Status Declare(const std::string& predicate, std::size_t arity);

  bool IsDeclared(const std::string& predicate) const {
    return predicates_.count(predicate) > 0;
  }
  Result<std::size_t> Arity(const std::string& predicate) const;

  /// Interns `row` and inserts it; returns true when new. Declares the
  /// predicate implicitly with the row's arity.
  Result<bool> Insert(const std::string& predicate,
                      const relational::Row& row);

  /// Inserts an already-encoded row; true when new.
  Result<bool> InsertIds(const std::string& predicate, IdRow row);

  bool Contains(const std::string& predicate, const IdRow& row) const;

  /// Number of facts for `predicate` (0 when undeclared).
  std::size_t Count(const std::string& predicate) const;

  /// Total facts across predicates.
  std::size_t TotalCount() const;

  /// All facts of `predicate` in insertion order. The reference is stable
  /// across inserts for the duration of iteration only if no insert
  /// happens; callers capture sizes instead of iterators.
  const std::vector<IdRow>& Facts(const std::string& predicate) const;

  /// Row positions in [0, limit) whose values at `columns` equal `key`.
  /// Builds a hash index per column subset on first use and maintains it
  /// incrementally. Returned indices are ascending.
  std::vector<std::size_t> Probe(const std::string& predicate,
                                 const std::vector<std::size_t>& columns,
                                 const IdRow& key, std::size_t limit) const;

  /// Decodes the facts of `predicate` into a Relation with `schema`
  /// (arity must match).
  Result<relational::Relation> ToRelation(const std::string& predicate,
                                          const relational::Schema& schema) const;

  /// Decodes one fact row.
  relational::Row Decode(const IdRow& row) const;

  /// Declared predicates, sorted.
  std::vector<std::string> Predicates() const;

 private:
  struct PredicateFacts {
    std::size_t arity = 0;
    std::vector<IdRow> rows;
    std::unordered_set<IdRow, VectorHash<ValueId>> row_set;
    // column subset -> key -> ascending row positions
    mutable std::map<std::vector<std::size_t>,
                     std::unordered_map<IdRow, std::vector<std::size_t>,
                                        VectorHash<ValueId>>>
        indexes;
  };

  ValueDictionary dict_;
  std::unordered_map<std::string, PredicateFacts> predicates_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_FACT_STORE_H_
