#ifndef LIMCAP_DATALOG_FACT_STORE_H_
#define LIMCAP_DATALOG_FACT_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "common/result.h"
#include "common/value.h"
#include "common/value_dictionary.h"
#include "relational/relation.h"

namespace limcap::datalog {

/// A fact row with dictionary-encoded values (the owning form; engine hot
/// paths use RowView over the store's flat arenas instead).
using IdRow = std::vector<ValueId>;

/// Non-owning view of one stored row: `arity` consecutive ValueIds inside
/// a predicate's arena.
using RowView = std::span<const ValueId>;

/// Dense id of an interned predicate name. Ids index plain vectors in the
/// store, the evaluator's watermarks, and the dependency graph.
using PredicateId = uint32_t;
inline constexpr PredicateId kNoPredicate = 0xFFFFFFFFu;

/// Interns predicate names to PredicateIds.
using PredicateTable = Interner<PredicateId>;

/// Random-access range over a predicate's rows; dereferencing yields
/// RowViews into the arity-strided arena.
class FactSpan {
 public:
  FactSpan() = default;
  FactSpan(const ValueId* data, std::size_t arity, std::size_t rows)
      : data_(data), arity_(arity), rows_(rows) {}

  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  RowView operator[](std::size_t i) const {
    return RowView(data_ + i * arity_, arity_);
  }

  class iterator {
   public:
    iterator(const FactSpan* span, std::size_t pos) : span_(span), pos_(pos) {}
    RowView operator*() const { return (*span_)[pos_]; }
    iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const iterator& other) const { return pos_ != other.pos_; }

   private:
    const FactSpan* span_;
    std::size_t pos_;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, rows_); }

 private:
  const ValueId* data_ = nullptr;
  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
};

/// Holds the extensional and derived facts of a Datalog evaluation, one
/// fact set per predicate. Predicate names are interned to dense
/// PredicateIds and values into a shared dictionary, so each predicate's
/// rows live in a single arity-strided std::vector<ValueId> arena; rows
/// are appended (never removed), so a row-count watermark identifies a
/// predicate's delta — exactly what semi-naive iteration and the
/// resumable source-driven evaluation need.
///
/// Duplicate detection and per-column-subset indexes are open-addressing
/// tables over row positions; keys are never materialized (hashing and
/// equality read the arena directly), so inserts and probes do not
/// allocate outside amortized table growth.
///
/// Thread-safety: concurrent reads (Facts/Count/Contains/ProbeEach on
/// already-built indexes) are safe while no insert runs; the parallel
/// evaluator relies on this by pre-building indexes and confining inserts
/// to single-threaded merge phases.
class FactStore {
 public:
  FactStore() : dict_(std::make_shared<ValueDictionary>()) {}
  /// A store encoding against an existing (session) dictionary, so rows
  /// flow between the store and same-session relations as raw ids.
  explicit FactStore(ValueDictionaryPtr dict) : dict_(std::move(dict)) {}

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;
  FactStore(FactStore&&) = default;
  FactStore& operator=(FactStore&&) = default;

  ValueDictionary& dict() { return *dict_; }
  const ValueDictionary& dict() const { return *dict_; }
  const ValueDictionaryPtr& dict_ptr() const { return dict_; }

  const PredicateTable& predicate_table() const { return names_; }

  /// Declares `predicate` with the given arity (idempotent; fails on a
  /// conflicting arity) and returns its dense id.
  Result<PredicateId> DeclareId(std::string_view predicate,
                                std::size_t arity);
  Status Declare(const std::string& predicate, std::size_t arity);

  /// The id of `predicate` if declared, else kNoPredicate.
  PredicateId FindPredicate(std::string_view predicate) const;

  bool IsDeclared(const std::string& predicate) const {
    return FindPredicate(predicate) != kNoPredicate;
  }
  const std::string& PredicateName(PredicateId pred) const {
    return names_.Name(pred);
  }
  std::size_t NumPredicates() const { return preds_.size(); }

  Result<std::size_t> Arity(const std::string& predicate) const;
  std::size_t Arity(PredicateId pred) const { return preds_[pred].arity; }

  /// Interns `row` and inserts it; returns true when new. Declares the
  /// predicate implicitly with the row's arity.
  Result<bool> Insert(const std::string& predicate,
                      const relational::Row& row);

  /// Inserts an already-encoded row; true when new.
  Result<bool> InsertIds(const std::string& predicate, const IdRow& row);
  Result<bool> InsertIds(PredicateId pred, RowView row);

  bool Contains(const std::string& predicate, const IdRow& row) const;
  bool Contains(PredicateId pred, RowView row) const;

  /// Number of facts for `predicate` (0 when undeclared).
  std::size_t Count(const std::string& predicate) const;
  std::size_t Count(PredicateId pred) const { return preds_[pred].num_rows; }

  /// Total facts across predicates.
  std::size_t TotalCount() const;

  /// All facts of `predicate` in insertion order. Row views stay valid
  /// until the next insert into the predicate (the arena may reallocate);
  /// callers capture sizes, not iterators, across inserts.
  FactSpan Facts(const std::string& predicate) const;
  FactSpan Facts(PredicateId pred) const;

  /// One row of `pred` by position.
  RowView Row(PredicateId pred, std::size_t pos) const {
    return Facts(pred)[pos];
  }

  /// Ensures the hash index of `pred` over `columns` exists (building it
  /// from the current rows if not). Inserts maintain existing indexes
  /// incrementally. Pre-building every index a query plan needs makes
  /// subsequent ProbeEach calls read-only and thus safe to issue from
  /// concurrent readers.
  void EnsureIndex(PredicateId pred, std::span<const uint32_t> columns);

  /// Invokes `fn(pos)` for every row position in [0, limit) whose values
  /// at `columns` equal `key`, in ascending order. Allocation-free: walks
  /// the open-addressing index chain (falling back to a scan of [0,limit)
  /// when the index does not exist — EnsureIndex first on hot paths).
  /// `fn` returns false to stop early.
  template <typename Fn>
  void ProbeEach(PredicateId pred, std::span<const uint32_t> columns,
                 RowView key, std::size_t limit, Fn&& fn) const {
    if (pred >= preds_.size()) return;
    const PredicateData& data = preds_[pred];
    const std::size_t bound = std::min(limit, data.num_rows);
    if (bound == 0) return;
    const ColumnIndex* index = FindIndex(data, columns);
    if (index == nullptr) {
      // Slow path for unindexed probes (tests, ad-hoc callers).
      for (std::size_t pos = 0; pos < bound; ++pos) {
        const ValueId* row = data.arena.data() + pos * data.arity;
        bool match = true;
        for (std::size_t c = 0; c < columns.size(); ++c) {
          if (row[columns[c]] != key[c]) {
            match = false;
            break;
          }
        }
        if (match && !fn(pos)) return;
      }
      return;
    }
    const std::size_t slot = FindKeySlot(data, *index, key);
    if (slot == kNoSlot) return;
    // Postings chains are appended in insertion order, so positions are
    // ascending; stop at the limit.
    for (uint32_t p = index->slots[slot].head; p != kEmptySlot;
         p = index->postings[p].next) {
      const std::size_t pos = index->postings[p].pos;
      if (pos >= bound) return;
      if (!fn(pos)) return;
    }
  }

  /// Row positions in [0, limit) whose values at `columns` equal `key`,
  /// ascending. Builds the index on first use (hence non-const); the
  /// allocation-free engine path is ProbeEach.
  std::vector<std::size_t> Probe(const std::string& predicate,
                                 const std::vector<std::size_t>& columns,
                                 const IdRow& key, std::size_t limit);

  /// Decodes the facts of `predicate` into a Relation with `schema`
  /// (arity must match).
  Result<relational::Relation> ToRelation(
      const std::string& predicate, const relational::Schema& schema) const;

  /// Decodes one fact row.
  relational::Row Decode(RowView row) const;

  /// Declared predicates, sorted.
  std::vector<std::string> Predicates() const;

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Open-addressing index of one predicate over one column subset.
  /// Slots hold the key hash plus head/tail of a postings chain; key
  /// bytes are never stored — equality compares the probe key against the
  /// chain head's row in the arena.
  struct ColumnIndex {
    std::vector<uint32_t> columns;
    struct Slot {
      std::size_t hash = 0;
      uint32_t head = kEmptySlot;
      uint32_t tail = kEmptySlot;
    };
    struct Posting {
      uint32_t pos;
      uint32_t next;
    };
    std::vector<Slot> slots;  // power-of-two size
    std::vector<Posting> postings;
    std::size_t num_keys = 0;
  };

  struct PredicateData {
    std::size_t arity = 0;
    std::size_t num_rows = 0;
    std::vector<ValueId> arena;  // num_rows * arity ids
    // Duplicate-detection set: open addressing over row positions, keyed
    // by full-row hash/equality against the arena.
    std::vector<uint32_t> set_slots;  // power-of-two size
    std::vector<ColumnIndex> indexes;
  };

  RowView ArenaRow(const PredicateData& data, std::size_t pos) const {
    return RowView(data.arena.data() + pos * data.arity, data.arity);
  }

  /// Position of `row` in data's row set, or kNoSlot-marked miss: returns
  /// the slot index holding the match, or the empty slot where it would
  /// go, via `out_slot`; true when found.
  bool FindRowSlot(const PredicateData& data, RowView row,
                   std::size_t* out_slot) const;
  void GrowRowSet(PredicateData& data);

  static std::size_t KeyHashOfRow(const PredicateData& data,
                                  const ColumnIndex& index, std::size_t pos);
  bool KeyEqualsRow(const PredicateData& data, const ColumnIndex& index,
                    std::size_t pos, RowView key) const;
  /// Slot of `key` in `index`, or kNoSlot.
  std::size_t FindKeySlot(const PredicateData& data, const ColumnIndex& index,
                          RowView key) const;
  const ColumnIndex* FindIndex(const PredicateData& data,
                               std::span<const uint32_t> columns) const;
  void IndexInsert(PredicateData& data, ColumnIndex& index, std::size_t pos);
  void GrowIndex(ColumnIndex& index);

  ValueDictionaryPtr dict_;
  PredicateTable names_;
  std::vector<PredicateData> preds_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_FACT_STORE_H_
