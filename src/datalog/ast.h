#ifndef LIMCAP_DATALOG_AST_H_
#define LIMCAP_DATALOG_AST_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace limcap::datalog {

/// A term is either a variable (named, e.g. "C") or a constant Value.
class Term {
 public:
  static Term Var(std::string name) { return Term(std::move(name)); }
  static Term Constant(Value value) { return Term(std::move(value)); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  /// Variable name; only valid when is_variable().
  const std::string& var() const { return var_; }
  /// Constant value; only valid when is_constant().
  const Value& constant() const { return value_; }

  /// Variables as "C". Constants render in re-parseable Datalog syntax:
  /// numbers as literals, identifier-safe lower-case strings bare, and
  /// every other string quoted (so ToString round-trips through the
  /// parser).
  std::string ToString() const;

  bool operator==(const Term& other) const {
    if (is_variable_ != other.is_variable_) return false;
    return is_variable_ ? var_ == other.var_ : value_ == other.value_;
  }

 private:
  explicit Term(std::string name) : is_variable_(true), var_(std::move(name)) {}
  explicit Term(Value value) : is_variable_(false), value_(std::move(value)) {}

  bool is_variable_;
  std::string var_;
  Value value_;
};

/// An atom `p(t1, ..., tk)`.
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  std::size_t arity() const { return terms.size(); }

  /// Names of the distinct variables in this atom, in first-occurrence
  /// order.
  std::vector<std::string> Variables() const;

  /// "p(t1, t2)".
  std::string ToString() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && terms == other.terms;
  }
};

/// A Horn rule `head :- body1, ..., bodyk.`; a fact when the body is
/// empty.
struct Rule {
  Atom head;
  std::vector<Atom> body;

  bool is_fact() const { return body.empty(); }

  /// Distinct variables across head and body, first-occurrence order
  /// (head first).
  std::vector<std::string> Variables() const;

  /// "h(X) :- b(X, Y)." / "f(a)." for facts.
  std::string ToString() const;

  /// The rule with variables renamed V0, V1, ... in first-occurrence order
  /// (head first, then body left to right), rendered as text. Two rules
  /// are alpha-equivalent iff their canonical strings match; the figure
  /// reproduction tests compare programs this way.
  std::string CanonicalString() const;

  bool operator==(const Rule& other) const {
    return head == other.head && body == other.body;
  }
};

/// A positive Datalog program: a list of rules. IDB predicates are those
/// appearing in some head; every other predicate mentioned is EDB.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Predicates appearing in rule heads.
  std::set<std::string> IdbPredicates() const;
  /// Predicates appearing only in bodies.
  std::set<std::string> EdbPredicates() const;
  /// All predicates mentioned.
  std::set<std::string> AllPredicates() const;

  /// Checks that each predicate is used with a single arity everywhere;
  /// returns the arity map.
  Result<std::vector<std::pair<std::string, std::size_t>>> PredicateArities()
      const;

  /// One rule per line, in program order.
  std::string ToString() const;

  /// The multiset of CanonicalString()s, sorted — the canonical form used
  /// to compare a generated program against a paper figure independent of
  /// rule order and variable naming.
  std::vector<std::string> CanonicalRuleStrings() const;

  bool operator==(const Program& other) const {
    return CanonicalRuleStrings() == other.CanonicalRuleStrings();
  }

 private:
  std::vector<Rule> rules_;
};

}  // namespace limcap::datalog

#endif  // LIMCAP_DATALOG_AST_H_
