#include "datalog/ast.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_set>

#include "common/string_util.h"

namespace limcap::datalog {

namespace {

void CollectVariables(const Atom& atom, std::vector<std::string>* out,
                      std::unordered_set<std::string>* seen) {
  for (const Term& term : atom.terms) {
    if (term.is_variable() && seen->insert(term.var()).second) {
      out->push_back(term.var());
    }
  }
}

/// True when a string constant can be printed bare and re-parse to the
/// same string: it must lex as an identifier and not look like a
/// variable (no leading upper-case or underscore).
bool IsBareSafeString(const std::string& text) {
  if (text.empty()) return false;
  unsigned char first = static_cast<unsigned char>(text[0]);
  if (!(std::islower(first) || first == '$')) return false;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!(std::isalnum(uc) || c == '_' || c == '$' || c == '^')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Term::ToString() const {
  if (is_variable_) return var_;
  if (!value_.is_string()) return value_.ToString();
  const std::string& text = value_.str();
  if (IsBareSafeString(text)) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  CollectVariables(*this, &out, &seen);
  return out;
}

std::string Atom::ToString() const {
  return predicate + "(" +
         JoinMapped(terms, ", ", [](const Term& t) { return t.ToString(); }) +
         ")";
}

std::vector<std::string> Rule::Variables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  CollectVariables(head, &out, &seen);
  for (const Atom& atom : body) CollectVariables(atom, &out, &seen);
  return out;
}

std::string Rule::ToString() const {
  if (is_fact()) return head.ToString() + ".";
  return head.ToString() + " :- " +
         JoinMapped(body, ", ", [](const Atom& a) { return a.ToString(); }) +
         ".";
}

std::string Rule::CanonicalString() const {
  std::map<std::string, std::string> renaming;
  for (const std::string& var : Variables()) {
    renaming.emplace(var, "V" + std::to_string(renaming.size()));
  }
  auto rename_atom = [&renaming](const Atom& atom) {
    Atom out = atom;
    for (Term& term : out.terms) {
      if (term.is_variable()) term = Term::Var(renaming.at(term.var()));
    }
    return out;
  };
  Rule canonical;
  canonical.head = rename_atom(head);
  for (const Atom& atom : body) canonical.body.push_back(rename_atom(atom));
  return canonical.ToString();
}

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> out;
  for (const Rule& rule : rules_) out.insert(rule.head.predicate);
  return out;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> out;
  for (const Rule& rule : rules_) {
    for (const Atom& atom : rule.body) {
      if (idb.count(atom.predicate) == 0) out.insert(atom.predicate);
    }
  }
  return out;
}

std::set<std::string> Program::AllPredicates() const {
  std::set<std::string> out;
  for (const Rule& rule : rules_) {
    out.insert(rule.head.predicate);
    for (const Atom& atom : rule.body) out.insert(atom.predicate);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::size_t>>>
Program::PredicateArities() const {
  std::map<std::string, std::size_t> arities;
  auto record = [&arities](const Atom& atom) -> Status {
    auto [it, inserted] = arities.emplace(atom.predicate, atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return Status::InvalidArgument(
          "predicate " + atom.predicate + " used with arities " +
          std::to_string(it->second) + " and " + std::to_string(atom.arity()));
    }
    return Status::OK();
  };
  for (const Rule& rule : rules_) {
    LIMCAP_RETURN_NOT_OK(record(rule.head));
    for (const Atom& atom : rule.body) {
      LIMCAP_RETURN_NOT_OK(record(atom));
    }
  }
  return std::vector<std::pair<std::string, std::size_t>>(arities.begin(),
                                                          arities.end());
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString();
    out += '\n';
  }
  return out;
}

std::vector<std::string> Program::CanonicalRuleStrings() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const Rule& rule : rules_) out.push_back(rule.CanonicalString());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace limcap::datalog
