#ifndef LIMCAP_PLANNER_FIND_REL_H_
#define LIMCAP_PLANNER_FIND_REL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "capability/source_view.h"
#include "common/result.h"
#include "obs/trace.h"
#include "planner/closure.h"
#include "planner/domain_map.h"
#include "planner/query.h"

namespace limcap::planner {

/// The output of FIND_REL (paper Figure 7) for one connection, with every
/// intermediate exposed so callers can explain the plan.
struct FindRelReport {
  /// V_q = f-closure(I(Q), V), in executable order.
  std::vector<std::string> queryable_views;
  /// Whether every view of the connection is queryable; when false the
  /// connection can yield no tuples and the remaining fields are empty.
  bool connection_queryable = false;
  /// Whether the connection is independent (empty kernel).
  bool independent = false;
  /// The kernel computed for the connection (Definition 5.1).
  AttributeSet kernel;
  /// b-closure(kernel) over the queryable views.
  std::set<std::string> kernel_bclosure;
  /// The relevant views: b-closure(kernel) ∪ T (Theorem 5.1). Empty when
  /// the connection is not queryable.
  std::set<std::string> relevant_views;

  std::string ToString() const;
};

/// Runs FIND_REL for `connection` of `query` over all views `views`.
/// Fails when the connection names a view absent from `views`.
///
/// `domains` generalizes the analysis beyond Section 5's distinct-domain
/// assumption: binding flow follows domains, so when the map groups
/// attributes (Section 3), every same-domain attribute is folded to one
/// canonical representative before the closures run. With the default
/// one-domain-per-attribute map this is exactly the paper's algorithm.
///
/// `seeded_attributes` are attributes whose domains already hold values
/// from outside the query — e.g. the attributes of views with cached
/// tuples (Section 7.1). They widen the queryability closure, but — like
/// a shared-domain input — they seed values rather than constrain the
/// answer, so they do not shrink kernels.
Result<FindRelReport> FindRelevantViews(
    const Query& query, const Connection& connection,
    const std::vector<SourceView>& views,
    const DomainMap& domains = DomainMap(),
    const AttributeSet& seeded_attributes = {});

/// The Section 6 pre-construction analysis of a whole query: queryable
/// views, per-connection FIND_REL reports, the queryable connections, and
/// V_r — the union of every queryable connection's relevant views.
struct QueryRelevance {
  std::vector<std::string> queryable_views;
  /// Connections that survive (no nonqueryable view), in query order.
  std::vector<Connection> queryable_connections;
  /// Connections dropped because they contain a nonqueryable view.
  std::vector<Connection> dropped_connections;
  /// FIND_REL report per connection (keyed by Connection::ToString()).
  std::map<std::string, FindRelReport> reports;
  /// V_r: the union of relevant views across queryable connections.
  std::set<std::string> relevant_union;

  std::string ToString() const;
};

/// `tracer` (optional): emits one "plan.find_rel" span per connection —
/// detail is the connection's ToString(), counters are the kernel size
/// and the number of relevant views — under a "plan.relevance" parent.
Result<QueryRelevance> AnalyzeQueryRelevance(
    const Query& query, const std::vector<SourceView>& views,
    const DomainMap& domains = DomainMap(),
    const AttributeSet& seeded_attributes = {},
    obs::Tracer* tracer = nullptr);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_FIND_REL_H_
