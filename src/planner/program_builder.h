#ifndef LIMCAP_PLANNER_PROGRAM_BUILDER_H_
#define LIMCAP_PLANNER_PROGRAM_BUILDER_H_

#include <string>
#include <vector>

#include "capability/source_view.h"
#include "common/result.h"
#include "datalog/ast.h"
#include "planner/domain_map.h"
#include "planner/query.h"
#include "relational/relation.h"

namespace limcap::planner {

using capability::SourceView;

/// Naming knobs for the generated program.
struct BuilderOptions {
  /// Name of the goal predicate holding the query answer.
  std::string goal_predicate = "ans";
  /// The alpha-predicate of view v is named v.name() + alpha_suffix; the
  /// default renders as the paper's v̂ ("v1^").
  std::string alpha_suffix = "^";
  /// When set, each connection additionally gets a tagged goal
  /// `ans$c<k>` (k = the connection's position in the query) fed by the
  /// same bodies as the main goal — per-connection provenance for the
  /// answers, read back with exec::PerConnectionAnswers.
  bool per_connection_goals = false;
  /// PlanQuery decomposes rules with more body atoms than this into
  /// chains of binary joins over deduplicated auxiliary predicates
  /// (supplementary relations). Without this, a k-view connection rule
  /// enumerates every join path — exponential in k on chain catalogs.
  /// The threshold leaves the paper's figures (bodies of ≤ 2 atoms)
  /// untouched. 0 disables decomposition.
  std::size_t max_rule_body_atoms = 3;
};

/// Builds the Datalog program Π(Q, V) of Section 3.1 from query `query`
/// and the adorned views `views`:
///
///  1. a connection rule per connection in Q (input attributes replaced by
///     their initial values; one rule per combination when an attribute
///     has several input values),
///  2. the alpha-rule and the domain rules of every view in `views`,
///  3. a fact rule per input assignment.
///
/// The returned program is safe (Proposition 3.1); its only EDB predicates
/// are the view predicates. Fails when a connection references a view not
/// present in `views` — when building the optimized Π(Q, V_r), pass a
/// query whose non-queryable connections were already dropped.
Result<datalog::Program> BuildProgram(const Query& query,
                                      const std::vector<SourceView>& views,
                                      const DomainMap& domains,
                                      const BuilderOptions& options = {});

/// Section 7.1, cached data: appends the fact rules for a cached tuple of
/// `view` — one alpha-predicate fact plus a domain fact per attribute.
Status AddCachedTupleRules(const SourceView& view, const relational::Row& row,
                           const DomainMap& domains,
                           const BuilderOptions& options,
                           datalog::Program* program);

/// Section 7.1, domain knowledge: appends the fact rule dom(value) for a
/// known member of `attribute`'s domain (e.g. the four known departments).
void AddDomainKnowledgeRule(const std::string& attribute, const Value& value,
                            const DomainMap& domains,
                            datalog::Program* program);

/// The alpha-predicate name of a view under `options`.
std::string AlphaPredicate(const SourceView& view,
                           const BuilderOptions& options);

/// The rule variable used for an attribute (the attribute name, prefixed
/// when it would not parse as a variable).
std::string AttributeVariable(const std::string& attribute);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_PROGRAM_BUILDER_H_
