#ifndef LIMCAP_PLANNER_HYPERGRAPH_H_
#define LIMCAP_PLANNER_HYPERGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "capability/source_view.h"
#include "planner/query.h"

namespace limcap::planner {

using capability::SourceView;

/// The hypergraph of a source-view catalog (paper Section 2, Figure 1):
/// each node is a global attribute, each hyperedge is a source view over
/// its attributes. Used to generate connections (Section 2.2, option 2 —
/// the universal-relation approach) and for catalog diagnostics.
class Hypergraph {
 public:
  explicit Hypergraph(const std::vector<SourceView>& views);

  const std::vector<SourceView>& views() const { return views_; }
  /// All attributes, sorted.
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Names of the views whose schema contains `attribute`.
  std::vector<std::string> ViewsContaining(const std::string& attribute) const;

  /// True when the sub-hypergraph induced by `view_names` is connected:
  /// any two of its views are linked by a chain of views sharing
  /// attributes. The empty set and singletons are connected.
  bool IsConnected(const std::set<std::string>& view_names) const;

  /// Partitions the whole catalog into maximal connected groups of views,
  /// each sorted; groups ordered by first view name.
  std::vector<std::vector<std::string>> ConnectedComponents() const;

  /// Graphviz rendering: attributes as circles, views as boxes, an edge
  /// between a view and each of its attributes (adornment shown on the
  /// edge label: 'b' or 'f' under the primary template).
  std::string ToDot() const;

 private:
  const SourceView* Find(const std::string& name) const;

  std::vector<SourceView> views_;
  std::vector<std::string> attributes_;
  std::map<std::string, std::vector<std::string>> views_by_attribute_;
};

/// Enumerates the minimal connections over `views` that cover
/// `required_attributes` (typically I(Q) ∪ O(Q)): sets T of views such
/// that every required attribute appears in some view of T, T is
/// connected in the hypergraph, and no proper subset of T qualifies.
/// Enumeration is by increasing |T| (so minimality is a subset check
/// against earlier results), capped by `max_connection_size` and
/// `max_connections`; views within each connection are sorted by name.
std::vector<Connection> FindMinimalConnections(
    const std::vector<SourceView>& views,
    const AttributeSet& required_attributes,
    std::size_t max_connection_size = 6, std::size_t max_connections = 64);

/// Universal-relation front door: builds a connection query from input
/// assignments and output attributes alone, generating the connections
/// with FindMinimalConnections. Fails when no connection covers the
/// attributes.
Result<Query> BuildQueryFromAttributes(
    const std::vector<SourceView>& views,
    std::vector<InputAssignment> inputs, std::vector<std::string> outputs,
    std::size_t max_connection_size = 6, std::size_t max_connections = 64);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_HYPERGRAPH_H_
