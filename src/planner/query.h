#ifndef LIMCAP_PLANNER_QUERY_H_
#define LIMCAP_PLANNER_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "capability/source_catalog.h"
#include "capability/source_view.h"
#include "common/result.h"
#include "common/value.h"
#include "planner/domain_map.h"

namespace limcap::planner {

using capability::AttributeSet;

/// One input assignment `attribute = constant` from the query's I list.
struct InputAssignment {
  std::string attribute;
  Value value;
};

/// A connection: a set of distinct source views (by name) interpreted as
/// their natural join (paper Section 2.2). Order is kept for display but
/// is semantically irrelevant.
class Connection {
 public:
  Connection() = default;
  explicit Connection(std::vector<std::string> view_names)
      : view_names_(std::move(view_names)) {}

  const std::vector<std::string>& view_names() const { return view_names_; }
  std::size_t size() const { return view_names_.size(); }
  bool ContainsView(const std::string& name) const;

  /// "{v1, v3}".
  std::string ToString() const;

  bool operator==(const Connection& other) const {
    return view_names_ == other.view_names_;
  }

 private:
  std::vector<std::string> view_names_;
};

/// A connection query Q = <I, O, C> (paper Section 2.2): input
/// assignments, output attributes, and connections linking them.
class Query {
 public:
  Query() = default;
  Query(std::vector<InputAssignment> inputs, std::vector<std::string> outputs,
        std::vector<Connection> connections)
      : inputs_(std::move(inputs)),
        outputs_(std::move(outputs)),
        connections_(std::move(connections)) {}

  const std::vector<InputAssignment>& inputs() const { return inputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const std::vector<Connection>& connections() const { return connections_; }

  /// I(Q): the set of input attributes.
  AttributeSet InputAttributes() const;
  /// O(Q): the set of output attributes.
  AttributeSet OutputAttributes() const;

  /// Values assigned to `attribute` in I, in list order.
  std::vector<Value> InputValuesFor(const std::string& attribute) const;

  /// Validates the query against a catalog: connections name registered
  /// views, views within a connection are distinct, I and O are disjoint,
  /// every output attribute appears in every connection (required for the
  /// connection rules to be safe), and input/output attributes exist in
  /// the catalog. An input attribute outside the catalog is accepted when
  /// `domains` maps it to the domain of some catalog attribute (a
  /// user-side attribute feeding a shared domain, e.g. Home -> city).
  Status Validate(const capability::SourceCatalog& catalog,
                  const DomainMap& domains = DomainMap()) const;

  /// "<{Song = t1}, {Price}, {{v1, v3}, ...}>".
  std::string ToString() const;

 private:
  std::vector<InputAssignment> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Connection> connections_;
};

/// A(T): the attributes of the views of connection `T`, resolved against
/// `catalog`. Fails on unknown views.
Result<AttributeSet> ConnectionAttributes(
    const Connection& connection, const capability::SourceCatalog& catalog);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_QUERY_H_
