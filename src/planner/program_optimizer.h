#ifndef LIMCAP_PLANNER_PROGRAM_OPTIMIZER_H_
#define LIMCAP_PLANNER_PROGRAM_OPTIMIZER_H_

#include <string>
#include <vector>

#include "capability/source_view.h"
#include "common/result.h"
#include "datalog/ast.h"
#include "planner/domain_map.h"
#include "planner/find_rel.h"
#include "planner/program_builder.h"
#include "planner/query.h"

namespace limcap::planner {

/// The outcome of useless-rule elimination (Section 6).
struct OptimizedProgram {
  datalog::Program program;
  std::vector<datalog::Rule> removed_rules;
};

/// Removes the useless rules of `program` (Section 6): repeatedly drops
/// any non-connection rule whose head predicate is used by no other rule
/// of the program, which converges to keeping exactly the rules whose head
/// is the goal or is reachable from the goal in the predicate dependency
/// graph. The answer of the program is unchanged.
OptimizedProgram RemoveUselessRules(const datalog::Program& program,
                                    const std::string& goal_predicate);

/// Decomposes every rule whose body exceeds `max_body_atoms` into a
/// left-deep chain of binary-join rules through auxiliary predicates
/// ("supplementary relations"): each auxiliary keeps exactly the
/// variables still needed by later atoms or the head, so set-semantics
/// deduplication collapses the join's path multiplicity. Semantics are
/// preserved; evaluation of long connection rules drops from exponential
/// path enumeration to polynomial frontier sizes. `max_body_atoms` < 2 is
/// treated as "disabled".
datalog::Program DecomposeWideRules(const datalog::Program& program,
                                    std::size_t max_body_atoms,
                                    const std::string& aux_prefix = "aux");

/// The full Section 6 pipeline, with each stage's output exposed (the
/// ablation bench measures the stages separately):
///   1. AnalyzeQueryRelevance: V_q, dropped connections, FIND_REL per
///      connection, V_r;
///   2. BuildProgram over only the relevant views V_r and the queryable
///      connections;
///   3. RemoveUselessRules.
struct PlanResult {
  QueryRelevance relevance;
  /// Π(Q, V): the unoptimized program over all views (for comparison).
  datalog::Program full_program;
  /// Π(Q, V_r) before dead-rule elimination.
  datalog::Program relevant_program;
  /// The final optimized program.
  datalog::Program optimized_program;
  std::vector<datalog::Rule> removed_rules;
};

/// `seeded_attributes`: see FindRelevantViews — attributes whose domains
/// hold out-of-band values (cached tuples, domain knowledge); they widen
/// queryability without shrinking kernels.
///
/// `tracer` (optional): emits a "plan" span covering the pipeline with
/// child spans for each stage — "plan.relevance" (with per-connection
/// "plan.find_rel" children), "plan.build", "plan.build_relevant", and
/// "plan.optimize" (counter: rules_removed). Null costs two branches.
Result<PlanResult> PlanQuery(
    const Query& query, const std::vector<SourceView>& views,
    const DomainMap& domains, const BuilderOptions& options = {},
    const capability::AttributeSet& seeded_attributes = {},
    obs::Tracer* tracer = nullptr);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_PROGRAM_OPTIMIZER_H_
