#include "planner/hypergraph.h"

#include <algorithm>

namespace limcap::planner {

Hypergraph::Hypergraph(const std::vector<SourceView>& views) : views_(views) {
  std::set<std::string> attribute_set;
  for (const SourceView& view : views_) {
    for (const std::string& attribute : view.schema().attributes()) {
      attribute_set.insert(attribute);
      views_by_attribute_[attribute].push_back(view.name());
    }
  }
  attributes_.assign(attribute_set.begin(), attribute_set.end());
}

const SourceView* Hypergraph::Find(const std::string& name) const {
  for (const SourceView& view : views_) {
    if (view.name() == name) return &view;
  }
  return nullptr;
}

std::vector<std::string> Hypergraph::ViewsContaining(
    const std::string& attribute) const {
  auto it = views_by_attribute_.find(attribute);
  return it == views_by_attribute_.end() ? std::vector<std::string>{}
                                         : it->second;
}

bool Hypergraph::IsConnected(const std::set<std::string>& view_names) const {
  if (view_names.size() <= 1) return true;
  // BFS over views, stepping through shared attributes.
  std::set<std::string> visited;
  std::vector<std::string> frontier = {*view_names.begin()};
  visited.insert(frontier.front());
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    const SourceView* view = Find(current);
    if (view == nullptr) continue;
    for (const std::string& attribute : view->schema().attributes()) {
      for (const std::string& neighbor : ViewsContaining(attribute)) {
        if (view_names.count(neighbor) > 0 &&
            visited.insert(neighbor).second) {
          frontier.push_back(neighbor);
        }
      }
    }
  }
  return visited.size() == view_names.size();
}

std::vector<std::vector<std::string>> Hypergraph::ConnectedComponents()
    const {
  std::set<std::string> remaining;
  for (const SourceView& view : views_) remaining.insert(view.name());
  std::vector<std::vector<std::string>> components;
  while (!remaining.empty()) {
    std::set<std::string> component;
    std::vector<std::string> frontier = {*remaining.begin()};
    component.insert(frontier.front());
    while (!frontier.empty()) {
      std::string current = frontier.back();
      frontier.pop_back();
      const SourceView* view = Find(current);
      for (const std::string& attribute : view->schema().attributes()) {
        for (const std::string& neighbor : ViewsContaining(attribute)) {
          if (remaining.count(neighbor) > 0 &&
              component.insert(neighbor).second) {
            frontier.push_back(neighbor);
          }
        }
      }
    }
    for (const std::string& name : component) remaining.erase(name);
    components.emplace_back(component.begin(), component.end());
  }
  std::sort(components.begin(), components.end());
  return components;
}

std::string Hypergraph::ToDot() const {
  std::string out = "graph catalog {\n";
  for (const std::string& attribute : attributes_) {
    out += "  \"" + attribute + "\" [shape=circle];\n";
  }
  for (const SourceView& view : views_) {
    out += "  \"" + view.name() + "\" [shape=box, label=\"" +
           view.ToString() + "\"];\n";
    for (std::size_t i = 0; i < view.schema().arity(); ++i) {
      out += "  \"" + view.name() + "\" -- \"" + view.schema().attribute(i) +
             "\" [label=\"" +
             (view.pattern().IsBound(i) ? std::string("b")
                                        : std::string("f")) +
             "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<Connection> FindMinimalConnections(
    const std::vector<SourceView>& views,
    const AttributeSet& required_attributes, std::size_t max_connection_size,
    std::size_t max_connections) {
  Hypergraph hypergraph(views);
  std::vector<Connection> found;
  std::vector<std::set<std::string>> found_sets;

  // Pre-filter: attributes nobody covers make the result empty.
  for (const std::string& attribute : required_attributes) {
    if (hypergraph.ViewsContaining(attribute).empty()) return found;
  }

  const std::size_t n = views.size();
  std::size_t size_cap = std::min(max_connection_size, n);
  // Enumerate subsets by increasing size; minimality is then a subset
  // check against already-found connections.
  std::vector<std::size_t> combination;
  for (std::size_t size = 1;
       size <= size_cap && found.size() < max_connections; ++size) {
    combination.assign(size, 0);
    for (std::size_t i = 0; i < size; ++i) combination[i] = i;
    while (true) {
      std::set<std::string> candidate;
      for (std::size_t i : combination) candidate.insert(views[i].name());

      bool superset_of_found = false;
      for (const std::set<std::string>& existing : found_sets) {
        if (std::includes(candidate.begin(), candidate.end(),
                          existing.begin(), existing.end())) {
          superset_of_found = true;
          break;
        }
      }
      if (!superset_of_found) {
        AttributeSet covered;
        for (std::size_t i : combination) {
          AttributeSet attrs = views[i].Attributes();
          covered.insert(attrs.begin(), attrs.end());
        }
        bool covers = std::includes(covered.begin(), covered.end(),
                                    required_attributes.begin(),
                                    required_attributes.end());
        if (covers && hypergraph.IsConnected(candidate)) {
          found.emplace_back(std::vector<std::string>(candidate.begin(),
                                                      candidate.end()));
          found_sets.push_back(std::move(candidate));
          if (found.size() >= max_connections) break;
        }
      }

      // Next combination (lexicographic): position i ranges up to
      // n - size + i.
      bool advanced = false;
      std::size_t i = size;
      while (i-- > 0) {
        if (combination[i] != i + n - size) {
          ++combination[i];
          for (std::size_t j = i + 1; j < size; ++j) {
            combination[j] = combination[j - 1] + 1;
          }
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
  }
  return found;
}

Result<Query> BuildQueryFromAttributes(const std::vector<SourceView>& views,
                                       std::vector<InputAssignment> inputs,
                                       std::vector<std::string> outputs,
                                       std::size_t max_connection_size,
                                       std::size_t max_connections) {
  AttributeSet required(outputs.begin(), outputs.end());
  for (const InputAssignment& input : inputs) {
    required.insert(input.attribute);
  }
  std::vector<Connection> connections = FindMinimalConnections(
      views, required, max_connection_size, max_connections);
  // A connection must cover every output for its rule to be safe; the
  // finder requires I ∪ O so this always holds here.
  if (connections.empty()) {
    return Status::NotFound(
        "no connection covers the requested attributes");
  }
  return Query(std::move(inputs), std::move(outputs),
               std::move(connections));
}

}  // namespace limcap::planner
