#include "planner/closure.h"

#include <algorithm>

namespace limcap::planner {

namespace {

std::vector<Adorned> ToAdorned(const std::vector<SourceView>& views) {
  std::vector<Adorned> out;
  out.reserve(views.size());
  for (const SourceView& view : views) {
    std::vector<Adorned> expanded = Adorned::FromView(view);
    out.insert(out.end(), expanded.begin(), expanded.end());
  }
  return out;
}

std::set<std::string> NamesOf(const std::vector<Adorned>& views) {
  std::set<std::string> names;
  for (const Adorned& view : views) names.insert(view.name);
  return names;
}

AttributeSet AttributesOf(const std::vector<Adorned>& views) {
  AttributeSet attributes;
  for (const Adorned& view : views) {
    AttributeSet all = view.All();
    attributes.insert(all.begin(), all.end());
  }
  return attributes;
}

bool IsSubset(const AttributeSet& inner, const AttributeSet& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

bool ClosureCoversAll(const AttributeSet& initial,
                      const std::vector<Adorned>& views) {
  return ComputeFClosure(initial, views).views == NamesOf(views);
}

}  // namespace

AttributeSet Adorned::All() const {
  AttributeSet all = bound;
  all.insert(free.begin(), free.end());
  return all;
}

std::vector<Adorned> Adorned::FromView(const SourceView& view) {
  return FromView(view, [](const std::string& a) { return a; });
}

FClosure ComputeFClosure(const AttributeSet& initial,
                         const std::vector<Adorned>& candidates) {
  FClosure closure;
  closure.bound_attributes = initial;
  std::vector<bool> added(candidates.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (added[i]) continue;
      const Adorned& view = candidates[i];
      if (IsSubset(view.bound, closure.bound_attributes)) {
        added[i] = true;
        changed = true;
        // Multi-template views appear as several same-named candidates;
        // record the view once.
        if (closure.views.insert(view.name).second) {
          closure.order.push_back(view.name);
        }
        // Every attribute of the view becomes bound (its tuples supply
        // values for both its bound and free attributes).
        AttributeSet attributes = view.All();
        closure.bound_attributes.insert(attributes.begin(), attributes.end());
      }
    }
  }
  return closure;
}

FClosure ComputeFClosure(const AttributeSet& initial,
                         const std::vector<SourceView>& candidates) {
  return ComputeFClosure(initial, ToAdorned(candidates));
}

bool IsIndependent(const AttributeSet& inputs,
                   const std::vector<SourceView>& connection_views) {
  return ClosureCoversAll(inputs, ToAdorned(connection_views));
}

Result<std::vector<std::string>> ExecutableSequence(
    const AttributeSet& inputs,
    const std::vector<SourceView>& connection_views) {
  std::vector<Adorned> adorned = ToAdorned(connection_views);
  FClosure closure = ComputeFClosure(inputs, adorned);
  if (closure.views != NamesOf(adorned)) {
    return Status::NotFound(
        "connection is not independent: no executable sequence exists");
  }
  return closure.order;
}

AttributeSet ComputeKernel(const AttributeSet& inputs,
                           const std::vector<Adorned>& connection_views) {
  AttributeSet kernel = AttributesOf(connection_views);
  for (const std::string& input : inputs) kernel.erase(input);

  // Greedy shrink in attribute order. Removal feasibility is monotone in
  // the remaining set, so one pass yields a minimal kernel.
  for (auto it = kernel.begin(); it != kernel.end();) {
    AttributeSet without = kernel;
    without.erase(*it);
    AttributeSet start = without;
    start.insert(inputs.begin(), inputs.end());
    if (ClosureCoversAll(start, connection_views)) {
      it = kernel.erase(it);
    } else {
      ++it;
    }
  }
  return kernel;
}

AttributeSet ComputeKernel(const AttributeSet& inputs,
                           const std::vector<SourceView>& connection_views) {
  return ComputeKernel(inputs, ToAdorned(connection_views));
}

std::vector<AttributeSet> AllKernels(
    const AttributeSet& inputs,
    const std::vector<SourceView>& connection_views) {
  std::vector<Adorned> adorned = ToAdorned(connection_views);
  AttributeSet candidate_set = AttributesOf(adorned);
  for (const std::string& input : inputs) candidate_set.erase(input);
  std::vector<std::string> candidates(candidate_set.begin(),
                                      candidate_set.end());
  if (candidates.size() > 20) {
    // Exhaustive search is infeasible; return the greedy kernel.
    return {ComputeKernel(inputs, adorned)};
  }

  std::vector<AttributeSet> satisfying;
  const std::size_t total = std::size_t{1} << candidates.size();
  for (std::size_t mask = 0; mask < total; ++mask) {
    AttributeSet subset;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (mask & (std::size_t{1} << i)) subset.insert(candidates[i]);
    }
    AttributeSet start = subset;
    start.insert(inputs.begin(), inputs.end());
    if (ClosureCoversAll(start, adorned)) {
      satisfying.push_back(std::move(subset));
    }
  }
  // Keep the minimal satisfying sets.
  std::vector<AttributeSet> kernels;
  for (const AttributeSet& a : satisfying) {
    bool minimal = true;
    for (const AttributeSet& b : satisfying) {
      if (b.size() < a.size() && IsSubset(b, a)) {
        minimal = false;
        break;
      }
    }
    if (minimal) kernels.push_back(a);
  }
  std::sort(kernels.begin(), kernels.end());
  return kernels;
}

bool IsBFChain(const std::vector<SourceView>& chain) {
  if (chain.empty()) return false;
  // For multi-template views, "contributes bindings" is taken over any
  // pair of templates: some template of the first frees an attribute some
  // template of the second binds.
  auto union_free = [](const SourceView& view) {
    AttributeSet out;
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      AttributeSet free_attrs = view.FreeAttributes(t);
      out.insert(free_attrs.begin(), free_attrs.end());
    }
    return out;
  };
  auto union_bound = [](const SourceView& view) {
    AttributeSet out;
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      AttributeSet bound_attrs = view.BoundAttributes(t);
      out.insert(bound_attrs.begin(), bound_attrs.end());
    }
    return out;
  };
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    AttributeSet free_attrs = union_free(chain[i]);
    AttributeSet bound_next = union_bound(chain[i + 1]);
    bool overlap = false;
    for (const std::string& attribute : free_attrs) {
      if (bound_next.count(attribute) > 0) {
        overlap = true;
        break;
      }
    }
    if (!overlap) return false;
  }
  return true;
}

std::set<std::string> ComputeBClosure(
    const std::string& attribute, const std::vector<Adorned>& queryable_views) {
  // Bound attributes per view name, unioned across templates. When a
  // multi-template view joins the closure we add every template's bound
  // set — a conservative over-approximation (relevance may keep an extra
  // view, never drop a useful one).
  std::map<std::string, AttributeSet> bound_by_name;
  for (const Adorned& view : queryable_views) {
    bound_by_name[view.name].insert(view.bound.begin(), view.bound.end());
  }

  std::set<std::string> closure;
  AttributeSet closure_bound;
  auto join = [&](const std::string& name) {
    closure.insert(name);
    const AttributeSet& bound = bound_by_name[name];
    closure_bound.insert(bound.begin(), bound.end());
  };

  // Seed: queryable views with a template taking `attribute` as free.
  for (const Adorned& view : queryable_views) {
    if (view.free.count(attribute) > 0) join(view.name);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Adorned& view : queryable_views) {
      if (closure.count(view.name) > 0) continue;
      bool overlaps = std::any_of(
          view.free.begin(), view.free.end(),
          [&](const std::string& a) { return closure_bound.count(a) > 0; });
      if (overlaps) {
        join(view.name);
        changed = true;
      }
    }
  }
  return closure;
}

std::set<std::string> ComputeBClosure(
    const std::string& attribute,
    const std::vector<SourceView>& queryable_views) {
  return ComputeBClosure(attribute, ToAdorned(queryable_views));
}

std::set<std::string> ComputeBClosure(
    const AttributeSet& attributes,
    const std::vector<Adorned>& queryable_views) {
  std::set<std::string> closure;
  for (const std::string& attribute : attributes) {
    std::set<std::string> single = ComputeBClosure(attribute, queryable_views);
    closure.insert(single.begin(), single.end());
  }
  return closure;
}

std::set<std::string> ComputeBClosure(
    const AttributeSet& attributes,
    const std::vector<SourceView>& queryable_views) {
  return ComputeBClosure(attributes, ToAdorned(queryable_views));
}

}  // namespace limcap::planner
