#ifndef LIMCAP_PLANNER_DOMAIN_MAP_H_
#define LIMCAP_PLANNER_DOMAIN_MAP_H_

#include <map>
#include <string>

namespace limcap::planner {

/// Maps each global attribute to the name of its domain predicate
/// (paper Section 3.1). By default every attribute gets its own domain
/// named "dom" + attribute (the paper's Figure 4 style: domA, domB, ...).
/// Attributes may share a domain (Section 3's generality: grouping
/// attributes with the same domain); Section 5's analysis assumes the
/// default one-domain-per-attribute setting.
///
/// Note the contrast the paper draws with Duschka/Levy [7]: there a single
/// domain predicate serves every attribute; here domains are separate, so
/// a Song value is never used to bind a Cd argument (binding assumption 1,
/// Section 3.2).
class DomainMap {
 public:
  DomainMap() = default;

  /// Assigns `attribute` to domain predicate `domain`.
  void SetDomain(const std::string& attribute, std::string domain) {
    overrides_[attribute] = std::move(domain);
  }

  /// The domain predicate name for `attribute`.
  std::string DomainOf(const std::string& attribute) const {
    auto it = overrides_.find(attribute);
    if (it != overrides_.end()) return it->second;
    return "dom" + attribute;
  }

  /// True when the two attributes share a domain.
  bool SameDomain(const std::string& a, const std::string& b) const {
    return DomainOf(a) == DomainOf(b);
  }

  /// The explicit attribute→domain assignments, sorted by attribute (the
  /// default "dom" + attribute mapping is not materialized here). Used by
  /// the plan cache to fingerprint the mediator's domain grouping.
  const std::map<std::string, std::string>& overrides() const {
    return overrides_;
  }

 private:
  std::map<std::string, std::string> overrides_;
};

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_DOMAIN_MAP_H_
