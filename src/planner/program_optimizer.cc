#include "planner/program_optimizer.h"

#include <set>
#include <unordered_set>

#include "datalog/dependency_graph.h"

namespace limcap::planner {

datalog::Program DecomposeWideRules(const datalog::Program& program,
                                    std::size_t max_body_atoms,
                                    const std::string& aux_prefix) {
  if (max_body_atoms < 2) return program;
  datalog::Program out;
  std::size_t rule_counter = 0;
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.body.size() <= max_body_atoms) {
      out.AddRule(rule);
      continue;
    }
    const std::size_t rule_id = rule_counter++;
    // Variables of atoms i..end, precomputed suffix-wise.
    std::vector<std::unordered_set<std::string>> needed_after(
        rule.body.size() + 1);
    for (std::size_t i = rule.body.size(); i-- > 0;) {
      needed_after[i] = needed_after[i + 1];
      for (const datalog::Term& term : rule.body[i].terms) {
        if (term.is_variable()) needed_after[i].insert(term.var());
      }
    }
    std::unordered_set<std::string> head_vars;
    for (const datalog::Term& term : rule.head.terms) {
      if (term.is_variable()) head_vars.insert(term.var());
    }

    datalog::Atom current = rule.body[0];
    for (std::size_t i = 1; i < rule.body.size(); ++i) {
      datalog::Rule step;
      step.body = {current, rule.body[i]};
      if (i + 1 == rule.body.size()) {
        step.head = rule.head;
      } else {
        // Keep the variables bound so far that the head or a later atom
        // still needs, in first-occurrence order for determinism.
        datalog::Atom aux;
        aux.predicate = aux_prefix + "_" + std::to_string(rule_id) + "_" +
                        std::to_string(i);
        std::unordered_set<std::string> emitted;
        for (const datalog::Atom& atom : step.body) {
          for (const datalog::Term& term : atom.terms) {
            if (!term.is_variable()) continue;
            const std::string& var = term.var();
            if (emitted.count(var) > 0) continue;
            if (head_vars.count(var) > 0 ||
                needed_after[i + 1].count(var) > 0) {
              emitted.insert(var);
              aux.terms.push_back(datalog::Term::Var(var));
            }
          }
        }
        step.head = aux;
      }
      current = step.head;
      out.AddRule(std::move(step));
    }
  }
  return out;
}

OptimizedProgram RemoveUselessRules(const datalog::Program& program,
                                    const std::string& goal_predicate) {
  // Iterating the paper's removal step to fixpoint keeps exactly the
  // rules whose head predicate is reachable from the goal — or from a
  // tagged per-connection goal ("ans$c0", ...), which are output
  // predicates in their own right. The dependency graph interns
  // predicates, so reachability is a bitmask union over dense ids rather
  // than string-set merges.
  datalog::DependencyGraph graph(program);
  std::vector<bool> reachable(graph.predicates().size(), false);
  auto absorb = [&](datalog::PredicateId start) {
    if (start == datalog::kNoPredicate) return;
    std::vector<bool> mask = graph.ReachableMask(start);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) reachable[i] = true;
    }
  };
  absorb(graph.Find(goal_predicate));
  const std::string tagged_prefix = goal_predicate + "$";
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.head.predicate.rfind(tagged_prefix, 0) == 0) {
      absorb(graph.Find(rule.head.predicate));
    }
  }

  OptimizedProgram out;
  for (const datalog::Rule& rule : program.rules()) {
    datalog::PredicateId head = graph.Find(rule.head.predicate);
    if (head != datalog::kNoPredicate && reachable[head]) {
      out.program.AddRule(rule);
    } else {
      out.removed_rules.push_back(rule);
    }
  }
  return out;
}

Result<PlanResult> PlanQuery(const Query& query,
                             const std::vector<SourceView>& views,
                             const DomainMap& domains,
                             const BuilderOptions& options,
                             const capability::AttributeSet& seeded_attributes,
                             obs::Tracer* tracer) {
  obs::ScopedSpan plan_span(tracer, "plan");
  PlanResult result;
  LIMCAP_ASSIGN_OR_RETURN(
      result.relevance,
      AnalyzeQueryRelevance(query, views, domains, seeded_attributes,
                            tracer));
  {
    obs::ScopedSpan build_span(tracer, "plan.build");
    LIMCAP_ASSIGN_OR_RETURN(result.full_program,
                            BuildProgram(query, views, domains, options));
    result.full_program =
        DecomposeWideRules(result.full_program, options.max_rule_body_atoms);
    build_span.Counter("rules",
                       static_cast<double>(result.full_program.rules().size()));
  }

  // Π(Q, V_r): only the queryable connections, only the relevant views.
  Query trimmed(query.inputs(), query.outputs(),
                result.relevance.queryable_connections);
  std::vector<SourceView> relevant_views;
  for (const SourceView& view : views) {
    if (result.relevance.relevant_union.count(view.name()) > 0) {
      relevant_views.push_back(view);
    }
  }
  if (trimmed.connections().empty()) {
    // No queryable connection: the obtainable answer is empty and the
    // optimized program is empty.
    result.relevant_program = datalog::Program();
    result.optimized_program = datalog::Program();
    return result;
  }
  {
    obs::ScopedSpan build_span(tracer, "plan.build_relevant");
    LIMCAP_ASSIGN_OR_RETURN(
        result.relevant_program,
        BuildProgram(trimmed, relevant_views, domains, options));
  }

  obs::ScopedSpan optimize_span(tracer, "plan.optimize");
  OptimizedProgram optimized =
      RemoveUselessRules(result.relevant_program, options.goal_predicate);
  result.optimized_program = DecomposeWideRules(
      std::move(optimized.program), options.max_rule_body_atoms);
  result.removed_rules = std::move(optimized.removed_rules);
  optimize_span.Counter("rules_removed",
                        static_cast<double>(result.removed_rules.size()));
  return result;
}

}  // namespace limcap::planner
