#include "planner/witness.h"

#include "planner/closure.h"

namespace limcap::planner {

Result<NonIndependenceWitness> ConstructNonIndependenceWitness(
    const Query& query, const Connection& connection,
    const std::vector<SourceView>& views) {
  std::vector<SourceView> connection_views;
  for (const std::string& name : connection.view_names()) {
    bool found = false;
    for (const SourceView& view : views) {
      if (view.name() == name) {
        connection_views.push_back(view);
        found = true;
      }
    }
    if (!found) {
      return Status::InvalidArgument("connection references unknown view: " +
                                     name);
    }
  }
  FClosure closure =
      ComputeFClosure(query.InputAttributes(), connection_views);
  if (closure.views.size() == connection_views.size()) {
    return Status::InvalidArgument(
        "connection " + connection.ToString() +
        " is independent; by Theorem 4.1 no witness instance exists");
  }

  NonIndependenceWitness witness;
  for (const SourceView& view : connection_views) {
    relational::Relation relation(view.schema());
    relational::Row row;
    for (const std::string& attribute : view.schema().attributes()) {
      row.push_back(Value::String("w_" + attribute));
    }
    relation.InsertUnsafe(std::move(row));
    witness.data.emplace(view.name(), std::move(relation));
    if (!closure.Contains(view.name())) {
      witness.unreachable_views.push_back(view.name());
    }
  }

  // Re-anchor the query's input constants at the witness values so the
  // witness tuple satisfies the selection.
  std::vector<InputAssignment> inputs;
  for (const InputAssignment& input : query.inputs()) {
    inputs.push_back({input.attribute, Value::String("w_" + input.attribute)});
  }
  witness.query = Query(std::move(inputs), query.outputs(), {connection});
  return witness;
}

}  // namespace limcap::planner
