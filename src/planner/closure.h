#ifndef LIMCAP_PLANNER_CLOSURE_H_
#define LIMCAP_PLANNER_CLOSURE_H_

#include <set>
#include <string>
#include <vector>

#include "capability/source_view.h"
#include "planner/query.h"

namespace limcap::planner {

using capability::SourceView;

/// The abstract input of the closure algorithms: a named view reduced to
/// its bound / free sets. For the paper's Section 5 setting these sets
/// hold attribute names; when a DomainMap groups attributes (Section 3's
/// shared domains), FIND_REL maps attributes to domain names first —
/// binding flow follows domains, so the closures must too. `bound` and
/// `free` may overlap after such mapping (one attribute of a view bound,
/// another with the same domain free).
struct Adorned {
  std::string name;
  AttributeSet bound;  ///< B(v): names that must be bound to query v
  AttributeSet free;   ///< F(v): names v can supply new values for

  /// A(v) = bound ∪ free.
  AttributeSet All() const;

  /// Reduces a source view to its attribute-level adornments — one
  /// Adorned per template, all sharing the view's name. The closure
  /// algorithms treat same-named entries as alternatives: a view joins a
  /// closure when any of its templates qualifies.
  static std::vector<Adorned> FromView(const SourceView& view);
  /// Same, mapped to domain space under `map_name` (any callable
  /// std::string -> std::string).
  template <typename Fn>
  static std::vector<Adorned> FromView(const SourceView& view, Fn map_name) {
    std::vector<Adorned> out;
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      Adorned adorned;
      adorned.name = view.name();
      for (const std::string& a : view.BoundAttributes(t)) {
        adorned.bound.insert(map_name(a));
      }
      for (const std::string& a : view.FreeAttributes(t)) {
        adorned.free.insert(map_name(a));
      }
      out.push_back(std::move(adorned));
    }
    return out;
  }
};

/// The result of a forward-closure computation (paper Definition 4.1).
struct FClosure {
  /// Views added to the closure, in addition order. This order is an
  /// executable sequence: each view's binding requirements are satisfied
  /// by the initial attributes plus the views before it.
  std::vector<std::string> order;
  /// The closure as a set of view names.
  std::set<std::string> views;
  /// All attributes bound at the end: the initial set X plus every
  /// attribute of every view in the closure (a superset of the paper's
  /// A(f-closure(X, W)) by the initial X).
  AttributeSet bound_attributes;

  bool Contains(const std::string& view) const {
    return views.count(view) > 0;
  }
};

/// f-closure(X, W): the views of `candidates` whose binding requirements
/// can eventually be satisfied starting from the attributes in `initial`,
/// using only views in `candidates`. Deterministic: each round scans
/// `candidates` in order and admits every view whose requirements are met.
FClosure ComputeFClosure(const AttributeSet& initial,
                         const std::vector<SourceView>& candidates);
FClosure ComputeFClosure(const AttributeSet& initial,
                         const std::vector<Adorned>& candidates);

/// True when connection views `connection_views` form an independent
/// connection for initial bindings `inputs` (Section 4.2):
/// f-closure(I(Q), T) = T.
bool IsIndependent(const AttributeSet& inputs,
                   const std::vector<SourceView>& connection_views);

/// The executable sequence witnessing independence (every view's B(v) is
/// covered by I(Q) plus all attributes of earlier views), or NotFound when
/// the connection is not independent.
Result<std::vector<std::string>> ExecutableSequence(
    const AttributeSet& inputs,
    const std::vector<SourceView>& connection_views);

/// A kernel of connection T (Definition 5.1): a minimal K ⊆ A(T) − I(Q)
/// with f-closure(K ∪ I(Q), T) = T. Computed by shrinking A(T) − I(Q)
/// greedily in attribute order; deterministic. The empty set is returned
/// exactly when the connection is independent.
AttributeSet ComputeKernel(const AttributeSet& inputs,
                           const std::vector<SourceView>& connection_views);
AttributeSet ComputeKernel(const AttributeSet& inputs,
                           const std::vector<Adorned>& connection_views);

/// Every kernel of the connection, by exhaustive minimal-subset search —
/// exponential in |A(T) − I(Q)|, intended for analysis and tests of
/// Lemma 5.3 (all kernels share one backward-closure). Kernels are sorted.
std::vector<AttributeSet> AllKernels(
    const AttributeSet& inputs,
    const std::vector<SourceView>& connection_views);

/// True when `chain` is a BF-chain (Definition 5.2): for every adjacent
/// pair, the free attributes of the first overlap the bound attributes of
/// the second.
bool IsBFChain(const std::vector<SourceView>& chain);

/// b-closure(A) (Definition 5.3): the queryable views backtrackable from
/// attribute `attribute` along BF-chains in reverse — seeded with the
/// views taking `attribute` as a free attribute, then closed under
/// "F(v) ∩ B(w) ≠ ∅ for some w already in the closure".
std::set<std::string> ComputeBClosure(
    const std::string& attribute,
    const std::vector<SourceView>& queryable_views);
std::set<std::string> ComputeBClosure(
    const std::string& attribute, const std::vector<Adorned>& queryable_views);

/// b-closure(X) = ∪_{A ∈ X} b-closure(A).
std::set<std::string> ComputeBClosure(
    const AttributeSet& attributes,
    const std::vector<SourceView>& queryable_views);
std::set<std::string> ComputeBClosure(
    const AttributeSet& attributes,
    const std::vector<Adorned>& queryable_views);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_CLOSURE_H_
