#include "planner/query.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "datalog/ast.h"

namespace limcap::planner {

bool Connection::ContainsView(const std::string& name) const {
  return std::find(view_names_.begin(), view_names_.end(), name) !=
         view_names_.end();
}

std::string Connection::ToString() const {
  return "{" + Join(view_names_, ", ") + "}";
}

AttributeSet Query::InputAttributes() const {
  AttributeSet out;
  for (const InputAssignment& input : inputs_) out.insert(input.attribute);
  return out;
}

AttributeSet Query::OutputAttributes() const {
  return AttributeSet(outputs_.begin(), outputs_.end());
}

std::vector<Value> Query::InputValuesFor(const std::string& attribute) const {
  std::vector<Value> values;
  for (const InputAssignment& input : inputs_) {
    if (input.attribute == attribute) values.push_back(input.value);
  }
  return values;
}

Status Query::Validate(const capability::SourceCatalog& catalog,
                       const DomainMap& domains) const {
  AttributeSet catalog_attributes = catalog.AllAttributes();
  AttributeSet input_attributes = InputAttributes();

  for (const InputAssignment& input : inputs_) {
    if (catalog_attributes.count(input.attribute) > 0) continue;
    // Accept a user-side attribute that feeds a shared domain.
    bool shares_domain = false;
    for (const std::string& attribute : catalog_attributes) {
      if (domains.SameDomain(input.attribute, attribute)) {
        shares_domain = true;
        break;
      }
    }
    if (!shares_domain) {
      return Status::InvalidArgument(
          "input attribute not in any view (and not sharing a domain with "
          "one): " +
          input.attribute);
    }
  }
  std::set<std::string> output_set;
  for (const std::string& output : outputs_) {
    if (catalog_attributes.count(output) == 0) {
      return Status::InvalidArgument("output attribute not in any view: " +
                                     output);
    }
    if (!output_set.insert(output).second) {
      return Status::InvalidArgument("duplicate output attribute: " + output);
    }
    if (input_attributes.count(output) > 0) {
      return Status::InvalidArgument(
          "attribute is both input and output: " + output);
    }
  }
  if (connections_.empty()) {
    return Status::InvalidArgument("query has no connections");
  }
  for (const Connection& connection : connections_) {
    if (connection.size() == 0) {
      return Status::InvalidArgument("empty connection");
    }
    std::set<std::string> seen;
    for (const std::string& name : connection.view_names()) {
      if (!catalog.Contains(name)) {
        return Status::InvalidArgument("connection names unknown view: " +
                                       name);
      }
      if (!seen.insert(name).second) {
        return Status::InvalidArgument(
            "connection repeats view (connections are sets of distinct "
            "views): " +
            name);
      }
    }
    LIMCAP_ASSIGN_OR_RETURN(AttributeSet attrs,
                            ConnectionAttributes(connection, catalog));
    for (const std::string& output : outputs_) {
      if (attrs.count(output) == 0) {
        return Status::InvalidArgument(
            "output attribute " + output + " does not appear in connection " +
            connection.ToString());
      }
    }
  }
  return Status::OK();
}

std::string Query::ToString() const {
  // Values render in re-parseable form (quoted when not identifier-safe)
  // so ToString round-trips through ParseQuery.
  std::string inputs = JoinMapped(
      inputs_, ", ", [](const InputAssignment& input) {
        return input.attribute + " = " +
               datalog::Term::Constant(input.value).ToString();
      });
  std::string connections = JoinMapped(
      connections_, ", ",
      [](const Connection& connection) { return connection.ToString(); });
  return "<{" + inputs + "}, {" + Join(outputs_, ", ") + "}, {" + connections +
         "}>";
}

Result<AttributeSet> ConnectionAttributes(
    const Connection& connection, const capability::SourceCatalog& catalog) {
  AttributeSet out;
  for (const std::string& name : connection.view_names()) {
    LIMCAP_ASSIGN_OR_RETURN(const capability::SourceView* view,
                            catalog.FindView(name));
    AttributeSet attrs = view->Attributes();
    out.insert(attrs.begin(), attrs.end());
  }
  return out;
}

}  // namespace limcap::planner
