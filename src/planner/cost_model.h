#ifndef LIMCAP_PLANNER_COST_MODEL_H_
#define LIMCAP_PLANNER_COST_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "capability/source_catalog.h"
#include "capability/source_view.h"
#include "common/result.h"
#include "planner/domain_map.h"
#include "planner/query.h"

namespace limcap::planner {

/// Per-view statistics the estimator consumes — the usual catalog
/// statistics (cardinality, per-attribute distinct counts).
struct ViewStats {
  std::size_t tuple_count = 0;
  std::map<std::string, std::size_t> distinct_values;
};

/// Computes exact statistics from a view's extent.
ViewStats CollectStats(const capability::SourceView& view,
                       const relational::Relation& data);

/// Exact statistics for every InMemorySource in the catalog; fails on
/// other source types (real deployments would import estimates instead).
Result<std::map<std::string, ViewStats>> CollectCatalogStats(
    const capability::SourceCatalog& catalog);

/// The estimator's output.
struct CostEstimate {
  /// Estimated count of obtainable distinct values per domain predicate.
  std::map<std::string, double> domain_values;
  /// Estimated source queries issued per view over the whole evaluation
  /// (the paper's cost unit: source accesses).
  std::map<std::string, double> source_queries;
  /// Estimated obtainable tuples per view.
  std::map<std::string, double> tuples_fetched;
  double total_queries = 0;
  /// Fixpoint rounds the estimation ran.
  std::size_t iterations = 0;

  std::string ToString() const;
};

/// Analytically predicts the cost of the Section 3.3 source-driven
/// evaluation without touching any source, by running the same fixpoint
/// the evaluator runs — over cardinalities instead of values:
///
///  * a domain's obtainable-value count starts from the query's input
///    assignments (plus `seeded_values` for cached data),
///  * a view is queried once per combination of its bound attributes'
///    obtainable values: Q_v = Π k(dom(a)),
///  * a fraction ≈ Π min(1, k/U) of the view's tuples becomes obtainable
///    (uniformity: obtained values are uniform over the domain universe U,
///    taken as the max distinct count over the catalog),
///  * an obtained tuple set of size T contributes ≈ D·(1 − e^{−T/D})
///    distinct values of a free attribute with D distinct values
///    (occupancy), and contributions union as occupancy over U.
///
/// The fixpoint is monotone and bounded, so it converges; `epsilon` stops
/// it early. Estimates are heuristic (containment + uniformity
/// assumptions — the standard System-R-style caveats) and are meant for
/// plan-level decisions such as "is the maximal answer affordable or
/// should a budget be set" (Section 7.2).
CostEstimate EstimateExecution(
    const Query& query, const std::vector<capability::SourceView>& views,
    const DomainMap& domains, const std::map<std::string, ViewStats>& stats,
    const std::map<std::string, double>& seeded_values = {},
    std::size_t max_iterations = 200, double epsilon = 1e-6);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_COST_MODEL_H_
