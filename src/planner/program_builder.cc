#include "planner/program_builder.h"

#include <cctype>
#include <map>

namespace limcap::planner {

namespace {

using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

/// The alpha-rule / domain-rule body shared by one template's rules:
/// domain atoms for the template's bound positions followed by the EDB
/// view atom.
std::vector<Atom> ViewRuleBody(const SourceView& view,
                               std::size_t template_index,
                               const DomainMap& domains) {
  std::vector<Atom> body;
  for (std::size_t i :
       view.templates()[template_index].BoundPositions()) {
    const std::string& attribute = view.schema().attribute(i);
    body.push_back(Atom{domains.DomainOf(attribute),
                        {Term::Var(AttributeVariable(attribute))}});
  }
  Atom edb;
  edb.predicate = view.name();
  for (const std::string& attribute : view.schema().attributes()) {
    edb.terms.push_back(Term::Var(AttributeVariable(attribute)));
  }
  body.push_back(std::move(edb));
  return body;
}

}  // namespace

std::string AlphaPredicate(const SourceView& view,
                           const BuilderOptions& options) {
  return view.name() + options.alpha_suffix;
}

std::string AttributeVariable(const std::string& attribute) {
  if (!attribute.empty() &&
      (std::isupper(static_cast<unsigned char>(attribute[0])) ||
       attribute[0] == '_')) {
    return attribute;
  }
  return "X_" + attribute;
}

Result<Program> BuildProgram(const Query& query,
                             const std::vector<SourceView>& views,
                             const DomainMap& domains,
                             const BuilderOptions& options) {
  std::map<std::string, const SourceView*> by_name;
  for (const SourceView& view : views) by_name.emplace(view.name(), &view);

  Program program;

  // Input values per attribute; an attribute listed with several values
  // yields one connection rule per combination.
  std::map<std::string, std::vector<Value>> input_values;
  for (const InputAssignment& input : query.inputs()) {
    input_values[input.attribute].push_back(input.value);
  }

  // Step 1: connection rules.
  std::size_t connection_index = 0;
  for (const Connection& connection : query.connections()) {
    // Resolve the connection's views.
    std::vector<const SourceView*> connection_views;
    for (const std::string& name : connection.view_names()) {
      auto it = by_name.find(name);
      if (it == by_name.end()) {
        return Status::InvalidArgument(
            "connection " + connection.ToString() +
            " references view not passed to the builder: " + name);
      }
      connection_views.push_back(it->second);
    }
    // Input attributes that actually occur in this connection, with their
    // value lists; enumerate every combination.
    std::vector<std::pair<std::string, std::vector<Value>>> choices;
    for (const auto& [attribute, values] : input_values) {
      bool occurs = false;
      for (const SourceView* view : connection_views) {
        if (view->schema().Contains(attribute)) {
          occurs = true;
          break;
        }
      }
      if (occurs) choices.emplace_back(attribute, values);
    }
    std::vector<std::size_t> pick(choices.size(), 0);
    while (true) {
      std::map<std::string, Value> chosen;
      for (std::size_t i = 0; i < choices.size(); ++i) {
        chosen.emplace(choices[i].first, choices[i].second[pick[i]]);
      }
      Rule rule;
      rule.head.predicate = options.goal_predicate;
      for (const std::string& output : query.outputs()) {
        rule.head.terms.push_back(Term::Var(AttributeVariable(output)));
      }
      for (const SourceView* view : connection_views) {
        Atom atom;
        atom.predicate = AlphaPredicate(*view, options);
        for (const std::string& attribute : view->schema().attributes()) {
          auto it = chosen.find(attribute);
          if (it != chosen.end()) {
            atom.terms.push_back(Term::Constant(it->second));
          } else {
            atom.terms.push_back(Term::Var(AttributeVariable(attribute)));
          }
        }
        rule.body.push_back(std::move(atom));
      }
      if (options.per_connection_goals) {
        // Tagged twin of the rule for per-connection provenance.
        Rule tagged = rule;
        tagged.head.predicate = options.goal_predicate + "$c" +
                                std::to_string(connection_index);
        program.AddRule(std::move(tagged));
      }
      program.AddRule(std::move(rule));
      // Advance the combination odometer.
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < choices[i].second.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
    ++connection_index;
  }

  // Step 2: alpha-rule and domain rules per view — one group per
  // template (the single-template case is the paper's Section 3.1).
  for (const SourceView& view : views) {
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      std::vector<Atom> body = ViewRuleBody(view, t, domains);

      Rule alpha;
      alpha.head.predicate = AlphaPredicate(view, options);
      for (const std::string& attribute : view.schema().attributes()) {
        alpha.head.terms.push_back(Term::Var(AttributeVariable(attribute)));
      }
      alpha.body = body;
      program.AddRule(std::move(alpha));

      for (std::size_t i : view.templates()[t].FreePositions()) {
        const std::string& attribute = view.schema().attribute(i);
        Rule domain_rule;
        domain_rule.head.predicate = domains.DomainOf(attribute);
        domain_rule.head.terms.push_back(
            Term::Var(AttributeVariable(attribute)));
        domain_rule.body = body;
        program.AddRule(std::move(domain_rule));
      }
    }
  }

  // Step 3: fact rules for the input assignments.
  for (const InputAssignment& input : query.inputs()) {
    Rule fact;
    fact.head.predicate = domains.DomainOf(input.attribute);
    fact.head.terms.push_back(Term::Constant(input.value));
    program.AddRule(std::move(fact));
  }

  return program;
}

Status AddCachedTupleRules(const SourceView& view, const relational::Row& row,
                           const DomainMap& domains,
                           const BuilderOptions& options,
                           datalog::Program* program) {
  if (row.size() != view.schema().arity()) {
    return Status::InvalidArgument(
        "cached tuple arity " + std::to_string(row.size()) +
        " != view arity " + std::to_string(view.schema().arity()) + " for " +
        view.name());
  }
  Rule alpha_fact;
  alpha_fact.head.predicate = AlphaPredicate(view, options);
  for (const Value& value : row) {
    alpha_fact.head.terms.push_back(datalog::Term::Constant(value));
  }
  program->AddRule(std::move(alpha_fact));
  for (std::size_t i = 0; i < row.size(); ++i) {
    AddDomainKnowledgeRule(view.schema().attribute(i), row[i], domains,
                           program);
  }
  return Status::OK();
}

void AddDomainKnowledgeRule(const std::string& attribute, const Value& value,
                            const DomainMap& domains,
                            datalog::Program* program) {
  Rule fact;
  fact.head.predicate = domains.DomainOf(attribute);
  fact.head.terms.push_back(datalog::Term::Constant(value));
  program->AddRule(std::move(fact));
}

}  // namespace limcap::planner
