#ifndef LIMCAP_PLANNER_WITNESS_H_
#define LIMCAP_PLANNER_WITNESS_H_

#include <map>
#include <string>
#include <vector>

#include "capability/source_view.h"
#include "common/result.h"
#include "planner/query.h"
#include "relational/relation.h"

namespace limcap::planner {

using capability::SourceView;

/// The constructive content of Theorem 4.2: for a *non-independent*
/// connection T there exists an instance of T's source relations on which
/// some complete-answer tuples cannot be obtained using only T's views.
struct NonIndependenceWitness {
  /// One relation per view of the connection. Each holds a single tuple
  /// assigning every attribute A the value "w_A", so the natural join is
  /// the single full-width tuple.
  std::map<std::string, relational::Relation> data;
  /// The original query with its input constants replaced by the witness
  /// values (so the witness tuple passes the input selection) and its
  /// connections restricted to T.
  Query query;
  /// The views of T that can never be queried from I(Q) within T — the
  /// reason the witness tuple is unobtainable.
  std::vector<std::string> unreachable_views;
};

/// Builds the witness. Fails with InvalidArgument when the connection is
/// independent (Theorem 4.1 then guarantees no witness exists) or names a
/// view absent from `views`.
///
/// Properties (verified by the property tests): on the witness instance,
/// the complete answer for T has exactly one tuple, and the obtainable
/// answer using only T's views is empty.
Result<NonIndependenceWitness> ConstructNonIndependenceWitness(
    const Query& query, const Connection& connection,
    const std::vector<SourceView>& views);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_WITNESS_H_
