#include "planner/find_rel.h"

#include <map>

#include "common/string_util.h"

namespace limcap::planner {

namespace {

/// Maps every attribute appearing in `views` or `query` to one canonical
/// representative of its domain (the lexicographically smallest attribute
/// sharing the domain). With distinct domains this is the identity, so
/// the analysis matches the paper's attribute-level algorithm; with
/// grouped domains it folds same-domain attributes together, since source
/// bindings flow through domain predicates.
std::map<std::string, std::string> DomainRepresentatives(
    const Query& query, const std::vector<SourceView>& views,
    const DomainMap& domains) {
  AttributeSet attributes = query.InputAttributes();
  for (const SourceView& view : views) {
    AttributeSet view_attributes = view.Attributes();
    attributes.insert(view_attributes.begin(), view_attributes.end());
  }
  // std::set iterates in sorted order, so the first attribute seen per
  // domain is the lexicographic representative.
  std::map<std::string, std::string> domain_rep;
  std::map<std::string, std::string> rep;
  for (const std::string& attribute : attributes) {
    auto [it, inserted] =
        domain_rep.emplace(domains.DomainOf(attribute), attribute);
    rep.emplace(attribute, it->second);
  }
  return rep;
}

AttributeSet MapSet(const AttributeSet& attributes,
                    const std::map<std::string, std::string>& rep) {
  AttributeSet out;
  for (const std::string& attribute : attributes) {
    auto it = rep.find(attribute);
    out.insert(it == rep.end() ? attribute : it->second);
  }
  return out;
}

Result<std::vector<Adorned>> ResolveAdorned(
    const Connection& connection, const std::vector<SourceView>& views,
    const std::map<std::string, std::string>& rep) {
  std::vector<Adorned> resolved;
  for (const std::string& name : connection.view_names()) {
    bool found = false;
    for (const SourceView& view : views) {
      if (view.name() == name) {
        std::vector<Adorned> expanded = Adorned::FromView(
            view, [&rep](const std::string& a) { return rep.at(a); });
        resolved.insert(resolved.end(), expanded.begin(), expanded.end());
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("connection " + connection.ToString() +
                                     " references unknown view: " + name);
    }
  }
  return resolved;
}

std::string SetToString(const std::set<std::string>& items) {
  return "{" + JoinMapped(items, ", ", [](const std::string& s) { return s; }) +
         "}";
}

}  // namespace

std::string FindRelReport::ToString() const {
  std::string out;
  out += "queryable views (V_q): {" + Join(queryable_views, ", ") + "}\n";
  if (!connection_queryable) {
    out += "connection is NOT queryable: no answers obtainable\n";
    return out;
  }
  out += std::string("independent: ") + (independent ? "yes" : "no") + "\n";
  out += "kernel: " + SetToString(kernel) + "\n";
  out += "b-closure(kernel): " + SetToString(kernel_bclosure) + "\n";
  out += "relevant views: " + SetToString(relevant_views) + "\n";
  return out;
}

Result<FindRelReport> FindRelevantViews(const Query& query,
                                        const Connection& connection,
                                        const std::vector<SourceView>& views,
                                        const DomainMap& domains,
                                        const AttributeSet& seeded_attributes) {
  FindRelReport report;
  std::map<std::string, std::string> rep =
      DomainRepresentatives(query, views, domains);
  for (const std::string& attribute : seeded_attributes) {
    rep.emplace(attribute, attribute);
  }
  auto map_name = [&rep](const std::string& a) { return rep.at(a); };
  AttributeSet inputs = MapSet(query.InputAttributes(), rep);
  AttributeSet seeded = MapSet(seeded_attributes, rep);
  inputs.insert(seeded.begin(), seeded.end());

  std::vector<Adorned> all_adorned;
  all_adorned.reserve(views.size());
  for (const SourceView& view : views) {
    std::vector<Adorned> expanded = Adorned::FromView(view, map_name);
    all_adorned.insert(all_adorned.end(), expanded.begin(), expanded.end());
  }

  // Step 1: V_q = f-closure(I(Q), V).
  FClosure queryable = ComputeFClosure(inputs, all_adorned);
  report.queryable_views = queryable.order;

  report.connection_queryable = true;
  for (const std::string& name : connection.view_names()) {
    if (!queryable.Contains(name)) report.connection_queryable = false;
  }
  LIMCAP_ASSIGN_OR_RETURN(std::vector<Adorned> connection_adorned,
                          ResolveAdorned(connection, views, rep));
  if (!report.connection_queryable) return report;

  // Step 2: a kernel of the connection.
  //
  // The kernel's input set is subtler than queryability's: an input
  // assignment a = c pins attribute a in the complete answer, so a's
  // domain needs no further external values — *unless* the domain also
  // occurs in the connection as a different attribute b. Then b is not
  // pinned by the selection, extra domain values retrieve extra answer
  // tuples, and the domain must stay kernel-eligible (its feeders are
  // relevant). Under Section 5's distinct-domain assumption this reduces
  // to I(Q) exactly.
  AttributeSet connection_attributes;  // original attribute names
  for (const std::string& name : connection.view_names()) {
    for (const SourceView& view : views) {
      if (view.name() == name) {
        AttributeSet attrs = view.Attributes();
        connection_attributes.insert(attrs.begin(), attrs.end());
      }
    }
  }
  AttributeSet kernel_inputs;
  for (const std::string& input : query.InputAttributes()) {
    bool constrains = true;
    for (const std::string& attribute : connection_attributes) {
      if (attribute != input && rep.at(attribute) == rep.at(input)) {
        constrains = false;
        break;
      }
    }
    if (constrains) kernel_inputs.insert(rep.at(input));
  }
  report.kernel = ComputeKernel(kernel_inputs, connection_adorned);
  report.independent = report.kernel.empty();

  // Step 3: its backward-closure over the queryable views.
  std::vector<Adorned> queryable_adorned;
  for (const Adorned& adorned : all_adorned) {
    if (queryable.Contains(adorned.name)) queryable_adorned.push_back(adorned);
  }
  report.kernel_bclosure = ComputeBClosure(report.kernel, queryable_adorned);

  // Step 4: relevant = b-closure(kernel) ∪ T.
  report.relevant_views = report.kernel_bclosure;
  for (const std::string& name : connection.view_names()) {
    report.relevant_views.insert(name);
  }
  return report;
}

std::string QueryRelevance::ToString() const {
  std::string out;
  out += "queryable views: {" + Join(queryable_views, ", ") + "}\n";
  for (const Connection& connection : dropped_connections) {
    out += "dropped (nonqueryable): " + connection.ToString() + "\n";
  }
  for (const Connection& connection : queryable_connections) {
    const FindRelReport& report = reports.at(connection.ToString());
    out += "connection " + connection.ToString() +
           (report.independent ? " [independent]" : "") + ": relevant = " +
           SetToString(report.relevant_views) + "\n";
  }
  out += "V_r = " + SetToString(relevant_union) + "\n";
  return out;
}

Result<QueryRelevance> AnalyzeQueryRelevance(const Query& query,
                                             const std::vector<SourceView>& views,
                                             const DomainMap& domains,
                                             const AttributeSet& seeded_attributes,
                                             obs::Tracer* tracer) {
  obs::ScopedSpan relevance_span(tracer, "plan.relevance");
  QueryRelevance relevance;
  std::map<std::string, std::string> rep =
      DomainRepresentatives(query, views, domains);
  for (const std::string& attribute : seeded_attributes) {
    rep.emplace(attribute, attribute);
  }
  std::vector<Adorned> all_adorned;
  for (const SourceView& view : views) {
    std::vector<Adorned> expanded = Adorned::FromView(
        view, [&rep](const std::string& a) { return rep.at(a); });
    all_adorned.insert(all_adorned.end(), expanded.begin(), expanded.end());
  }
  AttributeSet initial = MapSet(query.InputAttributes(), rep);
  AttributeSet seeded = MapSet(seeded_attributes, rep);
  initial.insert(seeded.begin(), seeded.end());
  FClosure queryable = ComputeFClosure(initial, all_adorned);
  relevance.queryable_views = queryable.order;

  for (const Connection& connection : query.connections()) {
    obs::ScopedSpan find_rel_span(tracer, "plan.find_rel",
                                  connection.ToString());
    LIMCAP_ASSIGN_OR_RETURN(
        FindRelReport report,
        FindRelevantViews(query, connection, views, domains,
                          seeded_attributes));
    find_rel_span.Counter("kernel_size",
                          static_cast<double>(report.kernel.size()));
    find_rel_span.Counter("relevant_views",
                          static_cast<double>(report.relevant_views.size()));
    find_rel_span.Counter("queryable",
                          report.connection_queryable ? 1 : 0);
    if (!report.connection_queryable) {
      relevance.dropped_connections.push_back(connection);
      continue;
    }
    relevance.queryable_connections.push_back(connection);
    relevance.relevant_union.insert(report.relevant_views.begin(),
                                    report.relevant_views.end());
    relevance.reports.emplace(connection.ToString(), std::move(report));
  }
  return relevance;
}

}  // namespace limcap::planner
