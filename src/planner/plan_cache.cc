#include "planner/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "capability/catalog_fingerprint.h"
#include "common/hash.h"

namespace limcap::planner {

namespace {

using capability::FingerprintToString;
using capability::StableHash64;

/// Assigns canonical ids $0, $1, ... to global attributes in order of
/// first appearance along the canonical traversal.
class AttributeCanonicalizer {
 public:
  const std::string& IdOf(const std::string& attribute) {
    auto it = ids_.find(attribute);
    if (it == ids_.end()) {
      it = ids_.emplace(attribute, "$" + std::to_string(ids_.size())).first;
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> ids_;
};

/// "s:t1" — the kind tag keeps Int64(1) and String("1") apart.
std::string CanonicalValue(const Value& value) {
  char tag = '?';
  switch (value.kind()) {
    case Value::Kind::kNull:
      tag = 'n';
      break;
    case Value::Kind::kInt64:
      tag = 'i';
      break;
    case Value::Kind::kDouble:
      tag = 'd';
      break;
    case Value::Kind::kString:
      tag = 's';
      break;
  }
  std::string out(1, tag);
  out += ':';
  out += value.ToString();
  return out;
}

/// "v3/bff($0,$1,$2)" — the view atom with its adornment surface and
/// canonicalized attribute positions. Folding the templates in makes
/// adornment changes visible in the signature itself (on top of the
/// catalog fingerprint), so distinct adornments are distinct keys even
/// across catalogs that happen to share a fingerprint prefix.
std::string CanonicalViewAtom(const capability::SourceView& view,
                              AttributeCanonicalizer& canon) {
  std::string atom = view.name();
  atom += '/';
  for (std::size_t t = 0; t < view.templates().size(); ++t) {
    if (t > 0) atom += '|';
    atom += view.templates()[t].ToString();
  }
  atom += '(';
  const auto& attributes = view.schema().attributes();
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) atom += ',';
    atom += canon.IdOf(attributes[i]);
  }
  atom += ')';
  return atom;
}

}  // namespace

Result<QuerySignature> MakeQuerySignature(
    const Query& query, const capability::SourceCatalog& catalog,
    const DomainMap& domains, const BuilderOptions& builder,
    std::string_view config_tag) {
  // Canonical connection order: each connection is identified by its
  // sorted view-name list; connections sort by that list. Ties are
  // identical view sets, which render identically.
  std::vector<std::vector<std::string>> sorted_connections;
  sorted_connections.reserve(query.connections().size());
  for (const Connection& connection : query.connections()) {
    std::vector<std::string> names = connection.view_names();
    std::sort(names.begin(), names.end());
    sorted_connections.push_back(std::move(names));
  }
  std::sort(sorted_connections.begin(), sorted_connections.end());

  // Canonical attribute ids are assigned along the sorted traversal, in
  // each view's schema order — a deterministic walk, so consistently
  // renamed attributes land on the same ids.
  AttributeCanonicalizer canon;
  std::string text = "C:";
  for (std::size_t c = 0; c < sorted_connections.size(); ++c) {
    if (c > 0) text += ',';
    text += '{';
    for (std::size_t v = 0; v < sorted_connections[c].size(); ++v) {
      if (v > 0) text += ',';
      LIMCAP_ASSIGN_OR_RETURN(const capability::SourceView* view,
                              catalog.FindView(sorted_connections[c][v]));
      text += CanonicalViewAtom(*view, canon);
    }
    text += '}';
  }

  // Inputs keep list order: the builder emits fact rules and value
  // combinations in that order, so it is part of the compiled artifact.
  // (An input attribute outside every connection — a domain-mapped
  // user-side attribute — gets its id here, on first appearance.)
  text += "|I:";
  for (std::size_t i = 0; i < query.inputs().size(); ++i) {
    if (i > 0) text += ',';
    text += canon.IdOf(query.inputs()[i].attribute);
    text += '=';
    text += CanonicalValue(query.inputs()[i].value);
  }

  // Outputs keep list order: it is the answer schema.
  text += "|O:";
  for (std::size_t i = 0; i < query.outputs().size(); ++i) {
    if (i > 0) text += ',';
    text += canon.IdOf(query.outputs()[i]);
  }

  // The domain grouping and builder knobs change the emitted program, so
  // they are part of the query half of the key.
  text += "|D:";
  text += FingerprintToString(DomainMapFingerprint(domains));
  text += "|B:goal=";
  text += builder.goal_predicate;
  text += ",alpha=";
  text += builder.alpha_suffix;
  text += ",pcg=";
  text += builder.per_connection_goals ? '1' : '0';
  text += ",maxbody=";
  text += std::to_string(builder.max_rule_body_atoms);
  text += "|G:";
  text += config_tag;

  QuerySignature signature;
  signature.hash = StableHash64(text);
  signature.canonical = std::move(text);
  return signature;
}

uint64_t DomainMapFingerprint(const DomainMap& domains) {
  // std::map iterates in sorted order, so this is canonical. The raw
  // attribute names are used on purpose: an override rewires a concrete
  // catalog attribute, it is configuration rather than query text.
  uint64_t h = 0xd6e8feb86659fd93ULL;
  for (const auto& [attribute, domain] : domains.overrides()) {
    h = Mix64(h ^ StableHash64(attribute));
    h = Mix64(h ^ StableHash64(domain));
  }
  return h;
}

std::string PlanCache::MapKey(uint64_t catalog_fingerprint,
                              const QuerySignature& signature) {
  std::string key = FingerprintToString(catalog_fingerprint);
  key += '#';
  key += FingerprintToString(signature.hash);
  key += '#';
  key += signature.canonical;
  return key;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t catalog_fingerprint, const QuerySignature& signature) {
  if (capacity_ == 0) {
    // A disabled cache still counts the miss: the caller consulted it
    // and got nothing, and hit+miss must keep equaling the lookups
    // (a reject-gated query against a capacity-0 cache used to vanish
    // from the stats entirely).
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return nullptr;
  }
  std::string key = MapKey(catalog_fingerprint, signature);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::Insert(std::shared_ptr<const CachedPlan> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  std::string key = MapKey(entry->catalog_fingerprint, entry->signature);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.inserts;
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  by_key_.emplace(std::move(key), lru_.begin());
  ++stats_.inserts;
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t PlanCache::Invalidate(uint64_t catalog_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return InvalidateLocked(catalog_fingerprint);
}

std::size_t PlanCache::NoteCatalogGeneration(uint64_t catalog_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (has_generation_ && generation_ == catalog_fingerprint) return 0;
  std::size_t dropped = 0;
  if (has_generation_) dropped = InvalidateLocked(generation_);
  generation_ = catalog_fingerprint;
  has_generation_ = true;
  return dropped;
}

std::size_t PlanCache::InvalidateLocked(uint64_t catalog_fingerprint) {
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second->catalog_fingerprint == catalog_fingerprint) {
      by_key_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  by_key_.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

}  // namespace limcap::planner
