#ifndef LIMCAP_PLANNER_PLAN_CACHE_H_
#define LIMCAP_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "capability/source_catalog.h"
#include "common/result.h"
#include "planner/domain_map.h"
#include "planner/program_builder.h"
#include "planner/program_optimizer.h"
#include "planner/query.h"

namespace limcap::planner {

/// The canonical adorned signature of a connection query: the query half
/// of the plan-cache key. Two queries get the same signature exactly when
/// the planner would compile them into interchangeable plans —
/// the signature is invariant under
///
///   * connection order (the answer is a union over connections),
///   * view order within a connection (a connection is a set),
///   * consistent renaming of the global attributes ("variables" of the
///     connection-query calculus): attributes are replaced by $0, $1, ...
///     in canonical traversal order, so isomorphic queries collide,
///
/// and sensitive to everything that changes the compiled artifact: the
/// adorned shape of the referenced views (templates fold into the view
/// atoms), input values and their multiplicities (connection rules embed
/// the constants), output order (the answer schema), the program-builder
/// knobs, and the caller-supplied `config_tag` (the exec layer folds its
/// static-analysis mode in through it).
struct QuerySignature {
  /// Human-readable canonical form, e.g.
  ///   "C:{v1/bf($0,$1),v3/bff($1,$2,$3)}|I:$0=s:t1|O:$3|B:goal=ans,..."
  /// — shown by limcap_explain for cache debugging.
  std::string canonical;
  /// capability::StableHash64(canonical): process-independent.
  uint64_t hash = 0;

  bool operator==(const QuerySignature& other) const {
    return hash == other.hash && canonical == other.canonical;
  }
};

/// Computes the signature of `query` against `catalog`. Fails when a
/// connection names an unknown view (the same queries Validate rejects).
Result<QuerySignature> MakeQuerySignature(const Query& query,
                                          const capability::SourceCatalog& catalog,
                                          const DomainMap& domains,
                                          const BuilderOptions& builder = {},
                                          std::string_view config_tag = {});

/// Stable fingerprint of a DomainMap's attribute→domain overrides; folded
/// into the catalog half of the cache key (a mediator's domain grouping
/// changes which programs the planner emits exactly like a capability
/// change would).
uint64_t DomainMapFingerprint(const DomainMap& domains);

/// A compiled, reusable query plan: everything Mediator::Answer computes
/// between parse and execution, keyed by (catalog fingerprint, query
/// signature). Entries are immutable once inserted and shared by
/// reference — a warm query copies the artifact into its AnswerReport and
/// executes, skipping FIND_REL, program construction, Section 6
/// optimization, and the static-analysis gate.
struct CachedPlan {
  /// The full planning artifact (relevance closure, Π(Q,V), Π(Q,V_r),
  /// optimized program, removed rules).
  PlanResult plan;
  /// The program execution actually runs: the optimized program after the
  /// static-analysis gate (equal to plan.optimized_program when the gate
  /// was off or non-pruning).
  datalog::Program executable_program;
  /// The static verifier's verdicts, opaque to this layer (the exec layer
  /// stores its analysis::AnalysisResult here; planner cannot name that
  /// type without a dependency cycle). Null when analysis never ran.
  std::shared_ptr<const void> verdicts;
  bool analysis_ran = false;
  /// The key this entry was compiled under, echoed for debugging.
  uint64_t catalog_fingerprint = 0;
  QuerySignature signature;
};

/// A bounded, thread-safe LRU cache of compiled plans. Thread safety is
/// ahead of today's one-session-one-thread mediator on purpose: the
/// future multi-query `limcap_serve` shares one cache across query
/// threads, and the property tests already exercise concurrent lookups
/// and inserts.
///
/// Invalidation: the catalog fingerprint is part of the key, so a mutated
/// catalog can never serve a stale plan — lookups under the new
/// fingerprint miss and recompile. Invalidate(fingerprint) additionally
/// reclaims the memory of a retired catalog generation's entries (exactly
/// those entries, nothing else).
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    /// Every consulted-but-not-served lookup — including lookups against
    /// a capacity-0 (disabled) cache and repeated misses of a
    /// reject-gated query, which can never be inserted. The hit+miss sum
    /// therefore equals the number of Lookup calls, which is what the
    /// serve status endpoint and limcap_explain report hit rates from.
    uint64_t misses = 0;
    uint64_t inserts = 0;
    /// Entries dropped by the LRU bound.
    uint64_t evictions = 0;
    /// Entries dropped by Invalidate().
    uint64_t invalidations = 0;
    /// Point-in-time occupancy, filled by stats() at snapshot time.
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  /// `capacity` bounds the number of cached plans; 0 disables the cache
  /// (every lookup misses, inserts are dropped).
  explicit PlanCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr std::size_t kDefaultCapacity = 128;

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The entry compiled under (catalog_fingerprint, signature), freshened
  /// to most-recently-used — or null (a miss).
  std::shared_ptr<const CachedPlan> Lookup(uint64_t catalog_fingerprint,
                                           const QuerySignature& signature);

  /// Inserts `entry` under its embedded key, evicting the least recently
  /// used entry when full. Re-inserting an existing key replaces the
  /// entry (last writer wins — both compiled the same plan).
  void Insert(std::shared_ptr<const CachedPlan> entry);

  /// Drops every entry compiled under `catalog_fingerprint`; returns how
  /// many were dropped. Entries of other catalog generations are
  /// untouched.
  std::size_t Invalidate(uint64_t catalog_fingerprint);

  /// Generation tracking: callers that answer against a live catalog
  /// (the mediator, serve sessions) report the catalog's current
  /// fingerprint before each answer. When the fingerprint changed since
  /// the last call — a source registered, or Deregister retired one —
  /// the previous generation's entries are invalidated (they can never
  /// be looked up again; keeping them only wastes capacity). Entries of
  /// *other* fingerprints are untouched, so standalone users may still
  /// share one cache across catalogs. Returns how many entries were
  /// dropped.
  std::size_t NoteCatalogGeneration(uint64_t catalog_fingerprint);

  void Clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Counter totals plus the point-in-time size/capacity — one locked
  /// snapshot, so the numbers are mutually consistent even while other
  /// threads keep hitting the cache.
  Stats stats() const;

 private:
  /// Map key: fingerprint || signature hash || canonical text (the text
  /// guards against 64-bit hash collisions).
  static std::string MapKey(uint64_t catalog_fingerprint,
                            const QuerySignature& signature);

  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>>;

  /// Invalidate() body, callable with mutex_ already held.
  std::size_t InvalidateLocked(uint64_t catalog_fingerprint);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// NoteCatalogGeneration state: the live catalog fingerprint, valid
  /// once has_generation_ is set.
  uint64_t generation_ = 0;
  bool has_generation_ = false;
  /// Front = most recently used.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> by_key_;
  Stats stats_;
};

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_PLAN_CACHE_H_
