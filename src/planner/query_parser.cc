#include "planner/query_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace limcap::planner {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    SkipTrivia();
    if (!ConsumeIf("<")) return Error("expected '<' opening the query");

    // Inputs.
    std::vector<InputAssignment> inputs;
    SkipTrivia();
    if (!ConsumeIf("{")) return Error("expected '{' opening the inputs");
    SkipTrivia();
    while (!ConsumeIf("}")) {
      LIMCAP_ASSIGN_OR_RETURN(std::string attribute, ParseIdentifier());
      SkipTrivia();
      if (!ConsumeIf("=")) return Error("expected '=' in input assignment");
      SkipTrivia();
      LIMCAP_ASSIGN_OR_RETURN(Value value, ParseValue());
      inputs.push_back({std::move(attribute), std::move(value)});
      SkipTrivia();
      if (ConsumeIf(",")) SkipTrivia();
    }
    SkipTrivia();
    if (!ConsumeIf(",")) return Error("expected ',' after the inputs");

    // Outputs.
    std::vector<std::string> outputs;
    SkipTrivia();
    if (!ConsumeIf("{")) return Error("expected '{' opening the outputs");
    SkipTrivia();
    while (!ConsumeIf("}")) {
      LIMCAP_ASSIGN_OR_RETURN(std::string attribute, ParseIdentifier());
      outputs.push_back(std::move(attribute));
      SkipTrivia();
      if (ConsumeIf(",")) SkipTrivia();
    }
    SkipTrivia();
    if (!ConsumeIf(",")) return Error("expected ',' after the outputs");

    // Connections.
    std::vector<Connection> connections;
    SkipTrivia();
    if (!ConsumeIf("{")) {
      return Error("expected '{' opening the connection list");
    }
    SkipTrivia();
    while (!ConsumeIf("}")) {
      if (!ConsumeIf("{")) return Error("expected '{' opening a connection");
      std::vector<std::string> names;
      SkipTrivia();
      while (!ConsumeIf("}")) {
        LIMCAP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
        names.push_back(std::move(name));
        SkipTrivia();
        if (ConsumeIf(",")) SkipTrivia();
      }
      connections.emplace_back(std::move(names));
      SkipTrivia();
      if (ConsumeIf(",")) SkipTrivia();
    }
    SkipTrivia();
    if (!ConsumeIf(">")) return Error("expected '>' closing the query");
    SkipTrivia();
    if (!AtEnd()) return Error("trailing input after query");
    return Query(std::move(inputs), std::move(outputs),
                 std::move(connections));
  }

 private:
  Result<Value> ParseValue() {
    if (AtEnd()) return Error("expected value");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (!AtEnd() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out += text_[pos_++];
      }
      if (AtEnd()) return Error("unterminated string");
      ++pos_;
      return Value::String(std::move(out));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      bool is_double = false;
      if (!AtEnd() && text_[pos_] == '.' && pos_ + 1 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        is_double = true;
        ++pos_;
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      std::string token(text_.substr(start, pos_ - start));
      if (is_double) {
        return Value::Double(std::strtod(token.c_str(), nullptr));
      }
      return Value::Int64(std::strtoll(token.c_str(), nullptr, 10));
    }
    LIMCAP_ASSIGN_OR_RETURN(std::string identifier, ParseIdentifier());
    return Value::String(std::move(identifier));
  }

  Result<std::string> ParseIdentifier() {
    if (AtEnd() || !(std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
                     text_[pos_] == '_' || text_[pos_] == '$')) {
      return Error("expected identifier");
    }
    std::size_t start = pos_;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$' ||
            text_[pos_] == '^')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipTrivia() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  bool ConsumeIf(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  Status Error(std::string message) const {
    return Status::InvalidArgument(message + " at line " +
                                   std::to_string(line_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace limcap::planner
