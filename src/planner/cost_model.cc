#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

#include "capability/in_memory_source.h"

namespace limcap::planner {

ViewStats CollectStats(const capability::SourceView& view,
                       const relational::Relation& data) {
  ViewStats stats;
  stats.tuple_count = data.size();
  for (std::size_t i = 0; i < view.schema().arity(); ++i) {
    stats.distinct_values[view.schema().attribute(i)] =
        data.ColumnValues(i).size();
  }
  return stats;
}

Result<std::map<std::string, ViewStats>> CollectCatalogStats(
    const capability::SourceCatalog& catalog) {
  std::map<std::string, ViewStats> stats;
  for (const std::string& name : catalog.ViewNames()) {
    LIMCAP_ASSIGN_OR_RETURN(capability::Source * source, catalog.Find(name));
    auto* in_memory = dynamic_cast<capability::InMemorySource*>(source);
    if (in_memory == nullptr) {
      return Status::Unsupported("cannot collect exact stats for " + name +
                                 ": not an InMemorySource");
    }
    stats.emplace(name, CollectStats(in_memory->view(), in_memory->data()));
  }
  return stats;
}

std::string CostEstimate::ToString() const {
  std::string out = "estimated total source queries: " +
                    std::to_string(total_queries) + " (" +
                    std::to_string(iterations) + " fixpoint rounds)\n";
  for (const auto& [view, queries] : source_queries) {
    out += "  " + view + ": ~" + std::to_string(queries) + " queries, ~" +
           std::to_string(tuples_fetched.at(view)) + " tuples\n";
  }
  for (const auto& [domain, values] : domain_values) {
    out += "  domain " + domain + ": ~" + std::to_string(values) +
           " values\n";
  }
  return out;
}

CostEstimate EstimateExecution(const Query& query,
                               const std::vector<capability::SourceView>& views,
                               const DomainMap& domains,
                               const std::map<std::string, ViewStats>& stats,
                               const std::map<std::string, double>& seeded_values,
                               std::size_t max_iterations, double epsilon) {
  CostEstimate estimate;

  // Domain universes: the largest distinct count seen for any attribute
  // of the domain across the catalog (at least 1).
  std::map<std::string, double> universe;
  for (const capability::SourceView& view : views) {
    auto it = stats.find(view.name());
    if (it == stats.end()) continue;
    for (const auto& [attribute, distinct] : it->second.distinct_values) {
      std::string domain = domains.DomainOf(attribute);
      universe[domain] =
          std::max(universe[domain], static_cast<double>(distinct));
    }
  }

  // Initial domain values: input assignments (one value each; duplicates
  // per attribute add up, capped by the universe later) + seeded counts.
  std::map<std::string, double> k;
  for (const InputAssignment& input : query.inputs()) {
    k[domains.DomainOf(input.attribute)] += 1.0;
  }
  for (const auto& [domain, count] : seeded_values) {
    k[domain] += count;
  }
  for (auto& [domain, value] : k) {
    auto u = universe.find(domain);
    // Inputs may lie outside every view's active domain; keep them.
    if (u != universe.end()) value = std::min(value, std::max(u->second, 1.0));
  }

  // Fixpoint over cardinalities, mirroring the evaluator's rounds.
  std::size_t round = 0;
  for (; round < max_iterations; ++round) {
    double delta = 0;

    // Fresh per-round accumulators for per-view quantities.
    std::map<std::string, double> queries;
    std::map<std::string, double> tuples;
    // Per-domain "miss probability" accumulator for the occupancy union:
    // start from the already-obtained fraction.
    std::map<std::string, double> miss;
    for (const auto& [domain, u] : universe) {
      double have = 0;
      auto it = k.find(domain);
      if (it != k.end()) have = std::min(it->second, u);
      miss[domain] = u > 0 ? 1.0 - have / u : 1.0;
    }

    for (const capability::SourceView& view : views) {
      auto stat_it = stats.find(view.name());
      if (stat_it == stats.end()) continue;
      const ViewStats& view_stats = stat_it->second;

      double view_queries = 0;
      double view_tuples = 0;
      for (std::size_t t = 0; t < view.templates().size(); ++t) {
        double combos = 1;
        double fraction = 1;
        for (const std::string& attribute : view.BoundAttributes(t)) {
          std::string domain = domains.DomainOf(attribute);
          double values = 0;
          auto it = k.find(domain);
          if (it != k.end()) values = it->second;
          combos *= values;
          double u = std::max(universe[domain], 1.0);
          fraction *= std::min(1.0, values / u);
        }
        view_queries += combos;
        view_tuples = std::max(
            view_tuples,
            static_cast<double>(view_stats.tuple_count) * fraction);
      }
      queries[view.name()] = view_queries;
      tuples[view.name()] = view_tuples;

      // Free attributes contribute values (occupancy), folded into the
      // union via miss probabilities.
      for (std::size_t t = 0; t < view.templates().size(); ++t) {
        for (const std::string& attribute : view.FreeAttributes(t)) {
          auto d_it = view_stats.distinct_values.find(attribute);
          if (d_it == view_stats.distinct_values.end()) continue;
          double distinct = static_cast<double>(d_it->second);
          if (distinct <= 0) continue;
          double contributed =
              distinct * (1.0 - std::exp(-tuples[view.name()] / distinct));
          std::string domain = domains.DomainOf(attribute);
          double u = std::max(universe[domain], 1.0);
          miss[domain] *= std::max(0.0, 1.0 - contributed / u);
        }
      }
    }

    // New domain estimates from the union.
    for (const auto& [domain, u] : universe) {
      double updated = u * (1.0 - miss[domain]);
      double previous = 0;
      auto it = k.find(domain);
      if (it != k.end()) previous = it->second;
      updated = std::max(updated, previous);  // monotone
      delta = std::max(delta, updated - previous);
      k[domain] = updated;
    }

    estimate.source_queries = std::move(queries);
    estimate.tuples_fetched = std::move(tuples);
    if (delta < epsilon) {
      ++round;
      break;
    }
  }

  estimate.iterations = round;
  estimate.domain_values = k;
  estimate.total_queries = 0;
  for (const auto& [view, count] : estimate.source_queries) {
    estimate.total_queries += count;
  }
  return estimate;
}

}  // namespace limcap::planner
