#ifndef LIMCAP_PLANNER_QUERY_PARSER_H_
#define LIMCAP_PLANNER_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "planner/query.h"

namespace limcap::planner {

/// Parses the paper's connection-query notation — exactly the form
/// Query::ToString() prints, so queries round-trip through text:
///
///   <{Song = t1}, {Price}, {{v1, v3}, {v1, v4}, {v2, v3}, {v2, v4}}>
///
/// * the first braces hold the input assignments I (comma-separated
///   `Attribute = value`; empty `{}` allowed; an attribute may repeat),
/// * the second the output attributes O,
/// * the third the connections C, each itself a braced view list.
///
/// Values lex like Datalog constants: bare identifiers are strings,
/// integer/floating literals are numbers, quoted strings allow anything.
/// '%' and '//' start comments.
Result<Query> ParseQuery(std::string_view text);

}  // namespace limcap::planner

#endif  // LIMCAP_PLANNER_QUERY_PARSER_H_
