#ifndef LIMCAP_RUNTIME_ADAPTIVE_STATE_H_
#define LIMCAP_RUNTIME_ADAPTIVE_STATE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace limcap::runtime {

/// Online per-source statistics the adaptive dispatcher learns from
/// FetchReport-grade observations: latency / useful-rows / failure EWMAs
/// plus a power-of-two latency histogram for the hedge quantile. One
/// observation = one completed fetch (an attempt sequence), in canonical
/// request order on the driver thread.
struct SourceProfile {
  std::size_t observations = 0;
  /// EWMA of the fetch's simulated duration (all attempts + backoffs).
  double ewma_latency_ms = 0;
  /// EWMA of rows the fetch returned (0 for failures).
  double ewma_rows = 0;
  /// EWMA of the failure indicator (1 = permanently failed).
  double failure_rate = 0;
  /// Power-of-two latency buckets: bucket i counts observed durations in
  /// [2^(i-1), 2^i) ms; bucket 0 counts sub-millisecond fetches.
  static constexpr std::size_t kBuckets = 32;
  uint64_t latency_buckets[kBuckets] = {};

  void Observe(double latency_ms, double rows, bool failed, double alpha);
  /// Upper edge of the first bucket at/after which `quantile` of the
  /// observed latencies lie — the hedge arming delay. 0 when empty.
  double LatencyQuantileMs(double quantile) const;
  /// Expected useful rows per simulated millisecond; the dispatch score.
  double Score() const;
};

/// Cross-query aggregate of SourceProfiles, shared by every execution of
/// a ServeSession (RuntimeOptions::adaptive_state). Thread-safe and
/// publish-only from the dispatcher's point of view: scores and hedge
/// delays come from each execution's private profiles, which keeps every
/// query's dispatch — and hence its OrderedFingerprint — a pure function
/// of its own request stream. The aggregate feeds session observability.
class AdaptiveState {
 public:
  /// Folds one execution's final per-source profiles in (order-free
  /// commutative merge: counts and sums, not EWMAs, so the aggregate is
  /// independent of query completion order).
  void Absorb(const std::map<std::string, SourceProfile>& profiles);

  /// Snapshot of the aggregate as per-source profiles (EWMA fields carry
  /// plain means). Missing sources simply aren't in the map.
  std::map<std::string, SourceProfile> Snapshot() const;

  std::size_t source_count() const;

 private:
  struct Aggregate {
    std::size_t observations = 0;
    double latency_sum_ms = 0;
    double rows_sum = 0;
    double failures = 0;
    uint64_t latency_buckets[SourceProfile::kBuckets] = {};
  };
  mutable std::mutex mutex_;
  std::map<std::string, Aggregate> aggregates_;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_ADAPTIVE_STATE_H_
