#ifndef LIMCAP_RUNTIME_CIRCUIT_BREAKER_H_
#define LIMCAP_RUNTIME_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <string>

#include "runtime/retry_policy.h"

namespace limcap::runtime {

enum class BreakerState {
  kClosed,    ///< healthy: fetches flow
  kOpen,      ///< tripped: fetches fail fast until the cooldown elapses
  kHalfOpen,  ///< cooled down: one probe in flight decides the next state
};

const char* BreakerStateToString(BreakerState state);

/// Per-source circuit breaker on the scheduler's simulated clock. Driven
/// only by the scheduler's driver thread (dispatch decisions and merge-
/// order outcome recording), so it needs no locking; see FetchScheduler
/// for the confinement contract.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

  /// True when a fetch may be sent at simulated time `now_ms`. An open
  /// breaker whose cooldown has elapsed transitions to half-open and
  /// admits exactly one probe; further calls return false until the
  /// probe's outcome is recorded.
  bool Allow(double now_ms);

  /// Records a fetch outcome, in the scheduler's deterministic merge
  /// order. `now_ms` is the fetch's simulated finish time.
  void RecordSuccess();
  void RecordFailure(double now_ms);

  BreakerState state() const { return state_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }

 private:
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  double open_until_ms_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_CIRCUIT_BREAKER_H_
