#ifndef LIMCAP_RUNTIME_TIMED_SOURCE_H_
#define LIMCAP_RUNTIME_TIMED_SOURCE_H_

#include "capability/source.h"

namespace limcap::runtime {

/// A Source that reports per-call *simulated* latency perturbations.
///
/// The integration system's sources are in-memory stand-ins for Web
/// services, so there is no real network time to measure; decorators that
/// model slow or spiky services (FaultInjectingSource) implement this
/// interface, and the fetch scheduler adds the reported perturbation to
/// the LatencyModel's base round-trip time when enforcing deadlines and
/// building the simulated timeline. Plain sources are scheduled at the
/// base latency.
class TimedSource : public capability::Source {
 public:
  struct Timing {
    /// Simulated milliseconds added on top of the model's base latency.
    double added_latency_ms = 0;
  };

  /// Executes `query` and reports this call's latency perturbation.
  /// Must be safe to call concurrently (the scheduler dispatches on a
  /// thread pool).
  virtual Result<relational::Relation> ExecuteTimed(
      const capability::SourceQuery& query, Timing* timing) = 0;

  Result<relational::Relation> Execute(
      const capability::SourceQuery& query) override {
    Timing timing;
    return ExecuteTimed(query, &timing);
  }
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_TIMED_SOURCE_H_
