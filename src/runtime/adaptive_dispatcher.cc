#include "runtime/adaptive_dispatcher.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

namespace limcap::runtime {

namespace {

std::string SourceNameOf(const FetchRequest& request) {
  return request.source->view().name();
}

}  // namespace

AdaptiveDispatcher::AdaptiveDispatcher(const RuntimeOptions& runtime,
                                       FetchScheduler* scheduler)
    : runtime_(runtime), scheduler_(scheduler) {}

double AdaptiveDispatcher::ScoreFor(const std::string& source) const {
  // This execution's own observations ONLY — like the hedge delay, the
  // score must be a pure function of this query, never of concurrent
  // traffic: the permutation it drives sets the dictionary interning
  // order, which OrderedFingerprint is sensitive to. The shared
  // AdaptiveState is written (PublishShared) but never read here.
  auto it = profiles_.find(source);
  if (it != profiles_.end() && it->second.observations > 0) {
    return it->second.Score();
  }
  // Cold source: score it by the configured base latency alone, so
  // known-cheap sources still sort before known-expensive ones.
  return 1.0 / std::max(runtime_.latency.LatencyOf(source), 1e-6);
}

double AdaptiveDispatcher::HedgeDelayFor(const std::string& source) const {
  const AdaptiveOptions& adaptive = runtime_.adaptive;
  if (!adaptive.hedge) return std::numeric_limits<double>::infinity();
  // Hedge delays come from this execution's OWN observations only: the
  // shared state aggregates other queries' progress, which would make a
  // query's timing depend on concurrent traffic.
  auto it = profiles_.find(source);
  if (it == profiles_.end() ||
      it->second.observations < adaptive.hedge_min_samples) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(it->second.LatencyQuantileMs(adaptive.hedge_quantile),
                  adaptive.hedge_min_delay_ms);
}

std::vector<FetchResult> AdaptiveDispatcher::ExecuteFrontier(
    std::vector<FetchRequest> requests, const SkipProbe& probe) {
  const AdaptiveOptions& adaptive = runtime_.adaptive;
  const std::size_t n = requests.size();
  std::vector<FetchResult> results(n);

  // 1. Dynamic relevance: suppress the requests the checker certifies.
  std::vector<std::size_t> dispatch;
  dispatch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (adaptive.dynamic_pruning && probe && probe(i)) {
      FetchResult& skip = results[i];
      skip.tuples =
          Status::Unavailable("suppressed by dynamic relevance check");
      skip.skipped_dynamic = true;
      ++skipped_;
      ++skipped_per_source_[SourceNameOf(requests[i])];
      continue;
    }
    dispatch.push_back(i);
  }

  // 2. Cost-aware ordering: stable-permute the survivors by learned
  // score. The key is a pure function of (score, source name, original
  // index), so the permutation is identical across dispatch modes.
  if (adaptive.reorder && dispatch.size() > 1) {
    std::vector<std::pair<double, std::size_t>> keyed;
    keyed.reserve(dispatch.size());
    for (std::size_t index : dispatch) {
      keyed.emplace_back(ScoreFor(SourceNameOf(requests[index])), index);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const std::pair<double, std::size_t>& a,
                         const std::pair<double, std::size_t>& b) {
                       if (a.first != b.first) return a.first > b.first;
                       const std::string& sa = SourceNameOf(requests[a.second]);
                       const std::string& sb = SourceNameOf(requests[b.second]);
                       if (sa != sb) return sa < sb;
                       return a.second < b.second;
                     });
    for (std::size_t k = 0; k < keyed.size(); ++k) {
      dispatch[k] = keyed[k].second;
    }
  }

  // 3. Build the dispatched batch in permuted order, arming hedge delays
  // and marking batched members (consecutive requests to one source with
  // the same bound positions model one merged source call: members after
  // the first are discounted the non-marginal share of the base latency).
  std::vector<FetchRequest> batch;
  batch.reserve(dispatch.size());
  for (std::size_t k = 0; k < dispatch.size(); ++k) {
    FetchRequest request = requests[dispatch[k]];
    const std::string source = SourceNameOf(request);
    request.hedge_delay_ms = HedgeDelayFor(source);
    request.batch_discount_ms = 0;
    if (adaptive.batch && k > 0) {
      const FetchRequest& prev = requests[dispatch[k - 1]];
      if (prev.source == request.source &&
          prev.query.positions == request.query.positions) {
        request.batch_discount_ms =
            runtime_.latency.LatencyOf(source) *
            std::max(0.0, 1.0 - adaptive.batch_marginal_fraction);
      }
    }
    batch.push_back(std::move(request));
  }

  std::vector<FetchResult> executed = scheduler_->ExecuteBatch(batch);

  // 4. Un-permute, then learn in canonical (caller) order so the
  // profiles — and hence later rounds' hedge delays and scores — are
  // independent of the permutation actually dispatched.
  for (std::size_t k = 0; k < dispatch.size(); ++k) {
    results[dispatch[k]] = std::move(executed[k]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const FetchResult& result = results[i];
    if (result.skipped_dynamic) continue;
    // Only fetches that drove a source call teach us about the source:
    // coalesced followers and breaker fast-fails carry no new signal.
    if (result.attempts == 0) continue;
    const bool failed = !result.tuples.ok();
    const double rows =
        failed ? 0.0 : static_cast<double>(result.tuples.value().size());
    profiles_[SourceNameOf(requests[i])].Observe(result.duration_ms, rows,
                                                 failed, adaptive.ewma_alpha);
  }
  return results;
}

void AdaptiveDispatcher::PublishShared() {
  if (published_ || runtime_.adaptive_state == nullptr) return;
  runtime_.adaptive_state->Absorb(profiles_);
  published_ = true;
}

}  // namespace limcap::runtime
