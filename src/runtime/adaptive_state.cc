#include "runtime/adaptive_state.h"

#include <algorithm>
#include <cmath>

namespace limcap::runtime {

namespace {

std::size_t BucketOf(double latency_ms) {
  if (latency_ms < 1.0) return 0;
  std::size_t bucket = 0;
  double edge = 1.0;
  while (bucket + 1 < SourceProfile::kBuckets && latency_ms >= edge) {
    edge *= 2;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void SourceProfile::Observe(double latency_ms, double rows, bool failed,
                            double alpha) {
  const double a = observations == 0 ? 1.0 : std::clamp(alpha, 0.0, 1.0);
  ewma_latency_ms += a * (latency_ms - ewma_latency_ms);
  ewma_rows += a * (rows - ewma_rows);
  failure_rate += a * ((failed ? 1.0 : 0.0) - failure_rate);
  ++latency_buckets[BucketOf(latency_ms)];
  ++observations;
}

double SourceProfile::LatencyQuantileMs(double quantile) const {
  if (observations == 0) return 0;
  const double target =
      std::clamp(quantile, 0.0, 1.0) * static_cast<double>(observations);
  uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += latency_buckets[i];
    if (static_cast<double>(seen) >= target) {
      // Upper edge of bucket i: 2^i ms (bucket 0 = sub-millisecond).
      return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

double SourceProfile::Score() const {
  // +1 keeps row-free but necessary fetches orderable; the epsilon floor
  // keeps a zero-latency model from dividing by zero.
  return (ewma_rows + 1.0) * (1.0 - failure_rate) /
         std::max(ewma_latency_ms, 1e-6);
}

void AdaptiveState::Absorb(
    const std::map<std::string, SourceProfile>& profiles) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [source, profile] : profiles) {
    if (profile.observations == 0) continue;
    Aggregate& agg = aggregates_[source];
    const double n = static_cast<double>(profile.observations);
    agg.observations += profile.observations;
    // EWMAs stand in for the execution's means here; the aggregate only
    // seeds cold-start ordering, so fidelity beyond "roughly this fast,
    // roughly this useful" buys nothing.
    agg.latency_sum_ms += profile.ewma_latency_ms * n;
    agg.rows_sum += profile.ewma_rows * n;
    agg.failures += profile.failure_rate * n;
    for (std::size_t i = 0; i < SourceProfile::kBuckets; ++i) {
      agg.latency_buckets[i] += profile.latency_buckets[i];
    }
  }
}

std::map<std::string, SourceProfile> AdaptiveState::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, SourceProfile> out;
  for (const auto& [source, agg] : aggregates_) {
    if (agg.observations == 0) continue;
    SourceProfile profile;
    const double n = static_cast<double>(agg.observations);
    profile.observations = agg.observations;
    profile.ewma_latency_ms = agg.latency_sum_ms / n;
    profile.ewma_rows = agg.rows_sum / n;
    profile.failure_rate = agg.failures / n;
    for (std::size_t i = 0; i < SourceProfile::kBuckets; ++i) {
      profile.latency_buckets[i] = agg.latency_buckets[i];
    }
    out.emplace(source, profile);
  }
  return out;
}

std::size_t AdaptiveState::source_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregates_.size();
}

}  // namespace limcap::runtime
