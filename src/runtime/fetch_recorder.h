#ifndef LIMCAP_RUNTIME_FETCH_RECORDER_H_
#define LIMCAP_RUNTIME_FETCH_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/relation.h"

namespace limcap::runtime {

/// Added latency stamped onto synthesized attempt records whose real
/// latency was never observed (cross-query-coalesced fetches that timed
/// out): large enough to exceed any finite per-attempt deadline, so a
/// replay of the record times out exactly like the original did.
inline constexpr double kForcedTimeoutLatencyMs = 1e12;

/// The recording half of the capture/replay subsystem's contract with the
/// runtime (the replay half lives in src/replay/, which the runtime must
/// not depend on — hence this abstract sink). When RuntimeOptions::recorder
/// is set, the FetchScheduler feeds it one Fetch per dispatched source
/// call: the canonical query, and per retry attempt the injected latency
/// and the outcome (rows decoded to values, so the record is independent
/// of any session dictionary).
///
/// Everything else — retries, backoff jitter, breaker admission,
/// coalescing, the simulated timeline — is deterministic given
/// RuntimeOptions and the seed, so it is re-derived on replay rather than
/// recorded (the Execution Reconstruction recipe: record only the
/// nondeterministic boundary, which for this mediator is exactly the
/// source-interaction surface).
class FetchRecorder {
 public:
  /// One attempt of a fetch's retry loop, as observed at the source-call
  /// boundary.
  struct Attempt {
    /// Fault-injected extra latency (TimedSource::Timing); replayed
    /// verbatim so the simulated clock evolves identically.
    double added_latency_ms = 0;
    /// The attempt's simulated latency exceeded the per-attempt deadline:
    /// the scheduler discarded the outcome unread, so none is recorded.
    bool discarded = false;
    /// The attempt returned rows (below). When false and not discarded,
    /// `code`/`message` carry the error the source raised.
    bool ok = false;
    StatusCode code = StatusCode::kOk;
    std::string message;
    /// Returned rows decoded to values, in the source's return order
    /// (which fixes the interning order, and with it the fingerprint).
    std::vector<relational::Row> rows;
  };

  /// One dispatched (source, query) call with its full attempt history.
  struct Fetch {
    std::string source;
    /// The canonical SourceQuery: ascending view-schema positions plus
    /// the bound values, decoded from the dispatching dictionary.
    std::vector<uint32_t> positions;
    std::vector<Value> values;
    std::vector<Attempt> attempts;
    /// Answered by another query's identical in-flight call (FetchGovernor
    /// cross-query coalescing): the single attempt is a synthesized
    /// summary of the shared outcome, not observed source traffic.
    bool cross_coalesced = false;
  };

  virtual ~FetchRecorder() = default;

  /// Called on the driver thread at the merge point, in batch order, once
  /// per dispatched leader. Coalesced followers and breaker-refused
  /// fetches make no source call and are not recorded — replay re-derives
  /// them from the recorded outcomes and the shared seed.
  virtual void RecordFetch(Fetch fetch) = 0;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_FETCH_RECORDER_H_
