#include "runtime/fetch_governor.h"

#include <algorithm>
#include <utility>

namespace limcap::runtime {

void FetchGovernor::Acquire(const std::string& source) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto has_slot = [&] {
    if (options_.max_in_flight != 0 &&
        global_in_flight_ >= options_.max_in_flight) {
      return false;
    }
    if (options_.per_source_max_in_flight != 0) {
      auto it = per_source_in_flight_.find(source);
      if (it != per_source_in_flight_.end() &&
          it->second >= options_.per_source_max_in_flight) {
        return false;
      }
    }
    return true;
  };
  if (!has_slot()) {
    ++stats_.waited;
    slot_freed_.wait(lock, has_slot);
  }
  ++global_in_flight_;
  ++per_source_in_flight_[source];
  ++stats_.acquired;
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, global_in_flight_);
}

void FetchGovernor::Release(const std::string& source) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (global_in_flight_ > 0) --global_in_flight_;
    auto it = per_source_in_flight_.find(source);
    if (it != per_source_in_flight_.end() && it->second > 0) {
      if (--it->second == 0) per_source_in_flight_.erase(it);
    }
  }
  // Any waiter might be eligible now (the freed slot could satisfy either
  // the global or a per-source bound), so wake them all.
  slot_freed_.notify_all();
}

FetchGovernor::Ticket FetchGovernor::Begin(const std::string& key) {
  Ticket ticket;
  if (!options_.cross_query_coalesce) {
    // Private entry: the caller leads unconditionally and Complete only
    // publishes to itself.
    ticket.leader = true;
    ticket.entry = std::make_shared<InFlight>();
    return ticket;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = in_flight_keys_.find(key);
  if (it != in_flight_keys_.end()) {
    ticket.leader = false;
    ticket.entry = it->second;
    ++stats_.cross_query_coalesced;
    return ticket;
  }
  ticket.leader = true;
  ticket.entry = std::make_shared<InFlight>();
  in_flight_keys_.emplace(key, ticket.entry);
  return ticket;
}

void FetchGovernor::Complete(const std::string& key, const Ticket& ticket,
                             Result<relational::Relation> outcome) {
  if (options_.cross_query_coalesce) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_keys_.find(key);
    if (it != in_flight_keys_.end() && it->second == ticket.entry) {
      in_flight_keys_.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lock(ticket.entry->mutex);
    ticket.entry->outcome = std::move(outcome);
    ticket.entry->done = true;
  }
  ticket.entry->done_cv.notify_all();
}

Result<relational::Relation> FetchGovernor::Wait(const Ticket& ticket) {
  std::unique_lock<std::mutex> lock(ticket.entry->mutex);
  ticket.entry->done_cv.wait(lock, [&] { return ticket.entry->done; });
  return ticket.entry->outcome;
}

FetchGovernor::Stats FetchGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace limcap::runtime
