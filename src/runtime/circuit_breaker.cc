#include "runtime/circuit_breaker.h"

namespace limcap::runtime {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::Allow(double now_ms) {
  if (!policy_.enabled()) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_ms < open_until_ms_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time; concurrent batch-mates fail fast.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!policy_.enabled()) return;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::RecordFailure(double now_ms) {
  if (!policy_.enabled()) return;
  ++consecutive_failures_;
  probe_in_flight_ = false;
  if (state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_ms_ = now_ms + policy_.cooldown_ms;
  }
}

}  // namespace limcap::runtime
