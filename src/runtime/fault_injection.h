#ifndef LIMCAP_RUNTIME_FAULT_INJECTION_H_
#define LIMCAP_RUNTIME_FAULT_INJECTION_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "runtime/timed_source.h"

namespace limcap::runtime {

/// What a FaultInjectingSource does to the calls that reach it. Every
/// stochastic knob is seeded and keyed to the query (not to global call
/// order), so fault decisions are reproducible even when the scheduler
/// dispatches calls concurrently in racy real-time order.
struct FaultSpec {
  /// Fail the first N Execute calls overall — the legacy UnreliableSource
  /// semantics, deterministic under serial dispatch. Under concurrent
  /// dispatch the *count* of injected failures is exact but *which*
  /// queries absorb them follows arrival order; prefer
  /// `fail_first_per_query` for order-independent determinism.
  std::size_t fail_first_calls = 0;
  /// Fail the first N attempts of each distinct query (keyed by bound
  /// positions + values). With a retry policy allowing more than N
  /// attempts, every query eventually succeeds — the fail-then-recover
  /// shape — independent of dispatch order.
  std::size_t fail_first_per_query = 0;
  /// Per-attempt failure probability, drawn from Rng(seed, query,
  /// attempt#) — order-independent.
  double fail_rate = 0;
  /// Probability that a call's simulated latency spikes by `spike_ms`
  /// (drawn like `fail_rate`). Spikes beyond the retry policy's deadline
  /// surface as timeouts.
  double latency_spike_rate = 0;
  double latency_spike_ms = 0;
  /// Truncate answers to this many tuples — a result-bounded interface
  /// in the Amarilli–Benedikt sense, or a flaky pagination cutoff.
  std::size_t max_result_tuples = std::numeric_limits<std::size_t>::max();
  uint64_t seed = 0;
};

/// Failure-injection decorator generalizing the old UnreliableSource:
/// injected unavailability (fail-first-N globally or per query, seeded
/// fail rates), seeded simulated-latency spikes, and result truncation.
/// Internally synchronized — the fetch scheduler may call it from many
/// threads.
class FaultInjectingSource : public TimedSource {
 public:
  FaultInjectingSource(std::unique_ptr<capability::Source> inner,
                       FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec) {}

  const capability::SourceView& view() const override {
    return inner_->view();
  }

  Result<relational::Relation> ExecuteTimed(
      const capability::SourceQuery& query, Timing* timing) override;

  struct Stats {
    std::size_t calls = 0;
    std::size_t injected_failures = 0;
    std::size_t latency_spikes = 0;
    std::size_t truncations = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  std::size_t attempts() const { return stats().calls; }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<capability::Source> inner_;
  FaultSpec spec_;
  Stats stats_;
  /// Per-query attempt counters, keyed by a value-level hash of the
  /// query (dictionary-independent: the same bindings hash equal no
  /// matter which session or private dictionary encoded them).
  std::map<uint64_t, std::size_t> per_query_attempts_;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_FAULT_INJECTION_H_
