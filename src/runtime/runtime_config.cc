#include "runtime/runtime_config.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/text_table.h"

namespace limcap::runtime {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#' || c == '%') break;
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status LineError(std::size_t line_number, const std::string& what) {
  return Status::InvalidArgument("runtime config line " +
                                 std::to_string(line_number) + ": " + what);
}

Result<double> ParseNumber(const std::string& token, std::size_t line_number) {
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    return LineError(line_number, "malformed number '" + token + "'");
  }
  return value;
}

Result<bool> ParseSwitch(const std::string& token, std::size_t line_number) {
  if (token == "on" || token == "true" || token == "1") return true;
  if (token == "off" || token == "false" || token == "0") return false;
  return LineError(line_number, "expected on|off, got '" + token + "'");
}

/// Applies one `key=value` policy setting.
Status ApplyPolicyKey(const std::string& setting, RetryPolicy* policy,
                      std::size_t line_number) {
  auto eq = setting.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == setting.size()) {
    return LineError(line_number,
                     "expected key=value, got '" + setting + "'");
  }
  const std::string key = setting.substr(0, eq);
  double value = 0;
  LIMCAP_ASSIGN_OR_RETURN(value,
                          ParseNumber(setting.substr(eq + 1), line_number));
  if (value < 0) {
    return LineError(line_number, "'" + key + "' must be non-negative");
  }
  if (key == "attempts") {
    if (value < 1) return LineError(line_number, "attempts must be >= 1");
    policy->max_attempts = static_cast<std::size_t>(value);
  } else if (key == "backoff_ms") {
    policy->backoff_base_ms = value;
  } else if (key == "backoff_max_ms") {
    policy->backoff_max_ms = value;
  } else if (key == "jitter") {
    policy->jitter = value;
  } else if (key == "deadline_ms") {
    policy->deadline_ms =
        value == 0 ? std::numeric_limits<double>::infinity() : value;
  } else if (key == "breaker_failures") {
    policy->breaker.failure_threshold = static_cast<std::size_t>(value);
  } else if (key == "breaker_cooldown_ms") {
    policy->breaker.cooldown_ms = value;
  } else {
    return LineError(line_number, "unknown policy key '" + key + "'");
  }
  return Status::OK();
}

std::string FormatNumber(double value) {
  if (std::isinf(value)) return "none";
  char buffer[48];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%g", value);
  }
  return buffer;
}

std::string JsonNumber(double value) {
  // JSON has no infinity; deadline "none" renders as null.
  return std::isinf(value) ? "null" : FormatNumber(value);
}

}  // namespace

Result<RuntimeOptions> ParseRuntimeConfig(std::string_view text) {
  RuntimeOptions options;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "concurrent" || directive == "coalesce") {
      if (tokens.size() != 2) {
        return LineError(line_number, directive + " takes one on|off value");
      }
      bool value = false;
      LIMCAP_ASSIGN_OR_RETURN(value, ParseSwitch(tokens[1], line_number));
      (directive == "concurrent" ? options.concurrent : options.coalesce) =
          value;
    } else if (directive == "max_in_flight" ||
               directive == "per_source_max_in_flight" ||
               directive == "seed") {
      if (tokens.size() != 2) {
        return LineError(line_number, directive + " takes one number");
      }
      double value = 0;
      LIMCAP_ASSIGN_OR_RETURN(value, ParseNumber(tokens[1], line_number));
      if (value < 0) {
        return LineError(line_number, directive + " must be non-negative");
      }
      if (directive == "max_in_flight") {
        options.max_in_flight = static_cast<std::size_t>(value);
      } else if (directive == "per_source_max_in_flight") {
        options.per_source_max_in_flight = static_cast<std::size_t>(value);
      } else {
        options.seed = static_cast<uint64_t>(value);
      }
    } else if (directive == "latency") {
      if (tokens.size() != 3) {
        return LineError(line_number, "latency takes a view name (or "
                                      "'default') and a millisecond value");
      }
      double value = 0;
      LIMCAP_ASSIGN_OR_RETURN(value, ParseNumber(tokens[2], line_number));
      if (value < 0) {
        return LineError(line_number, "latency must be non-negative");
      }
      if (tokens[1] == "default") {
        options.latency.default_latency_ms = value;
      } else {
        options.latency.per_source_ms[tokens[1]] = value;
      }
    } else if (directive == "default") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        LIMCAP_RETURN_NOT_OK(
            ApplyPolicyKey(tokens[i], &options.retry, line_number));
      }
    } else if (directive == "view") {
      if (tokens.size() < 2) {
        return LineError(line_number, "view takes a view name");
      }
      // Start from the default policy as configured so far.
      auto [it, inserted] =
          options.per_source.try_emplace(tokens[1], options.retry);
      (void)inserted;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        LIMCAP_RETURN_NOT_OK(ApplyPolicyKey(tokens[i], &it->second,
                                            line_number));
      }
    } else {
      return LineError(line_number, "unknown directive '" + directive + "'");
    }
  }
  return options;
}

std::string RenderRuntimePolicies(const std::vector<std::string>& views,
                                  const RuntimeOptions& options, bool json) {
  if (json) {
    std::string out = "[";
    bool first = true;
    for (const std::string& view : views) {
      const RetryPolicy& policy = options.PolicyFor(view);
      if (!first) out += ",";
      first = false;
      out += "\n  {\"view\": \"" + view + "\"";
      out += ", \"attempts\": " + std::to_string(policy.max_attempts);
      out += ", \"backoff_ms\": " + JsonNumber(policy.backoff_base_ms);
      out += ", \"backoff_max_ms\": " + JsonNumber(policy.backoff_max_ms);
      out += ", \"jitter\": " + JsonNumber(policy.jitter);
      out += ", \"deadline_ms\": " + JsonNumber(policy.deadline_ms);
      out += ", \"breaker_failures\": " +
             std::to_string(policy.breaker.failure_threshold);
      out += ", \"breaker_cooldown_ms\": " +
             JsonNumber(policy.breaker.cooldown_ms);
      out += ", \"latency_ms\": " +
             JsonNumber(options.latency.LatencyOf(view));
      out += "}";
    }
    out += "\n]\n";
    return out;
  }
  TextTable table({"View", "Attempts", "Backoff ms", "Max ms", "Jitter",
                   "Deadline ms", "Breaker", "Cooldown ms", "Latency ms"});
  for (const std::string& view : views) {
    const RetryPolicy& policy = options.PolicyFor(view);
    table.AddRow({view, std::to_string(policy.max_attempts),
                  FormatNumber(policy.backoff_base_ms),
                  FormatNumber(policy.backoff_max_ms),
                  FormatNumber(policy.jitter),
                  FormatNumber(policy.deadline_ms),
                  policy.breaker.enabled()
                      ? std::to_string(policy.breaker.failure_threshold)
                      : "off",
                  FormatNumber(policy.breaker.cooldown_ms),
                  FormatNumber(options.latency.LatencyOf(view))});
  }
  std::string out = table.ToString();
  out += "dispatch: ";
  out += options.concurrent ? "concurrent" : "serial";
  out += ", max_in_flight=" + std::to_string(options.max_in_flight);
  out += ", per_source_max_in_flight=" +
         std::to_string(options.per_source_max_in_flight);
  out += options.coalesce ? ", coalesce=on" : ", coalesce=off";
  out += ", seed=" + std::to_string(options.seed);
  out += ", default latency=" +
         FormatNumber(options.latency.default_latency_ms) + " ms\n";
  return out;
}

}  // namespace limcap::runtime
