#ifndef LIMCAP_RUNTIME_LATENCY_MODEL_H_
#define LIMCAP_RUNTIME_LATENCY_MODEL_H_

#include <map>
#include <string>

#include "capability/access_log.h"

namespace limcap::runtime {

/// Per-source round-trip latencies (milliseconds). In a Web integration
/// system the network round trips dominate execution cost; this model
/// turns an AccessLog into wall-clock estimates under different issue
/// strategies, and gives the fetch scheduler its simulated clock (sources
/// here are in-memory stand-ins for autonomous Web services, so time is
/// simulated, deterministically, instead of slept).
struct LatencyModel {
  double default_latency_ms = 50;
  std::map<std::string, double> per_source_ms;

  double LatencyOf(const std::string& source) const {
    auto it = per_source_ms.find(source);
    return it == per_source_ms.end() ? default_latency_ms : it->second;
  }
};

/// Estimated makespans of a logged execution. The evaluator tags every
/// query with its fetch round; queries within one round depend only on
/// earlier rounds' bindings, so they can be issued concurrently.
struct MakespanReport {
  /// One query at a time (a naive sequential wrapper).
  double sequential_ms = 0;
  /// Unlimited concurrency within each round: Σ_round max latency.
  double parallel_ms = 0;
  /// Each source serializes its own requests, different sources run in
  /// parallel: Σ_round max_source (count × latency).
  double per_source_serial_ms = 0;
  std::size_t rounds = 0;

  double ParallelSpeedup() const {
    return parallel_ms > 0 ? sequential_ms / parallel_ms : 1.0;
  }
};

/// Computes the makespans of `log` under `model`.
MakespanReport EstimateMakespan(const capability::AccessLog& log,
                                const LatencyModel& model);

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_LATENCY_MODEL_H_
