#include "runtime/fault_injection.h"

#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"

namespace limcap::runtime {

namespace {

/// Dictionary-independent query identity: bound positions plus the bound
/// *values* (decoded through the query's own dictionary).
uint64_t QueryKey(const capability::SourceQuery& query) {
  std::size_t seed = 0x5eedfau;
  std::hash<Value> value_hash;
  for (std::size_t i = 0; i < query.positions.size(); ++i) {
    HashCombine(seed, query.positions[i]);
    if (query.dict != nullptr) {
      HashCombine(seed, value_hash(query.dict->Get(query.ids[i])));
    } else {
      HashCombine(seed, query.ids[i]);
    }
  }
  return seed;
}

/// A per-decision Rng seeded by (spec seed, query, attempt, salt):
/// independent of dispatch order and of every other decision.
Rng DecisionRng(uint64_t seed, uint64_t query_key, std::size_t attempt,
                uint64_t salt) {
  return Rng(seed ^ (query_key * 0x9e3779b97f4a7c15ULL) ^
             (static_cast<uint64_t>(attempt) << 32) ^ salt);
}

}  // namespace

Result<relational::Relation> FaultInjectingSource::ExecuteTimed(
    const capability::SourceQuery& query, Timing* timing) {
  const uint64_t key = QueryKey(query);
  std::size_t call_number;
  std::size_t attempt;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    call_number = ++stats_.calls;
    attempt = ++per_query_attempts_[key];
  }

  bool spike = spec_.latency_spike_rate > 0 &&
               DecisionRng(spec_.seed, key, attempt, 0x51u)
                   .Chance(spec_.latency_spike_rate);
  if (spike) timing->added_latency_ms += spec_.latency_spike_ms;

  std::string reason;
  if (call_number <= spec_.fail_first_calls) {
    reason = "injected failure (call " + std::to_string(call_number) + "/" +
             std::to_string(spec_.fail_first_calls) + ")";
  } else if (attempt <= spec_.fail_first_per_query) {
    reason = "injected failure (attempt " + std::to_string(attempt) + "/" +
             std::to_string(spec_.fail_first_per_query) + " for this query)";
  } else if (spec_.fail_rate > 0 &&
             DecisionRng(spec_.seed, key, attempt, 0xfa11u)
                 .Chance(spec_.fail_rate)) {
    reason = "injected failure (seeded rate)";
  }
  if (!reason.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.injected_failures;
    if (spike) ++stats_.latency_spikes;
    return Status::Unavailable("source " + view().name() + " unavailable: " +
                               reason);
  }

  auto answered = inner_->Execute(query);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (spike) ++stats_.latency_spikes;
    if (answered.ok() && answered->size() > spec_.max_result_tuples) {
      ++stats_.truncations;
    }
  }
  if (!answered.ok() || answered->size() <= spec_.max_result_tuples) {
    return answered;
  }
  // Result truncation: keep the first max_result_tuples rows.
  relational::Relation full = std::move(answered).value();
  relational::Relation truncated(full.schema(), full.dict_ptr());
  relational::IdRow row;
  for (std::size_t pos = 0; pos < spec_.max_result_tuples; ++pos) {
    full.GatherRowIds(pos, &row);
    truncated.InsertIdsUnsafe(row);
  }
  return truncated;
}

}  // namespace limcap::runtime
