#ifndef LIMCAP_RUNTIME_RUNTIME_CONFIG_H_
#define LIMCAP_RUNTIME_RUNTIME_CONFIG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "runtime/options.h"

namespace limcap::runtime {

/// Parses a runtime configuration file into RuntimeOptions. Line-based;
/// `#` or `%` start a comment, blank lines are skipped:
///
///   concurrent on                  % dispatch frontiers on a thread pool
///   max_in_flight 16               % global in-flight cap (0 = hardware)
///   per_source_max_in_flight 4     % per-source in-flight cap (0 = none)
///   coalesce on                    % merge identical in-flight queries
///   seed 7                         % backoff-jitter seed
///   latency default 50             % LatencyModel base round trip, ms
///   latency v4 200                 % per-source round trip, ms
///   default attempts=3 backoff_ms=25 deadline_ms=500
///   view v4 attempts=5 breaker_failures=3 breaker_cooldown_ms=5000
///
/// Policy keys (for `default` and `view NAME` lines): attempts,
/// backoff_ms, backoff_max_ms, jitter, deadline_ms, breaker_failures,
/// breaker_cooldown_ms. A `view` line starts from the default policy as
/// parsed so far and overrides the listed keys. Unknown directives or
/// keys fail with InvalidArgument naming the line.
Result<RuntimeOptions> ParseRuntimeConfig(std::string_view text);

/// Renders the effective per-view fetch policy — attempts, backoff,
/// deadline, breaker threshold/cooldown, simulated latency — for each of
/// `views`, as a text table or JSON rows. Views without an override show
/// the default policy.
std::string RenderRuntimePolicies(const std::vector<std::string>& views,
                                  const RuntimeOptions& options, bool json);

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_RUNTIME_CONFIG_H_
