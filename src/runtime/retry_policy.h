#ifndef LIMCAP_RUNTIME_RETRY_POLICY_H_
#define LIMCAP_RUNTIME_RETRY_POLICY_H_

#include <algorithm>
#include <cstddef>
#include <limits>

#include "common/rng.h"

namespace limcap::runtime {

/// When (and for how long) the fetch scheduler stops talking to a source
/// that keeps failing. Disabled by default (`failure_threshold` 0): every
/// query is attempted. With a threshold, `failure_threshold` consecutive
/// permanently-failed fetches open the breaker; while open, fetches to the
/// source fail fast (Unavailable) without a source call; after
/// `cooldown_ms` of simulated time one probe is let through (half-open) —
/// success closes the breaker, failure re-opens it for another cooldown.
struct BreakerPolicy {
  std::size_t failure_threshold = 0;
  double cooldown_ms = 5000;

  bool enabled() const { return failure_threshold > 0; }
};

/// Per-source fetch policy: attempts, backoff, per-attempt deadline, and
/// the circuit breaker. The defaults reproduce the legacy evaluator
/// semantics exactly: one attempt, no deadline, no breaker.
///
/// All times are simulated milliseconds on the scheduler's LatencyModel
/// clock — backoffs are added to the simulated makespan, never slept, so
/// retry-heavy runs stay as fast (and as deterministic) as clean ones.
struct RetryPolicy {
  /// Total tries per fetch, including the first (minimum 1).
  std::size_t max_attempts = 1;
  /// Exponential backoff before retry k (k ≥ 2): base × 2^(k-2), capped
  /// at `backoff_max_ms`, then stretched by up to `jitter` (a fraction)
  /// drawn from the scheduler's seeded Rng — deterministic per fetch.
  double backoff_base_ms = 25;
  double backoff_max_ms = 1000;
  double jitter = 0.2;
  /// Per-attempt simulated deadline: an attempt whose simulated latency
  /// exceeds this counts as a timeout and its answer is discarded; the
  /// attempt costs exactly `deadline_ms` of simulated time.
  double deadline_ms = std::numeric_limits<double>::infinity();
  BreakerPolicy breaker;

  /// Simulated backoff inserted before attempt `attempt` (2-based).
  double BackoffBeforeAttempt(std::size_t attempt, Rng& rng) const {
    double backoff = backoff_base_ms;
    for (std::size_t i = 2; i < attempt; ++i) backoff *= 2;
    backoff = std::min(backoff, backoff_max_ms);
    if (jitter > 0) backoff *= 1.0 + jitter * rng.NextDouble();
    return backoff;
  }
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_RETRY_POLICY_H_
