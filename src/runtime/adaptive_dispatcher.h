#ifndef LIMCAP_RUNTIME_ADAPTIVE_DISPATCHER_H_
#define LIMCAP_RUNTIME_ADAPTIVE_DISPATCHER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/adaptive_state.h"
#include "runtime/fetch_scheduler.h"
#include "runtime/options.h"

namespace limcap::runtime {

/// The runtime-adaptive dispatch layer between the source-driven
/// evaluator and the fetch scheduler (ROADMAP item 3; the program of
/// Benedikt, Gottlob & Senellart's "Determining Relevance of Accesses at
/// Runtime"). Per frontier it:
///
///   1. asks the evaluator-provided probe which requests the dynamic
///      relevance checker certifies as skippable, and suppresses those
///      (no source call, no log record, no budget spend);
///   2. permutes the survivors by a learned expected-useful-rows-per-ms
///      score — deterministic: (score desc, source name, original index),
///      with scores from this execution's OWN observations only (the
///      shared AdaptiveState is publish-only: the scheduler's merge
///      interns result values in dispatch order, so a permutation shaped
///      by other queries' history would break serve-vs-solo
///      OrderedFingerprint bit-identity);
///   3. marks consecutive same-(source, bound positions) requests as one
///      batched source call (timing discount on the members);
///   4. arms a hedge delay at each source's learned latency quantile.
///
/// Results come back positionally aligned with the caller's order, and
/// profile updates happen in that canonical order on the driver thread —
/// so everything the session can observe is a pure function of the
/// request stream, independent of dispatch mode. The adaptive property
/// suite pins OrderedFingerprint bit-identity across serial /
/// parallel-eval / concurrent-fetch / serve execution.
class AdaptiveDispatcher {
 public:
  /// True when the dynamic relevance checker certified the frontier
  /// request at this index as answer-preserving to skip.
  using SkipProbe = std::function<bool(std::size_t)>;

  /// `scheduler` is borrowed and must outlive the dispatcher; `runtime`
  /// must be the scheduler's own options (the latency model prices batch
  /// discounts, `runtime.adaptive` configures everything else).
  AdaptiveDispatcher(const RuntimeOptions& runtime, FetchScheduler* scheduler);

  /// Executes one frontier adaptively. `probe` may be null (no dynamic
  /// pruning). Results align with `requests`; a skipped request's result
  /// has `skipped_dynamic` set and an error Status for tuples — the
  /// caller must not commit it.
  std::vector<FetchResult> ExecuteFrontier(std::vector<FetchRequest> requests,
                                           const SkipProbe& probe);

  /// This execution's learned per-source profiles (canonical order).
  const std::map<std::string, SourceProfile>& profiles() const {
    return profiles_;
  }
  std::size_t skipped() const { return skipped_; }
  const std::map<std::string, std::size_t>& skipped_per_source() const {
    return skipped_per_source_;
  }

  /// Folds this execution's profiles into the shared AdaptiveState (when
  /// one is wired in); call once, after the execution completes.
  void PublishShared();

 private:
  double HedgeDelayFor(const std::string& source) const;
  double ScoreFor(const std::string& source) const;

  RuntimeOptions runtime_;
  FetchScheduler* scheduler_;
  std::map<std::string, SourceProfile> profiles_;
  std::map<std::string, std::size_t> skipped_per_source_;
  std::size_t skipped_ = 0;
  bool published_ = false;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_ADAPTIVE_DISPATCHER_H_
