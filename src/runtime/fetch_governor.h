#ifndef LIMCAP_RUNTIME_FETCH_GOVERNOR_H_
#define LIMCAP_RUNTIME_FETCH_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "relational/relation.h"

namespace limcap::runtime {

/// The server-wide source-access governor. One FetchGovernor is shared by
/// every concurrently executing query of a ServeSession, lifting two
/// things that used to be per-query properties of the FetchScheduler up
/// to the whole server:
///
///   * **In-flight caps.** The paper's sources are autonomous services
///     with their own admission limits; a server running N queries must
///     not multiply those limits by N. Acquire/Release bracket every
///     real source call, enforcing a global and a per-source bound
///     across all queries (each scheduler still applies its own local
///     caps on top).
///
///   * **Cross-query coalescing.** When two queries have the identical
///     source query in flight at the same moment (same source, same
///     bound positions, same *values*), only the first performs the
///     call; the second blocks on the first's outcome and reuses the
///     returned tuples. Keys are value-level — per-query dictionaries
///     assign different ids to the same value, so scheduler-local id
///     keys cannot match across queries.
///
/// Determinism contract: coalescing shares only the *outcome* (the tuple
/// set / error, which is deterministic for a given source query — the
/// catalog's sources, including the fault-injecting ones, are
/// query-keyed), never timing or retry accounting, and each scheduler
/// re-keys shared tuples onto its own session dictionary at its ordered
/// merge point. A query answered through a governor is therefore
/// bit-identical (exec::OrderedFingerprint) to the same query answered
/// alone; only FetchReport cost accounting shows the saved work.
///
/// Thread safety: everything here is mutex-guarded; Acquire and Wait
/// block. A leader never waits on a follower (followers hold no permits
/// while waiting), so the wait graph is acyclic and the governor cannot
/// deadlock the pools above it.
class FetchGovernor {
 public:
  struct Options {
    /// Server-wide cap on concurrently running source calls; 0 =
    /// unlimited (schedulers' own caps still apply).
    std::size_t max_in_flight = 64;
    /// Server-wide per-source cap; 0 = unlimited.
    std::size_t per_source_max_in_flight = 8;
    /// Share identical in-flight source queries across queries.
    bool cross_query_coalesce = true;
  };

  struct Stats {
    /// Permits granted (= real source calls governed).
    uint64_t acquired = 0;
    /// Acquire calls that had to block for a free slot.
    uint64_t waited = 0;
    /// Fetches answered by another query's identical in-flight call.
    uint64_t cross_query_coalesced = 0;
    /// High-water mark of concurrently held permits.
    std::size_t peak_in_flight = 0;
  };

  FetchGovernor() : FetchGovernor(Options()) {}
  explicit FetchGovernor(Options options) : options_(options) {}

  FetchGovernor(const FetchGovernor&) = delete;
  FetchGovernor& operator=(const FetchGovernor&) = delete;

  /// Blocks until both the global and `source`'s per-source budget have
  /// a free slot, then claims one of each.
  void Acquire(const std::string& source);
  void Release(const std::string& source);

  /// One published in-flight fetch. The outcome relation (on success) is
  /// encoded against the leader's private per-fetch dictionary, which is
  /// immutable once the leader completes — followers may re-key from it
  /// concurrently (dictionary reads are thread-safe; only Intern is
  /// confined to an owner).
  struct InFlight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    Result<relational::Relation> outcome = Status::Internal("in flight");
  };

  /// The two roles Begin can hand out.
  struct Ticket {
    bool leader = false;
    std::shared_ptr<InFlight> entry;
  };

  /// Registers interest in `key` (the canonical value-level source
  /// query). The first caller becomes the leader and MUST call Complete
  /// exactly once; later callers (while the leader is in flight) get a
  /// follower ticket to Wait on. With cross_query_coalesce off, every
  /// caller is a leader over a private entry.
  Ticket Begin(const std::string& key);

  /// Publishes the leader's outcome and retires the key — the window
  /// closes, so a later identical query performs its own call (this is
  /// in-flight sharing, not a result cache).
  void Complete(const std::string& key, const Ticket& ticket,
                Result<relational::Relation> outcome);

  /// Follower side: blocks until the leader completes, then returns the
  /// shared outcome.
  static Result<relational::Relation> Wait(const Ticket& ticket);

  const Options& options() const { return options_; }
  Stats stats() const;

 private:
  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  std::size_t global_in_flight_ = 0;
  std::map<std::string, std::size_t> per_source_in_flight_;
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_keys_;
  Stats stats_;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_FETCH_GOVERNOR_H_
