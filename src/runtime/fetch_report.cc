#include "runtime/fetch_report.h"

#include <cstdio>

#include "common/text_table.h"

namespace limcap::runtime {

namespace {

std::string Ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  return buffer;
}

}  // namespace

std::string FetchReport::ToString() const {
  TextTable table({"Source", "Attempts", "OK", "Failed", "Retries",
                   "Timeouts", "Coalesced", "Skipped", "Busy ms", "Breaker"});
  for (const auto& [source, stats] : per_source) {
    table.AddRow({source, std::to_string(stats.attempts),
                  std::to_string(stats.successes),
                  std::to_string(stats.failed_queries),
                  std::to_string(stats.retries),
                  std::to_string(stats.timeouts),
                  std::to_string(stats.coalesced_hits),
                  std::to_string(stats.breaker_skips),
                  Ms(stats.simulated_busy_ms),
                  BreakerStateToString(stats.breaker_state)});
  }
  std::string out = table.ToString();
  out += "simulated makespan: " + Ms(simulated_makespan_ms) +
         " ms (sequential: " + Ms(simulated_sequential_ms) + " ms, " +
         std::to_string(batches) + " batches)\n";
  if (cross_query_coalesced > 0) {
    out += "cross-query coalesced: " + std::to_string(cross_query_coalesced) +
           " fetches reused other queries' in-flight calls\n";
  }
  if (skipped_dynamic + hedged + batched_calls > 0) {
    out += "adaptive: " + std::to_string(skipped_dynamic) +
           " skipped (dynamic relevance), " + std::to_string(hedged) +
           " hedged (" + std::to_string(hedge_wins) + " rescued), " +
           std::to_string(batched_calls) + " batched\n";
  }
  if (degraded()) {
    out += "DEGRADED: failed views:";
    for (const std::string& view : failed_views) out += " " + view;
    out += "\n";
    for (const std::string& connection : degraded_connections) {
      out += "  possibly under-answered: " + connection + "\n";
    }
  }
  return out;
}

}  // namespace limcap::runtime
