#ifndef LIMCAP_RUNTIME_FETCH_SCHEDULER_H_
#define LIMCAP_RUNTIME_FETCH_SCHEDULER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "capability/source.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "runtime/circuit_breaker.h"
#include "runtime/fetch_report.h"
#include "runtime/options.h"

namespace limcap::runtime {

/// One source query the evaluator wants answered. `query` is encoded
/// against the session dictionary.
struct FetchRequest {
  capability::Source* source = nullptr;
  capability::SourceQuery query;
  /// Adaptive-dispatch hints (runtime/adaptive_dispatcher.h). The inert
  /// defaults reproduce plain dispatch exactly; only timing is ever
  /// affected — answers stay a pure function of the query.
  ///
  /// Hedge: when a fetch's simulated latency overshoots this delay, a
  /// duplicate call to the same source is modeled after the delay and
  /// the first arrival wins, so the effective latency becomes
  /// min(full, hedge_delay + base). Infinity = never hedge.
  double hedge_delay_ms = std::numeric_limits<double>::infinity();
  /// Batched member (after the first) of one merged source call: its
  /// simulated duration is discounted by this much (the saved per-call
  /// overhead), clamped at zero. Deadlines still see the undiscounted
  /// latency — batching cannot rescue a timeout.
  double batch_discount_ms = 0;
};

/// One request's outcome. `tuples` is encoded against the session
/// dictionary on success; all times are simulated milliseconds.
struct FetchResult {
  Result<relational::Relation> tuples = Status::Internal("not executed");
  std::size_t attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  /// Answered by an identical in-flight request's source call.
  bool coalesced = false;
  /// Answered by ANOTHER query's identical in-flight source call
  /// (FetchGovernor cross-query coalescing; concurrent dispatch only).
  bool cross_coalesced = false;
  /// Failed fast by an open circuit breaker (no source call made).
  bool breaker_skipped = false;
  /// Suppressed by the adaptive dispatcher's dynamic relevance check (no
  /// source call made; carries a skip certificate on the evaluator side).
  /// Synthesized by AdaptiveDispatcher — the scheduler never sets it.
  bool skipped_dynamic = false;
  /// A hedge fired for this fetch (some attempt overshot its hedge
  /// delay); `hedge_win` additionally means the hedge rescued an attempt
  /// that would have exceeded its deadline.
  bool hedged = false;
  bool hedge_win = false;
  /// Member (after the first) of one batched source call.
  bool batched = false;
  /// Attempt latencies + backoffs for this fetch.
  double duration_ms = 0;
  /// Position on the execution's simulated timeline.
  double start_ms = 0;
  double finish_ms = 0;
};

/// The asynchronous source-access runtime between the evaluators and the
/// SourceCatalog. ExecuteBatch takes one fetch round's frontier of source
/// queries and:
///
///   * coalesces identical queries into one source call;
///   * fails fast the queries whose source's circuit breaker is open;
///   * dispatches the rest — concurrently on a common/thread_pool under
///     the global and per-source in-flight caps, or strictly in order
///     when `concurrent` is off — retrying each per its RetryPolicy
///     (deadline, bounded attempts, seeded exponential backoff);
///   * merges the results back on the calling thread, IN BATCH ORDER,
///     re-keyed to the session dictionary.
///
/// Determinism and the single-writer contract: worker threads only ever
/// call Source::Execute with a query encoded against a private per-fetch
/// dictionary; the session ValueDictionary, the circuit breakers, the
/// report, and the simulated clock are touched only by the calling
/// (driver) thread. Because the merge happens in batch order, a
/// fault-free concurrent batch leaves every session-visible structure —
/// dictionary ids included — bit-identical to serial execution.
///
/// Simulated time: sources are in-memory stand-ins, so latency is modeled
/// (LatencyModel base + TimedSource perturbations), never slept. The
/// timeline is reconstructed event-driven under the in-flight caps, so
/// makespans are reproducible regardless of real thread scheduling.
class FetchScheduler {
 public:
  /// `tracer` (optional, must outlive the scheduler): each non-empty
  /// batch emits one "fetch.batch" span whose children are one "fetch"
  /// span per *dispatched* query (detail = source name; counters
  /// attempts/retries/timeouts; simulated placement from the timeline;
  /// breaker-refused fetches carry breaker_skip=1) and one
  /// "fetch.coalesced" instant per request answered by an identical
  /// in-flight query. Spans are recorded only on the driver thread at
  /// the in-batch-order merge point — never from workers — so the
  /// per-fetch spans reconcile exactly with the FetchReport and tracing
  /// cannot perturb the execution.
  FetchScheduler(RuntimeOptions options, ValueDictionaryPtr session_dict,
                 obs::Tracer* tracer = nullptr);
  ~FetchScheduler();

  FetchScheduler(const FetchScheduler&) = delete;
  FetchScheduler& operator=(const FetchScheduler&) = delete;

  /// Executes one frontier. Returns results positionally aligned with
  /// `requests`. Never fails as a whole: per-request errors are in each
  /// FetchResult. With `stop_on_error` under serial dispatch, requests
  /// after the first permanent failure are left in the "not executed"
  /// state (their results are never read — the evaluator aborts first).
  std::vector<FetchResult> ExecuteBatch(
      const std::vector<FetchRequest>& requests);

  const FetchReport& report() const { return report_; }
  /// The simulated clock, advanced by every batch's critical path.
  double simulated_now_ms() const { return sim_clock_ms_; }

 private:
  struct Leader;

  /// Worker-side: runs one fetch's retry loop against the source.
  void ExecuteLeader(Leader* leader) const;
  void RunLeadersConcurrently(std::vector<Leader>* leaders);
  /// Driver-side: hands one dispatched leader's canonical query and
  /// attempt history to options_.recorder (which is non-null).
  void RecordLeaderFetch(const Leader& leader) const;
  /// Driver-side: lays the executed leaders on the simulated timeline
  /// under the in-flight caps; returns the batch makespan.
  double SimulateTimeline(std::vector<Leader>* leaders, double batch_start);

  RuntimeOptions options_;
  ValueDictionaryPtr dict_;
  obs::Tracer* tracer_;
  std::unique_ptr<ThreadPool> pool_;
  std::map<std::string, CircuitBreaker> breakers_;
  FetchReport report_;
  double sim_clock_ms_ = 0;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_FETCH_SCHEDULER_H_
