#ifndef LIMCAP_RUNTIME_FETCH_REPORT_H_
#define LIMCAP_RUNTIME_FETCH_REPORT_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "runtime/circuit_breaker.h"

namespace limcap::runtime {

/// What the fetch scheduler did over one execution: per-source attempt /
/// retry / timeout / breaker accounting, the simulated makespan, and the
/// degraded-answer annotation (Section 7.2 partial-answer semantics: when
/// a view stays unanswered, the answer is still sound but any connection
/// through that view may be under-answered).
struct FetchReport {
  struct SourceStats {
    /// Source calls actually made (retries included, coalesced and
    /// breaker-skipped fetches excluded).
    std::size_t attempts = 0;
    /// Fetches answered successfully (possibly after retries).
    std::size_t successes = 0;
    /// Fetches that permanently failed: every attempt failed, or the
    /// breaker refused them.
    std::size_t failed_queries = 0;
    /// Attempts beyond each fetch's first.
    std::size_t retries = 0;
    /// Attempts discarded for exceeding the per-attempt deadline.
    std::size_t timeouts = 0;
    /// Fetches answered by an identical in-flight query's result.
    std::size_t coalesced_hits = 0;
    /// Fetches answered by ANOTHER query's identical in-flight source
    /// call via the server-wide FetchGovernor (no source call made, no
    /// attempts recorded here).
    std::size_t cross_query_coalesced = 0;
    /// Fetches failed fast by an open circuit breaker.
    std::size_t breaker_skips = 0;
    /// Fetches suppressed by the adaptive dispatcher's dynamic relevance
    /// check (no source call made; certified answer-preserving).
    std::size_t skipped_dynamic = 0;
    /// Fetches a hedge fired for, and the subset whose hedge rescued a
    /// would-be deadline overrun.
    std::size_t hedged = 0;
    std::size_t hedge_wins = 0;
    /// Batched members (after the first) of merged source calls.
    std::size_t batched_calls = 0;
    /// Simulated milliseconds this source spent serving attempts and
    /// backoffs.
    double simulated_busy_ms = 0;
    /// Breaker state when the execution ended.
    BreakerState breaker_state = BreakerState::kClosed;
  };

  std::map<std::string, SourceStats> per_source;
  /// Fetch batches dispatched (≈ evaluator rounds that issued queries).
  std::size_t batches = 0;
  std::size_t total_attempts = 0;
  std::size_t total_retries = 0;
  std::size_t total_timeouts = 0;
  std::size_t coalesced_hits = 0;
  /// Fetches this execution saved by reusing other queries' in-flight
  /// source calls (FetchGovernor cross-query coalescing).
  std::size_t cross_query_coalesced = 0;
  /// Adaptive-dispatch totals (all zero unless RuntimeOptions::adaptive
  /// is on): dynamically skipped fetches, hedged fetches (and the subset
  /// whose hedge rescued a deadline), and batched source-call members.
  std::size_t skipped_dynamic = 0;
  std::size_t hedged = 0;
  std::size_t hedge_wins = 0;
  std::size_t batched_calls = 0;
  /// Simulated end-to-end fetch time under the configured concurrency
  /// caps: Σ over batches of the batch's critical path.
  double simulated_makespan_ms = 0;
  /// What the same fetches would cost issued one at a time.
  double simulated_sequential_ms = 0;
  /// Views with at least one permanently failed fetch. Non-empty means
  /// the answer is (possibly) partial: everything derived is sound, but
  /// tuples reachable only through these views may be missing.
  std::set<std::string> failed_views;
  /// Connections touching a failed view, hence possibly under-answered —
  /// filled by QueryAnswerer, which knows the plan's connections.
  std::vector<std::string> degraded_connections;

  /// True when some view went permanently unanswered, making the answer
  /// a (possibly) partial one.
  bool degraded() const { return !failed_views.empty(); }

  double SequentialSpeedup() const {
    return simulated_makespan_ms > 0
               ? simulated_sequential_ms / simulated_makespan_ms
               : 1.0;
  }

  /// Human-readable per-source table plus the makespan summary.
  std::string ToString() const;
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_FETCH_REPORT_H_
