#ifndef LIMCAP_RUNTIME_OPTIONS_H_
#define LIMCAP_RUNTIME_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "runtime/latency_model.h"
#include "runtime/retry_policy.h"

namespace limcap::runtime {

class FetchGovernor;
class FetchRecorder;

/// Configuration of the asynchronous source-access runtime: how each
/// fetch round's frontier of source queries is dispatched, retried, and
/// accounted. The defaults reproduce the legacy serial evaluator exactly
/// (one query at a time, one attempt, no breaker), so existing callers
/// see no behavior change until they opt in.
struct RuntimeOptions {
  /// Dispatch each round's frontier concurrently on a thread pool. Off:
  /// queries are issued strictly in order on the calling thread. Either
  /// way the results are committed in frontier order, so on a fault-free
  /// catalog concurrent execution is bit-identical to serial.
  bool concurrent = false;
  /// Global cap on concurrently running source calls. A literal default
  /// (not hardware concurrency) keeps simulated makespans reproducible
  /// across machines; 0 means hardware concurrency.
  std::size_t max_in_flight = 16;
  /// Per-source cap on concurrently running calls — the paper's sources
  /// are autonomous services with their own admission limits. Applies to
  /// the simulated timeline and to real dispatch.
  std::size_t per_source_max_in_flight = 4;
  /// Coalesce identical in-flight queries: when two frontier entries ask
  /// the same source the same query (possible with overlapping templates
  /// or duplicated view rules), only one source call is made and every
  /// requester shares the answer.
  bool coalesce = true;
  /// Default per-fetch policy; `per_source` overrides it by view name.
  RetryPolicy retry;
  std::map<std::string, RetryPolicy> per_source;
  /// Simulated round-trip times, the clock behind deadlines, backoff
  /// accounting, breaker cooldowns, and the FetchReport makespans.
  LatencyModel latency;
  /// Seed for backoff jitter (and anything else the scheduler ever needs
  /// randomness for); runs are deterministic given the seed.
  uint64_t seed = 0;
  /// Serial dispatch stops calling further sources once a fetch has
  /// permanently failed (the legacy abort-on-error loop shape). The
  /// evaluator sets this from ExecOptions::continue_on_source_error;
  /// concurrent dispatch has already issued the batch and ignores it.
  bool stop_on_error = false;
  /// Server-wide governor shared by every query of a multi-query server
  /// (must outlive the execution; not owned). Adds server-wide in-flight
  /// caps on top of this scheduler's own, and — under concurrent
  /// dispatch — cross-query coalescing of identical in-flight source
  /// queries. Null (the default) means this execution is ungoverned;
  /// single-query results are bit-identical either way.
  FetchGovernor* governor = nullptr;
  /// Optional capture sink (src/replay/): when set, every dispatched
  /// source call's canonical query and per-attempt outcomes/latencies are
  /// recorded through it, on the driver thread in batch order. Not owned;
  /// must outlive the execution. Recording never changes dispatch,
  /// results, or the simulated clock.
  FetchRecorder* recorder = nullptr;

  /// The policy for `view`: its override, or the default.
  const RetryPolicy& PolicyFor(const std::string& view) const {
    auto it = per_source.find(view);
    return it == per_source.end() ? retry : it->second;
  }
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_OPTIONS_H_
