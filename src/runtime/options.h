#ifndef LIMCAP_RUNTIME_OPTIONS_H_
#define LIMCAP_RUNTIME_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "runtime/latency_model.h"
#include "runtime/retry_policy.h"

namespace limcap::runtime {

class AdaptiveState;
class FetchGovernor;
class FetchRecorder;

/// Configuration of the runtime-adaptive dispatch layer
/// (runtime/adaptive_dispatcher.h) between the source-driven evaluator
/// and the fetch scheduler. Everything is off by default: the default
/// path is bit-identical to the pre-adaptive runtime. With `enabled`,
/// three independently toggleable mechanisms apply per batch:
///
///   * dynamic relevance pruning — fetches the analysis-side checker
///     proves useless against the actually-materialized bindings are
///     skipped (each with a machine-checkable certificate);
///   * cost-aware ordering + batching — dispatch is permuted by an
///     online expected-useful-rows-per-ms score, and consecutive
///     requests to the same (source, bound positions) are marked as one
///     batched source call on the simulated timeline;
///   * hedged requests — a fetch whose simulated latency overshoots the
///     source's learned p95 is duplicated after that delay and the first
///     arrival wins (timing-model level: permits and breaker accounting
///     stay exact, and no second physical Execute is issued).
///
/// All three change timing, ordering, and fetch counts — never answers;
/// the adaptive property suite pins OrderedFingerprint bit-identity
/// across serial / parallel-eval / concurrent-fetch / serve dispatch.
struct AdaptiveOptions {
  bool enabled = false;
  /// Dynamic relevance checks at dispatch time (skip certificates).
  bool dynamic_pruning = true;
  /// Cost-aware frontier ordering by learned per-source score.
  bool reorder = true;
  /// Merge consecutive same-(source, positions) requests into one
  /// batched source call on the simulated timeline.
  bool batch = true;
  /// Hedge stragglers after the learned per-source p95 delay.
  bool hedge = true;
  /// Quantile of the learned latency histogram that arms a hedge.
  double hedge_quantile = 0.95;
  /// Observations of a source required before hedging it (cold sources
  /// have no p95 worth trusting).
  std::size_t hedge_min_samples = 8;
  /// Floor on the hedge delay, so a uniformly fast source is never
  /// hedged at effectively zero delay.
  double hedge_min_delay_ms = 1.0;
  /// Simulated cost of a follow-up call inside one batched source call,
  /// as a fraction of the source's base latency.
  double batch_marginal_fraction = 0.25;
  /// Smoothing factor of the per-source latency/rows/failure EWMAs.
  double ewma_alpha = 0.2;
};

/// Configuration of the asynchronous source-access runtime: how each
/// fetch round's frontier of source queries is dispatched, retried, and
/// accounted. The defaults reproduce the legacy serial evaluator exactly
/// (one query at a time, one attempt, no breaker), so existing callers
/// see no behavior change until they opt in.
struct RuntimeOptions {
  /// Dispatch each round's frontier concurrently on a thread pool. Off:
  /// queries are issued strictly in order on the calling thread. Either
  /// way the results are committed in frontier order, so on a fault-free
  /// catalog concurrent execution is bit-identical to serial.
  bool concurrent = false;
  /// Global cap on concurrently running source calls. A literal default
  /// (not hardware concurrency) keeps simulated makespans reproducible
  /// across machines; 0 means hardware concurrency.
  std::size_t max_in_flight = 16;
  /// Per-source cap on concurrently running calls — the paper's sources
  /// are autonomous services with their own admission limits. Applies to
  /// the simulated timeline and to real dispatch.
  std::size_t per_source_max_in_flight = 4;
  /// Coalesce identical in-flight queries: when two frontier entries ask
  /// the same source the same query (possible with overlapping templates
  /// or duplicated view rules), only one source call is made and every
  /// requester shares the answer.
  bool coalesce = true;
  /// Default per-fetch policy; `per_source` overrides it by view name.
  RetryPolicy retry;
  std::map<std::string, RetryPolicy> per_source;
  /// Simulated round-trip times, the clock behind deadlines, backoff
  /// accounting, breaker cooldowns, and the FetchReport makespans.
  LatencyModel latency;
  /// Seed for backoff jitter (and anything else the scheduler ever needs
  /// randomness for); runs are deterministic given the seed.
  uint64_t seed = 0;
  /// Serial dispatch stops calling further sources once a fetch has
  /// permanently failed (the legacy abort-on-error loop shape). The
  /// evaluator sets this from ExecOptions::continue_on_source_error;
  /// concurrent dispatch has already issued the batch and ignores it.
  bool stop_on_error = false;
  /// Server-wide governor shared by every query of a multi-query server
  /// (must outlive the execution; not owned). Adds server-wide in-flight
  /// caps on top of this scheduler's own, and — under concurrent
  /// dispatch — cross-query coalescing of identical in-flight source
  /// queries. Null (the default) means this execution is ungoverned;
  /// single-query results are bit-identical either way.
  FetchGovernor* governor = nullptr;
  /// Optional capture sink (src/replay/): when set, every dispatched
  /// source call's canonical query and per-attempt outcomes/latencies are
  /// recorded through it, on the driver thread in batch order. Not owned;
  /// must outlive the execution. Recording never changes dispatch,
  /// results, or the simulated clock.
  FetchRecorder* recorder = nullptr;
  /// Runtime-adaptive dispatch (dynamic pruning / ordering / batching /
  /// hedging); see AdaptiveOptions. Off by default.
  AdaptiveOptions adaptive;
  /// Cross-query learned source statistics (thread-safe, not owned, must
  /// outlive the execution). A ServeSession wires its own; each query's
  /// dispatcher publishes its learned per-source profiles here when it
  /// finishes. Publish-only by design: dispatch decisions never read the
  /// shared state, because the ordering they drive sets the dictionary
  /// interning order and a cross-query input would break serve-vs-solo
  /// OrderedFingerprint bit-identity. Null = no session aggregation.
  AdaptiveState* adaptive_state = nullptr;

  /// The policy for `view`: its override, or the default.
  const RetryPolicy& PolicyFor(const std::string& view) const {
    auto it = per_source.find(view);
    return it == per_source.end() ? retry : it->second;
  }
};

}  // namespace limcap::runtime

#endif  // LIMCAP_RUNTIME_OPTIONS_H_
