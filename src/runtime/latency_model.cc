#include "runtime/latency_model.h"

#include <algorithm>

namespace limcap::runtime {

MakespanReport EstimateMakespan(const capability::AccessLog& log,
                                const LatencyModel& model) {
  MakespanReport report;
  // Per round: the max single latency and the per-source query counts.
  std::map<std::size_t, double> round_max;
  std::map<std::size_t, std::map<std::string, std::size_t>> round_counts;
  for (const capability::AccessRecord& record : log.records()) {
    double latency = model.LatencyOf(record.source);
    report.sequential_ms += latency;
    round_max[record.round] = std::max(round_max[record.round], latency);
    ++round_counts[record.round][record.source];
  }
  for (const auto& [round, latency] : round_max) {
    report.parallel_ms += latency;
  }
  for (const auto& [round, counts] : round_counts) {
    double slowest = 0;
    for (const auto& [source, count] : counts) {
      slowest = std::max(slowest,
                         static_cast<double>(count) * model.LatencyOf(source));
    }
    report.per_source_serial_ms += slowest;
  }
  report.rounds = round_counts.size();
  return report;
}

}  // namespace limcap::runtime
