#include "runtime/fetch_scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <tuple>
#include <utility>

#include "common/hash.h"
#include "common/rng.h"
#include "runtime/fetch_governor.h"
#include "runtime/fetch_recorder.h"
#include "runtime/timed_source.h"

namespace limcap::runtime {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", ms);
  return buffer;
}

/// Per-fetch jitter seed from (run seed, source, session-encoded query).
/// Session ids are assigned identically under serial and concurrent
/// execution, so the jitter — and with it every simulated duration — is
/// dispatch-order independent.
uint64_t JitterSeed(uint64_t run_seed, const std::string& source,
                    const capability::SourceQuery& query) {
  std::size_t seed = static_cast<std::size_t>(run_seed);
  HashCombine(seed, std::hash<std::string>{}(source));
  for (std::size_t i = 0; i < query.positions.size(); ++i) {
    HashCombine(seed, query.positions[i]);
    HashCombine(seed, query.ids[i]);
  }
  return Mix64(seed);
}

/// The value-level identity of a source query, comparable across queries:
/// per-query dictionaries assign different ids to equal values, so the
/// scheduler's id-level coalesce key cannot match across queries, while
/// this one can. Kind tags keep Int64(1) distinct from String("1").
std::string CrossQueryKey(const std::string& source,
                          const std::vector<uint32_t>& positions,
                          const std::vector<ValueId>& ids,
                          const ValueDictionary& dict) {
  std::string key = source;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Value& value = dict.Get(ids[i]);
    key += '\x1f';
    key += std::to_string(positions[i]);
    key += '=';
    key += static_cast<char>('0' + static_cast<int>(value.kind()));
    key += value.ToString();
  }
  return key;
}

}  // namespace

/// One distinct (source, query) to actually dispatch. Coalesced duplicate
/// requests become followers pointing at their leader. Worker threads
/// write only the outcome block of their own leader; the driver reads it
/// after the pool region joins (the pool's region barrier publishes the
/// writes).
struct FetchScheduler::Leader {
  std::size_t request_index = 0;
  capability::Source* source = nullptr;
  std::string source_name;
  /// The query to dispatch: the session-encoded request under serial
  /// execution, a private-dictionary clone under concurrent execution
  /// (workers must never intern into the session dictionary).
  capability::SourceQuery query;
  const RetryPolicy* policy = nullptr;
  double base_latency_ms = 0;
  uint64_t jitter_seed = 0;
  bool allowed = true;   ///< false: failed fast by the circuit breaker
  bool executed = false; ///< false: skipped (breaker, or stop_on_error)
  // Adaptive hints, copied from the FetchRequest (inert by default).
  double hedge_delay_ms = std::numeric_limits<double>::infinity();
  double batch_discount_ms = 0;
  bool hedged = false;
  bool hedge_win = false;
  /// Value-level identity for FetchGovernor cross-query coalescing;
  /// empty when no governor is coalescing this batch.
  std::string cross_key;
  /// Set by the worker when the governor answered this fetch with
  /// another query's identical in-flight source call.
  bool cross_coalesced = false;
  /// Per-attempt capture, filled by ExecuteLeader when a recorder is
  /// wired in (options_.recorder); flushed by the driver at the merge.
  std::vector<FetchRecorder::Attempt> recorded;

  // Outcome block, written by ExecuteLeader.
  Result<relational::Relation> tuples = Status::Internal("not executed");
  std::size_t attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  double duration_ms = 0;

  // Timeline placement, assigned by SimulateTimeline on the driver.
  double start_ms = 0;
  double finish_ms = 0;
};

FetchScheduler::FetchScheduler(RuntimeOptions options,
                               ValueDictionaryPtr session_dict,
                               obs::Tracer* tracer)
    : options_(std::move(options)),
      dict_(std::move(session_dict)),
      tracer_(tracer) {}

FetchScheduler::~FetchScheduler() = default;

void FetchScheduler::ExecuteLeader(Leader* leader) const {
  const RetryPolicy& policy = *leader->policy;
  const std::size_t max_attempts = std::max<std::size_t>(1, policy.max_attempts);
  Rng rng(leader->jitter_seed);
  Result<relational::Relation> outcome = Status::Internal("not executed");
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      leader->duration_ms += policy.BackoffBeforeAttempt(attempt, rng);
      ++leader->retries;
    }
    ++leader->attempts;
    TimedSource::Timing timing;
    auto* timed = dynamic_cast<TimedSource*>(leader->source);
    Result<relational::Relation> answer =
        timed != nullptr ? timed->ExecuteTimed(leader->query, &timing)
                         : leader->source->Execute(leader->query);
    const double full_latency =
        leader->base_latency_ms + timing.added_latency_ms;
    // Hedged request (timing-model level): once the primary overshoots
    // the learned hedge delay, a duplicate call to the same deterministic
    // source is modeled — the answer is the same, only its arrival moves
    // up to hedge_delay + base. No second physical Execute is issued, so
    // attempt counts, fault draws, governor permits and breaker
    // accounting are exactly those of the single call.
    double latency = full_latency;
    if (full_latency > leader->hedge_delay_ms) {
      leader->hedged = true;
      latency = std::min(full_latency,
                         leader->hedge_delay_ms + leader->base_latency_ms);
      if (full_latency > policy.deadline_ms && latency <= policy.deadline_ms) {
        leader->hedge_win = true;
      }
    }
    if (options_.recorder != nullptr) {
      FetchRecorder::Attempt record;
      record.added_latency_ms = timing.added_latency_ms;
      record.discarded = latency > policy.deadline_ms;
      if (!record.discarded) {
        record.ok = answer.ok();
        if (answer.ok()) {
          record.rows = answer->DecodedRows();
        } else {
          record.code = answer.status().code();
          record.message = answer.status().message();
        }
      }
      leader->recorded.push_back(std::move(record));
    }
    if (latency > policy.deadline_ms) {
      // The answer (good or bad) arrived past the deadline: discard it.
      // The attempt costs exactly the deadline — the caller hung up then.
      leader->duration_ms += policy.deadline_ms;
      ++leader->timeouts;
      outcome = Status::DeadlineExceeded(
          "source " + leader->source_name + " attempt " +
          std::to_string(attempt) + " exceeded its " +
          FormatMs(policy.deadline_ms) + " ms deadline");
      continue;
    }
    // Batched member: the shared source call already paid the per-call
    // overhead, so this fetch's simulated cost drops by the discount.
    // Timing only — the deadline check above saw the undiscounted
    // latency, and the answer is untouched.
    leader->duration_ms += std::max(0.0, latency - leader->batch_discount_ms);
    outcome = std::move(answer);
    if (outcome.ok()) break;
  }
  leader->tuples = std::move(outcome);
}

void FetchScheduler::RunLeadersConcurrently(std::vector<Leader>* leaders) {
  std::vector<Leader*> todo;
  for (Leader& leader : *leaders) {
    if (leader.executed) todo.push_back(&leader);
  }
  if (todo.empty()) return;
  if (pool_ == nullptr) {
    std::size_t threads = options_.max_in_flight != 0
                              ? options_.max_in_flight
                              : std::thread::hardware_concurrency();
    pool_ = std::make_unique<ThreadPool>(std::max<std::size_t>(1, threads));
  }
  const std::size_t per_source_cap = options_.per_source_max_in_flight != 0
                                         ? options_.per_source_max_in_flight
                                         : kNone;

  // Claim loop: each worker repeatedly claims the lowest-index unclaimed
  // fetch whose source is under its in-flight cap. The pool size enforces
  // the global cap. Claim order does not affect results — the driver
  // merges in batch order regardless.
  std::mutex mutex;
  std::condition_variable capacity_freed;
  std::vector<bool> claimed(todo.size(), false);
  std::size_t num_claimed = 0;
  std::map<std::string, std::size_t> in_flight;
  pool_->RunOnAll([&](std::size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      std::size_t pick = kNone;
      for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!claimed[i] && in_flight[todo[i]->source_name] < per_source_cap) {
          pick = i;
          break;
        }
      }
      if (pick == kNone) {
        if (num_claimed == todo.size()) return;
        // Unclaimed fetches remain but their sources are at capacity;
        // wait for a finisher to free a slot.
        capacity_freed.wait(lock);
        continue;
      }
      claimed[pick] = true;
      ++num_claimed;
      ++in_flight[todo[pick]->source_name];
      lock.unlock();
      Leader* job = todo[pick];
      FetchGovernor* governor = options_.governor;
      if (governor != nullptr && !job->cross_key.empty()) {
        // Server-wide coalescing window: the first query with this
        // value-level source query in flight performs the call; everyone
        // else shares its outcome. Followers hold no governor permits
        // while waiting, so leader → follower waits cannot cycle.
        FetchGovernor::Ticket ticket = governor->Begin(job->cross_key);
        if (ticket.leader) {
          governor->Acquire(job->source_name);
          ExecuteLeader(job);
          governor->Release(job->source_name);
          governor->Complete(job->cross_key, ticket, job->tuples);
        } else {
          job->tuples = FetchGovernor::Wait(ticket);
          job->cross_coalesced = true;
          // No attempts/duration: this query did not touch the source.
          // The tuples sit on the other leader's private dictionary
          // (immutable now) and are re-keyed at the ordered merge.
        }
      } else if (governor != nullptr) {
        governor->Acquire(job->source_name);
        ExecuteLeader(job);
        governor->Release(job->source_name);
      } else {
        ExecuteLeader(job);
      }
      lock.lock();
      --in_flight[job->source_name];
      capacity_freed.notify_all();
    }
  });
}

double FetchScheduler::SimulateTimeline(std::vector<Leader>* leaders,
                                        double batch_start) {
  if (!options_.concurrent) {
    // Serial dispatch: one fetch at a time, in batch order.
    double now = batch_start;
    for (Leader& leader : *leaders) {
      if (!leader.executed) {
        leader.start_ms = leader.finish_ms = now;
        continue;
      }
      leader.start_ms = now;
      now += leader.duration_ms;
      leader.finish_ms = now;
    }
    return now - batch_start;
  }

  // Event-driven replay of the claim loop under both caps, in batch
  // order, on simulated time: deterministic no matter how the real
  // threads interleaved.
  const std::size_t global_cap = std::max<std::size_t>(
      1, options_.max_in_flight != 0 ? options_.max_in_flight
                                     : std::thread::hardware_concurrency());
  const std::size_t per_source_cap = options_.per_source_max_in_flight != 0
                                         ? options_.per_source_max_in_flight
                                         : kNone;
  std::vector<Leader*> jobs;
  for (Leader& leader : *leaders) {
    if (leader.executed) {
      jobs.push_back(&leader);
    } else {
      leader.start_ms = leader.finish_ms = batch_start;
    }
  }
  if (jobs.empty()) return 0;

  using Finish = std::pair<double, std::size_t>;  // (finish time, job index)
  std::priority_queue<Finish, std::vector<Finish>, std::greater<Finish>>
      running;
  std::map<std::string, std::size_t> in_flight;
  std::vector<bool> started(jobs.size(), false);
  std::size_t num_started = 0;
  double now = batch_start;
  double makespan_end = batch_start;
  while (num_started < jobs.size() || !running.empty()) {
    // Start every startable job at `now`, scanning in batch order.
    for (std::size_t i = 0;
         i < jobs.size() && running.size() < global_cap; ++i) {
      if (started[i] || in_flight[jobs[i]->source_name] >= per_source_cap) {
        continue;
      }
      started[i] = true;
      ++num_started;
      ++in_flight[jobs[i]->source_name];
      jobs[i]->start_ms = now;
      jobs[i]->finish_ms = now + jobs[i]->duration_ms;
      running.push({jobs[i]->finish_ms, i});
    }
    if (running.empty()) break;
    auto [finish, index] = running.top();
    running.pop();
    now = finish;
    makespan_end = std::max(makespan_end, finish);
    --in_flight[jobs[index]->source_name];
  }
  return makespan_end - batch_start;
}

void FetchScheduler::RecordLeaderFetch(const Leader& leader) const {
  FetchRecorder::Fetch fetch;
  fetch.source = leader.source_name;
  fetch.positions = leader.query.positions;
  fetch.values.reserve(leader.query.ids.size());
  // leader.query.dict is the private per-fetch dictionary under
  // concurrent dispatch and the session dictionary under serial — either
  // way, decoding here yields the canonical value-level query.
  for (ValueId id : leader.query.ids) {
    fetch.values.push_back(leader.query.dict->Get(id));
  }
  if (leader.cross_coalesced) {
    // This fetch made no source call: another query's identical in-flight
    // call answered it, and only the shared final outcome is observable.
    // Synthesize a single attempt carrying that outcome so a solo replay
    // of this query reconstructs an equivalent fetch. Attempt counts and
    // durations may differ from the sharing run — neither is part of the
    // OrderedFingerprint.
    fetch.cross_coalesced = true;
    FetchRecorder::Attempt record;
    if (leader.tuples.ok()) {
      record.ok = true;
      record.rows = leader.tuples->DecodedRows();
    } else if (leader.tuples.status().code() ==
               StatusCode::kDeadlineExceeded) {
      // The shared call timed out every attempt; force the same on
      // replay by overshooting any finite deadline.
      record.discarded = true;
      record.added_latency_ms = kForcedTimeoutLatencyMs;
    } else {
      record.code = leader.tuples.status().code();
      record.message = leader.tuples.status().message();
    }
    fetch.attempts.push_back(std::move(record));
  } else {
    fetch.attempts = leader.recorded;
  }
  options_.recorder->RecordFetch(std::move(fetch));
}

std::vector<FetchResult> FetchScheduler::ExecuteBatch(
    const std::vector<FetchRequest>& requests) {
  std::vector<FetchResult> results(requests.size());
  if (requests.empty()) return results;

  const double batch_start = sim_clock_ms_;
  ++report_.batches;
  obs::ScopedSpan batch_span(tracer_, "fetch.batch");
  batch_span.Counter("requests", static_cast<double>(requests.size()));
  obs::Tracer* trace = batch_span.tracer();  // null when disabled

  // 1. Coalesce identical (source, query) pairs into leaders. All request
  //    queries are session-encoded, so raw positions+ids identify a query.
  std::vector<Leader> leaders;
  leaders.reserve(requests.size());
  std::vector<std::size_t> leader_of(requests.size(), kNone);
  std::vector<bool> is_leader(requests.size(), false);
  using CoalesceKey =
      std::tuple<capability::Source*, std::vector<uint32_t>,
                 std::vector<ValueId>>;
  std::map<CoalesceKey, std::size_t> first_seen;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (options_.coalesce) {
      CoalesceKey key{requests[i].source, requests[i].query.positions,
                      requests[i].query.ids};
      auto [it, inserted] = first_seen.try_emplace(key, leaders.size());
      if (!inserted) {
        leader_of[i] = it->second;
        continue;
      }
    }
    leader_of[i] = leaders.size();
    is_leader[i] = true;
    Leader leader;
    leader.request_index = i;
    leader.source = requests[i].source;
    leader.source_name = requests[i].source->view().name();
    leader.query = requests[i].query;
    leader.policy = &options_.PolicyFor(leader.source_name);
    leader.base_latency_ms = options_.latency.LatencyOf(leader.source_name);
    leader.hedge_delay_ms = requests[i].hedge_delay_ms;
    leader.batch_discount_ms = requests[i].batch_discount_ms;
    leader.jitter_seed =
        JitterSeed(options_.seed, leader.source_name, requests[i].query);
    leaders.push_back(std::move(leader));
  }

  // 2. Circuit-breaker admission at the batch-start clock.
  for (Leader& leader : leaders) {
    auto it =
        breakers_.try_emplace(leader.source_name, leader.policy->breaker)
            .first;
    leader.allowed = it->second.Allow(batch_start);
  }

  // 3. Dispatch. Concurrent execution clones each leader's query onto a
  //    private dictionary first: worker threads must not touch the
  //    session dictionary (Intern is not thread-safe), and private
  //    results are re-interned on the driver in batch order below, which
  //    reproduces the serial interning order bit for bit.
  if (options_.concurrent) {
    const bool cross_coalesce =
        options_.governor != nullptr &&
        options_.governor->options().cross_query_coalesce;
    for (Leader& leader : leaders) {
      if (!leader.allowed) continue;
      leader.executed = true;
      if (cross_coalesce) {
        // Value-level key, computed from the session dictionary before
        // the ids are rewritten below. Only private-dictionary results
        // may be shared across queries (a session dictionary keeps
        // growing while foreign drivers would read it), which is why
        // cross coalescing exists only on this concurrent path.
        leader.cross_key =
            CrossQueryKey(leader.source_name, leader.query.positions,
                          leader.query.ids, *dict_);
        // A hedged fetch's *outcome* (kept vs discarded past the
        // deadline) depends on its hedge delay, which is per-query
        // learned state — two queries with different delays can see
        // different outcomes for the same value-level source query. Key
        // them apart so a follower only ever inherits an outcome its own
        // hedge configuration would have produced; un-hedged fetches
        // (delay = infinity) keep the pre-hedging key byte for byte.
        if (leader.hedge_delay_ms !=
            std::numeric_limits<double>::infinity()) {
          char hedge[40];
          std::snprintf(hedge, sizeof(hedge), "\x1fhedge=%a",
                        leader.hedge_delay_ms);
          leader.cross_key += hedge;
        }
      }
      auto private_dict = std::make_shared<ValueDictionary>();
      for (ValueId& id : leader.query.ids) {
        id = private_dict->Intern(dict_->Get(id));
      }
      leader.query.dict = std::move(private_dict);
    }
    RunLeadersConcurrently(&leaders);
  } else {
    bool stopped = false;
    for (Leader& leader : leaders) {
      if (stopped) continue;
      if (!leader.allowed) {
        if (options_.stop_on_error) stopped = true;
        continue;
      }
      leader.executed = true;
      if (options_.governor != nullptr) {
        // Serial dispatch under a governor still honors the server-wide
        // caps; it cannot share results (they land on the mutable
        // session dictionary, unsafe for foreign readers).
        options_.governor->Acquire(leader.source_name);
        ExecuteLeader(&leader);
        options_.governor->Release(leader.source_name);
      } else {
        ExecuteLeader(&leader);
      }
      if (options_.stop_on_error && !leader.tuples.ok()) stopped = true;
    }
  }

  // 4. Timeline: place the executed fetches on the simulated clock.
  const double makespan = SimulateTimeline(&leaders, batch_start);
  sim_clock_ms_ += makespan;
  report_.simulated_makespan_ms += makespan;
  batch_span.SetSimulated(batch_start, makespan);

  // 5. Merge in batch order on the driver thread: re-key results to the
  //    session dictionary, record breaker outcomes, build the report. A
  //    follower's leader always precedes it (the leader is the first
  //    occurrence), so leader results are final when followers copy them.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Leader& leader = leaders[leader_of[i]];
    FetchResult& result = results[i];
    FetchReport::SourceStats& stats = report_.per_source[leader.source_name];
    result.start_ms = leader.start_ms;
    result.finish_ms = leader.finish_ms;
    if (!is_leader[i]) {
      result.coalesced = true;
      result.tuples = leader.tuples;
      ++stats.coalesced_hits;
      ++report_.coalesced_hits;
      if (trace != nullptr) {
        trace->Instant("fetch.coalesced", leader.source_name);
      }
      continue;
    }
    if (!leader.allowed) {
      result.breaker_skipped = true;
      leader.tuples = Status::Unavailable(
          "source " + leader.source_name +
          " unavailable: circuit breaker open");
      result.tuples = leader.tuples;
      ++stats.breaker_skips;
      ++stats.failed_queries;
      report_.failed_views.insert(leader.source_name);
      if (trace != nullptr) {
        const obs::SpanId span =
            trace->Instant("fetch", leader.source_name);
        trace->Counter(span, "breaker_skip", 1);
        trace->SetSimulated(span, leader.start_ms, 0);
      }
      continue;
    }
    if (!leader.executed) continue;  // stop_on_error skipped; never read.
    if (leader.tuples.ok() && leader.tuples->dict_ptr() != dict_) {
      leader.tuples = leader.tuples->WithDictionary(dict_);
    }
    if (options_.recorder != nullptr) RecordLeaderFetch(leader);
    if (leader.cross_coalesced) {
      // Another query's source call answered this fetch: account the
      // saved work, not attempts (this execution made none).
      result.tuples = leader.tuples;
      result.cross_coalesced = true;
      ++stats.cross_query_coalesced;
      ++report_.cross_query_coalesced;
      // The breaker still learns the outcome — a solo run would have
      // made this call and recorded it, so skipping would make breaker
      // admission diverge from solo execution.
      CircuitBreaker& shared_breaker = breakers_.at(leader.source_name);
      if (leader.tuples.ok()) {
        ++stats.successes;
        shared_breaker.RecordSuccess();
      } else {
        ++stats.failed_queries;
        report_.failed_views.insert(leader.source_name);
        shared_breaker.RecordFailure(leader.finish_ms);
      }
      if (trace != nullptr) {
        trace->Instant("fetch.cross_coalesced", leader.source_name);
      }
      continue;
    }
    result.tuples = leader.tuples;
    result.attempts = leader.attempts;
    result.retries = leader.retries;
    result.timeouts = leader.timeouts;
    result.duration_ms = leader.duration_ms;
    result.hedged = leader.hedged;
    result.hedge_win = leader.hedge_win;
    result.batched = leader.batch_discount_ms > 0;
    if (leader.hedged) {
      ++stats.hedged;
      ++report_.hedged;
      if (leader.hedge_win) {
        ++stats.hedge_wins;
        ++report_.hedge_wins;
      }
    }
    if (result.batched) {
      ++stats.batched_calls;
      ++report_.batched_calls;
    }
    stats.attempts += leader.attempts;
    stats.retries += leader.retries;
    stats.timeouts += leader.timeouts;
    stats.simulated_busy_ms += leader.duration_ms;
    report_.total_attempts += leader.attempts;
    report_.total_retries += leader.retries;
    report_.total_timeouts += leader.timeouts;
    report_.simulated_sequential_ms += leader.duration_ms;
    CircuitBreaker& breaker = breakers_.at(leader.source_name);
    if (leader.tuples.ok()) {
      ++stats.successes;
      breaker.RecordSuccess();
    } else {
      ++stats.failed_queries;
      report_.failed_views.insert(leader.source_name);
      breaker.RecordFailure(leader.finish_ms);
    }
    if (trace != nullptr) {
      const obs::SpanId span = trace->Instant("fetch", leader.source_name);
      trace->Counter(span, "attempts",
                     static_cast<double>(leader.attempts));
      trace->Counter(span, "retries", static_cast<double>(leader.retries));
      trace->Counter(span, "timeouts",
                     static_cast<double>(leader.timeouts));
      trace->Counter(span, "ok", leader.tuples.ok() ? 1 : 0);
      trace->SetSimulated(span, leader.start_ms,
                          leader.finish_ms - leader.start_ms);
    }
  }
  for (auto& [name, stats] : report_.per_source) {
    auto it = breakers_.find(name);
    if (it != breakers_.end()) stats.breaker_state = it->second.state();
  }
  return results;
}

}  // namespace limcap::runtime
