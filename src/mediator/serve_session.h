#ifndef LIMCAP_MEDIATOR_SERVE_SESSION_H_
#define LIMCAP_MEDIATOR_SERVE_SESSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/query_context.h"
#include "mediator/mediator.h"
#include "obs/trace.h"
#include "replay/trace_recorder.h"
#include "runtime/adaptive_state.h"
#include "runtime/fetch_governor.h"

namespace limcap::mediator {

/// Configuration of a multi-query serving session.
struct ServeOptions {
  /// Query worker threads. Each runs one query at a time end-to-end
  /// (plan → gate → evaluate), so this bounds concurrent queries.
  std::size_t workers = 4;
  /// Admission control: requests queued beyond this bound are refused
  /// with StatusCode::kLoadShed instead of building unbounded backlog.
  std::size_t max_queue = 64;
  /// The server-wide source-access governor every query runs under.
  runtime::FetchGovernor::Options governor;
  /// Per-query execution template. Per-query state it carries is
  /// ignored: session_dict is always fresh per query, tracer and metrics
  /// are nulled (neither is thread-safe — request tracing goes through
  /// `trace_requests`, counters through server_metrics()), and
  /// plan_cache defaults to the mediator's (thread-safe) session cache.
  exec::ExecOptions exec;
  /// Record a per-request span tree: each response carries its own
  /// Tracer whose root is a "serve.request" span (counters: queue_ms,
  /// ok) over the full plan/eval/fetch sub-tree. Per-request tracers
  /// keep the Tracer single-threaded contract intact under concurrency.
  bool trace_requests = false;
  /// Capture/replay: when non-empty, every successfully executed
  /// request's source traffic is captured (one replay::TraceRecorder per
  /// request, so the single-threaded recorder contract holds across
  /// workers) and written to this existing directory as
  /// `req-NNNNN.lcap`; a `record_index.json` is written exactly once
  /// when the session drains. Recording never changes dispatch,
  /// results, or the simulated clock.
  std::string record_dir;
  /// Disk budget for recorded artifacts. A request whose artifact would
  /// push the recorded-bytes total past this cap is dropped whole
  /// (counted in Stats::record_dropped) — never truncated, because a
  /// partial capture replays as a planner divergence.
  std::size_t record_budget_bytes = 256u << 20;  // 256 MiB
  /// Provenance stamped into each recorded manifest (not replay input).
  std::string record_scenario;
  uint64_t record_seed = 0;
};

/// One query request. The query is an already-expanded connection query
/// (the wire protocol ships paper notation; planner::ParseQuery produces
/// this).
struct ServeRequest {
  planner::Query query;
  /// Per-query budget overrides; 0 keeps the template's value.
  std::size_t max_source_queries = 0;
  std::size_t min_answers = 0;
  /// Wall-clock deadline in milliseconds from Submit(). A request still
  /// queued when its deadline expires is failed with kDeadlineExceeded
  /// without executing (execution itself is not preempted — budgets
  /// bound it). 0 = none.
  double deadline_ms = 0;
};

/// One query outcome.
struct ServeResponse {
  Result<exec::AnswerReport> report = Status::Internal("not executed");
  /// Wall-clock milliseconds spent queued / executing.
  double queue_ms = 0;
  double exec_ms = 0;
  /// The request's span tree when ServeOptions::trace_requests is on.
  std::unique_ptr<obs::Tracer> trace;
};

/// The multi-query serving layer over a Mediator: accepts many
/// concurrent query requests, runs each in its own QueryContext on a
/// worker pool, and shares exactly two things across queries — the
/// mediator's thread-safe PlanCache and a server-wide FetchGovernor
/// (source in-flight caps + cross-query coalescing).
///
/// Isolation contract: every query gets a fresh session ValueDictionary
/// and a private MetricsRegistry, so each answer is bit-identical
/// (exec::OrderedFingerprint) to the same query answered alone on an
/// idle mediator — concurrency changes throughput, never answers. The
/// property tests drive N queries through workers and diff fingerprints
/// against serial answers.
///
/// Lifecycle: construction spawns the workers; Shutdown() (or the
/// destructor) stops admission — further Submits fail with kLoadShed —
/// then drains every accepted request (queued and in-flight) before
/// joining the workers. Responses are always delivered, shutdown or not.
class ServeSession {
 public:
  using Callback = std::function<void(ServeResponse)>;

  /// `mediator` must outlive the session, and its catalog must not
  /// mutate while serving (the plan cache keys on the catalog
  /// fingerprint; correctness survives mutation, cached-entry reuse and
  /// the governor's coalescing assume stable sources).
  ServeSession(const Mediator* mediator, ServeOptions options);
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Admission: enqueues the request and returns OK, or refuses with
  /// kLoadShed (queue at max_queue, or draining). `done` runs exactly
  /// once on a worker thread for every accepted request; it must not
  /// call back into Submit/Shutdown of this session.
  Status Submit(ServeRequest request, Callback done);

  /// Synchronous convenience: Submit + wait. A load-shed admission
  /// returns a response whose report holds the kLoadShed status.
  ServeResponse Answer(ServeRequest request);

  /// Graceful drain: stops admission, completes every accepted request,
  /// joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  bool draining() const;

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;   ///< load-shed at admission
    uint64_t completed = 0;  ///< responses with an OK report
    uint64_t failed = 0;     ///< responses with an error report
    std::size_t in_flight = 0;
    std::size_t queue_depth = 0;
    uint64_t recorded = 0;        ///< `.lcap` artifacts written
    uint64_t record_dropped = 0;  ///< captures dropped (budget/IO)
    runtime::FetchGovernor::Stats governor;
  };
  Stats stats() const;

  /// Snapshot of the server-wide registry: every completed query's
  /// counters (merged exactly once from its private registry) plus the
  /// serve.* admission metrics.
  obs::MetricsRegistry server_metrics() const;

  runtime::FetchGovernor& governor() { return governor_; }
  /// What the session's queries collectively learned about the sources
  /// (populated only when the exec template enables adaptive dispatch).
  const runtime::AdaptiveState& adaptive_state() const {
    return adaptive_state_;
  }
  const Mediator& mediator() const { return *mediator_; }

 private:
  struct Pending {
    ServeRequest request;
    Callback done;
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop();
  /// Runs one accepted request end-to-end on this worker thread and
  /// delivers its callback.
  void Process(Pending pending);
  /// Serializes one request's capture and writes `req-NNNNN.lcap` under
  /// the disk budget (whole-artifact admission, never truncation).
  void RecordRequest(const replay::TraceRecorder& recorder,
                     replay::ReplayManifest manifest);
  /// Writes `record_index.json` exactly once; called on drain.
  void WriteRecordIndex();

  const Mediator* mediator_;
  ServeOptions options_;
  runtime::FetchGovernor governor_;
  /// Session-wide aggregation of what each query's adaptive dispatcher
  /// learned about the sources (inert unless RuntimeOptions::adaptive is
  /// on). Publish-only: queries write their profiles here, dispatch never
  /// reads it — per-query answers stay bit-identical to solo execution.
  runtime::AdaptiveState adaptive_state_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable drained_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  bool stop_ = false;
  Stats stats_;
  obs::MetricsRegistry server_metrics_;
  std::vector<std::thread> workers_;

  /// Recording state, behind its own mutex so artifact serialization
  /// and file writes never block admission. Lock order: mutex_ before
  /// record_mutex_ (stats()); RecordRequest takes record_mutex_ only.
  struct RecordEntry {
    std::string file;
    std::string request_id;
    std::string fingerprint;
    std::size_t bytes = 0;
    std::size_t calls = 0;
    uint64_t answer_rows = 0;
    bool degraded = false;
  };
  mutable std::mutex record_mutex_;
  std::size_t record_sequence_ = 0;
  std::size_t record_bytes_used_ = 0;
  uint64_t record_dropped_ = 0;
  std::vector<RecordEntry> record_index_;
  bool record_index_written_ = false;
};

}  // namespace limcap::mediator

#endif  // LIMCAP_MEDIATOR_SERVE_SESSION_H_
