#include "mediator/serve_session.h"

#include <algorithm>
#include <future>
#include <utility>

namespace limcap::mediator {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ServeSession::ServeSession(const Mediator* mediator, ServeOptions options)
    : mediator_(mediator),
      options_(std::move(options)),
      governor_(options_.governor) {
  // Per-query state must not leak in through the template: a shared
  // tracer or registry would race across workers, and a shared
  // dictionary would break per-query bit-identity.
  options_.exec.session_dict = nullptr;
  options_.exec.tracer = nullptr;
  options_.exec.metrics = nullptr;
  if (options_.exec.plan_cache == nullptr) {
    options_.exec.plan_cache = &mediator_->plan_cache();
  }
  options_.exec.runtime.governor = &governor_;
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServeSession::~ServeSession() { Shutdown(); }

Status ServeSession::Submit(ServeRequest request, Callback done) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    ++stats_.rejected;
    server_metrics_.Add(obs::metric::kServeRejected);
    return Status::LoadShed("server is draining for shutdown");
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    server_metrics_.Add(obs::metric::kServeRejected);
    return Status::LoadShed(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " requests queued)");
  }
  ++stats_.accepted;
  server_metrics_.Add(obs::metric::kServeAccepted);
  server_metrics_.Observe(obs::metric::kServeQueueDepth,
                          static_cast<double>(queue_.size()));
  server_metrics_.Observe(obs::metric::kServeInFlight,
                          static_cast<double>(stats_.in_flight));
  queue_.push_back(Pending{std::move(request), std::move(done),
                           std::chrono::steady_clock::now()});
  work_available_.notify_one();
  return Status::OK();
}

ServeResponse ServeSession::Answer(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  Status admitted = Submit(std::move(request), [&promise](ServeResponse r) {
    promise.set_value(std::move(r));
  });
  if (!admitted.ok()) {
    ServeResponse shed;
    shed.report = admitted;
    return shed;
  }
  return future.get();
}

void ServeSession::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.in_flight;
    }
    Process(std::move(pending));
  }
}

void ServeSession::Process(Pending pending) {
  ServeResponse response;
  response.queue_ms = MsSince(pending.submitted);

  const bool expired = pending.request.deadline_ms > 0 &&
                       response.queue_ms > pending.request.deadline_ms;
  if (expired) {
    response.report = Status::DeadlineExceeded(
        "request spent " + std::to_string(response.queue_ms) +
        " ms queued, past its " +
        std::to_string(pending.request.deadline_ms) + " ms deadline");
  } else {
    exec::ExecOptions exec_options = options_.exec;
    if (pending.request.max_source_queries > 0) {
      exec_options.max_source_queries = pending.request.max_source_queries;
    }
    if (pending.request.min_answers > 0) {
      exec_options.min_answers = pending.request.min_answers;
    }
    if (options_.trace_requests) {
      response.trace = std::make_unique<obs::Tracer>();
      exec_options.tracer = response.trace.get();
    }
    const auto exec_start = std::chrono::steady_clock::now();
    {
      // The request-level root span; the whole answer sub-tree (plan,
      // gate, rounds, fetches) nests under it on this worker's private
      // tracer.
      obs::ScopedSpan request_span(exec_options.tracer, "serve.request");
      exec::QueryContext context(exec_options, pending.request.query);
      response.report =
          mediator_->AnswerInContext(pending.request.query, context);
      request_span.Counter("queue_ms", response.queue_ms);
      request_span.Counter("ok", response.report.ok() ? 1 : 0);
      if (response.report.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        context.PublishMetrics({&server_metrics_});
      }
    }
    response.exec_ms = MsSince(exec_start);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.in_flight;
    if (response.report.ok()) {
      ++stats_.completed;
      server_metrics_.Add(obs::metric::kServeCompleted);
    } else {
      ++stats_.failed;
      server_metrics_.Add(obs::metric::kServeFailed);
    }
  }
  drained_.notify_all();

  if (pending.done) pending.done(std::move(response));
}

void ServeSession::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return;  // already shut down
    draining_ = true;
    // Drain: every accepted request — queued or executing — completes.
    drained_.wait(lock,
                  [&] { return queue_.empty() && stats_.in_flight == 0; });
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ServeSession::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServeSession::Stats ServeSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  snapshot.governor = governor_.stats();
  return snapshot;
}

obs::MetricsRegistry ServeSession::server_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry snapshot;
  snapshot.Merge(server_metrics_);
  return snapshot;
}

}  // namespace limcap::mediator
