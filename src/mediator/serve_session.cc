#include "mediator/serve_session.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <utility>

#include "capability/catalog_fingerprint.h"
#include "common/json.h"

namespace limcap::mediator {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ServeSession::ServeSession(const Mediator* mediator, ServeOptions options)
    : mediator_(mediator),
      options_(std::move(options)),
      governor_(options_.governor) {
  // Per-query state must not leak in through the template: a shared
  // tracer or registry would race across workers, and a shared
  // dictionary would break per-query bit-identity.
  options_.exec.session_dict = nullptr;
  options_.exec.tracer = nullptr;
  options_.exec.metrics = nullptr;
  options_.exec.runtime.recorder = nullptr;  // one TraceRecorder per request
  if (options_.exec.plan_cache == nullptr) {
    options_.exec.plan_cache = &mediator_->plan_cache();
  }
  options_.exec.runtime.governor = &governor_;
  options_.exec.runtime.adaptive_state = &adaptive_state_;
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServeSession::~ServeSession() { Shutdown(); }

Status ServeSession::Submit(ServeRequest request, Callback done) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    ++stats_.rejected;
    server_metrics_.Add(obs::metric::kServeRejected);
    return Status::LoadShed("server is draining for shutdown");
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    server_metrics_.Add(obs::metric::kServeRejected);
    return Status::LoadShed(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " requests queued)");
  }
  ++stats_.accepted;
  server_metrics_.Add(obs::metric::kServeAccepted);
  server_metrics_.Observe(obs::metric::kServeQueueDepth,
                          static_cast<double>(queue_.size()));
  server_metrics_.Observe(obs::metric::kServeInFlight,
                          static_cast<double>(stats_.in_flight));
  queue_.push_back(Pending{std::move(request), std::move(done),
                           std::chrono::steady_clock::now()});
  work_available_.notify_one();
  return Status::OK();
}

ServeResponse ServeSession::Answer(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  Status admitted = Submit(std::move(request), [&promise](ServeResponse r) {
    promise.set_value(std::move(r));
  });
  if (!admitted.ok()) {
    ServeResponse shed;
    shed.report = admitted;
    return shed;
  }
  return future.get();
}

void ServeSession::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.in_flight;
    }
    Process(std::move(pending));
  }
}

void ServeSession::Process(Pending pending) {
  ServeResponse response;
  response.queue_ms = MsSince(pending.submitted);

  const bool expired = pending.request.deadline_ms > 0 &&
                       response.queue_ms > pending.request.deadline_ms;
  if (expired) {
    response.report = Status::DeadlineExceeded(
        "request spent " + std::to_string(response.queue_ms) +
        " ms queued, past its " +
        std::to_string(pending.request.deadline_ms) + " ms deadline");
  } else {
    exec::ExecOptions exec_options = options_.exec;
    if (pending.request.max_source_queries > 0) {
      exec_options.max_source_queries = pending.request.max_source_queries;
    }
    if (pending.request.min_answers > 0) {
      exec_options.min_answers = pending.request.min_answers;
    }
    if (options_.trace_requests) {
      response.trace = std::make_unique<obs::Tracer>();
      exec_options.tracer = response.trace.get();
    }
    // One capture sink per request: the scheduler calls it from this
    // worker (the request's driver thread) only, in batch order.
    replay::TraceRecorder recorder;
    const bool recording = !options_.record_dir.empty();
    if (recording) exec_options.runtime.recorder = &recorder;
    const auto exec_start = std::chrono::steady_clock::now();
    {
      // The request-level root span; the whole answer sub-tree (plan,
      // gate, rounds, fetches) nests under it on this worker's private
      // tracer.
      obs::ScopedSpan request_span(exec_options.tracer, "serve.request");
      exec::QueryContext context(exec_options, pending.request.query);
      response.report =
          mediator_->AnswerInContext(pending.request.query, context);
      request_span.Counter("queue_ms", response.queue_ms);
      request_span.Counter("ok", response.report.ok() ? 1 : 0);
      if (response.report.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        context.PublishMetrics({&server_metrics_});
      }
    }
    response.exec_ms = MsSince(exec_start);
    if (recording && response.report.ok()) {
      replay::ReplayManifest manifest = replay::MakeReplayManifest(
          pending.request.query, *mediator_->catalog(), mediator_->domains(),
          exec_options);
      manifest.scenario = options_.record_scenario;
      manifest.workload_seed = options_.record_seed;
      replay::StampExecution(response.report->exec, &manifest);
      RecordRequest(recorder, std::move(manifest));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.in_flight;
    if (response.report.ok()) {
      ++stats_.completed;
      server_metrics_.Add(obs::metric::kServeCompleted);
    } else {
      ++stats_.failed;
      server_metrics_.Add(obs::metric::kServeFailed);
    }
  }
  drained_.notify_all();

  if (pending.done) pending.done(std::move(response));
}

void ServeSession::RecordRequest(const replay::TraceRecorder& recorder,
                                 replay::ReplayManifest manifest) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  char id[24];
  std::snprintf(id, sizeof(id), "req-%05zu", record_sequence_);
  ++record_sequence_;
  const std::string name = std::string(id) + ".lcap";
  manifest.request_id = id;

  RecordEntry entry;
  entry.file = name;
  entry.request_id = manifest.request_id;
  entry.fingerprint =
      capability::FingerprintToString(manifest.recorded_fingerprint);
  entry.calls = recorder.call_count();
  entry.answer_rows = manifest.answer_rows;
  entry.degraded = manifest.degraded;

  const std::string bytes = recorder.EncodeArtifactBytes(std::move(manifest));
  if (record_bytes_used_ + bytes.size() > options_.record_budget_bytes) {
    ++record_dropped_;
    return;
  }
  const std::string path = options_.record_dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    ++record_dropped_;
    return;
  }
  record_bytes_used_ += bytes.size();
  entry.bytes = bytes.size();
  record_index_.push_back(std::move(entry));
}

void ServeSession::WriteRecordIndex() {
  std::lock_guard<std::mutex> lock(record_mutex_);
  if (options_.record_dir.empty() || record_index_written_) return;
  record_index_written_ = true;
  Json index = Json::MakeObject();
  index.Set("version", Json(static_cast<double>(replay::kReplayArtifactVersion)));
  index.Set("scenario", Json(options_.record_scenario));
  index.Set("seed", Json(std::to_string(options_.record_seed)));
  index.Set("bytes_used", Json(static_cast<double>(record_bytes_used_)));
  index.Set("dropped", Json(static_cast<double>(record_dropped_)));
  Json artifacts = Json::MakeArray();
  for (const RecordEntry& entry : record_index_) {
    Json item = Json::MakeObject();
    item.Set("file", Json(entry.file));
    item.Set("request_id", Json(entry.request_id));
    item.Set("fingerprint", Json(entry.fingerprint));
    item.Set("bytes", Json(static_cast<double>(entry.bytes)));
    item.Set("calls", Json(static_cast<double>(entry.calls)));
    item.Set("answer_rows", Json(static_cast<double>(entry.answer_rows)));
    item.Set("degraded", Json(entry.degraded));
    artifacts.Append(std::move(item));
  }
  index.Set("artifacts", std::move(artifacts));
  std::ofstream out(options_.record_dir + "/record_index.json",
                    std::ios::binary | std::ios::trunc);
  const std::string dump = index.Dump();
  out.write(dump.data(), static_cast<std::streamsize>(dump.size()));
}

void ServeSession::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return;  // already shut down
    draining_ = true;
    // Drain: every accepted request — queued or executing — completes.
    drained_.wait(lock,
                  [&] { return queue_.empty() && stats_.in_flight == 0; });
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Once-only on drain: every worker has delivered, so the index is the
  // complete capture set.
  WriteRecordIndex();
}

bool ServeSession::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServeSession::Stats ServeSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  snapshot.governor = governor_.stats();
  {
    std::lock_guard<std::mutex> record_lock(record_mutex_);
    snapshot.recorded = record_index_.size();
    snapshot.record_dropped = record_dropped_;
  }
  return snapshot;
}

obs::MetricsRegistry ServeSession::server_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry snapshot;
  snapshot.Merge(server_metrics_);
  return snapshot;
}

}  // namespace limcap::mediator
