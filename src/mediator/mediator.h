#ifndef LIMCAP_MEDIATOR_MEDIATOR_H_
#define LIMCAP_MEDIATOR_MEDIATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capability/source_catalog.h"
#include "common/result.h"
#include "exec/query_answerer.h"
#include "obs/metrics.h"
#include "planner/domain_map.h"
#include "planner/plan_cache.h"
#include "planner/query.h"

namespace limcap::mediator {

/// A mediator view (the query-centric approach of Section 1.1, as in
/// TSIMMIS): a named virtual relation exported to users, defined by one
/// or more conjunctions of source views. A user query against the view
/// expands (Section 2.2, generation option 1) into a connection query
/// with one connection per definition.
///
/// Example 2.1 in mediator terms: a view cd_info(Song, Cd, Artist, Price)
/// defined by the four conjunctions {v1,v3}, {v1,v4}, {v2,v3}, {v2,v4};
/// the user asks cd_info for Price where Song = t1.
struct MediatorView {
  std::string name;
  /// Attributes the view exports; every definition must cover them.
  std::vector<std::string> exported_attributes;
  /// Each definition is a set of source views whose natural join (then
  /// projected onto the exported attributes) is one way to compute the
  /// view; the view's extent is the union over definitions.
  std::vector<planner::Connection> definitions;
};

/// A user query against one mediator view: selections on exported
/// attributes and a list of exported attributes to return.
struct MediatorQuery {
  std::string view;
  std::vector<planner::InputAssignment> selections;
  std::vector<std::string> outputs;
};

/// The mediator: holds view definitions over a source catalog, expands
/// user queries into connection queries, and answers them through the
/// planner/exec pipeline.
class Mediator {
 public:
  /// `catalog` must outlive the mediator.
  Mediator(const capability::SourceCatalog* catalog,
           planner::DomainMap domains)
      : catalog_(catalog),
        domains_(std::move(domains)),
        plan_cache_(std::make_unique<planner::PlanCache>()) {}

  /// Registers a view after validating it: non-empty definitions, source
  /// views exist, every exported attribute appears in every definition,
  /// name unused.
  Status Define(MediatorView view);

  bool Contains(const std::string& name) const {
    return views_.count(name) > 0;
  }
  Result<const MediatorView*> Find(const std::string& name) const;

  /// View expansion: the mediator query becomes
  ///   ⟨selections, outputs, definitions-of-the-view⟩.
  /// Fails when the query selects or returns attributes the view does not
  /// export, or overlaps selections with outputs.
  Result<planner::Query> Expand(const MediatorQuery& query) const;

  /// Expand + plan + execute in one call. Each successful answer's
  /// metrics (obs/metrics.h) are folded into the session registry below;
  /// `options.tracer` / `options.metrics`, when set, additionally receive
  /// this query's spans and counters.
  Result<exec::AnswerReport> Answer(const MediatorQuery& query,
                                    const exec::ExecOptions& options = {}) const;

  /// The context-level core of Answer(), minus everything that is not
  /// safe under concurrency: answers an already-validated connection
  /// query using `context`'s per-query state, touching no mediator
  /// mutables. The plan cache and any fetch governor the context carries
  /// are thread-safe, so any number of threads may run this
  /// concurrently — ServeSession's workers do, each publishing the
  /// context's metrics into the server registry under its own lock.
  Result<exec::AnswerReport> AnswerInContext(
      const planner::Query& expanded, exec::QueryContext& context) const;

  /// Counters and histograms aggregated over every successful Answer()
  /// since construction (or the last reset) — the per-session view the
  /// per-query registries merge into. Like the rest of the mediator, not
  /// thread-safe: one session, one thread.
  const obs::MetricsRegistry& session_metrics() const {
    return session_metrics_;
  }
  void ResetSessionMetrics() { session_metrics_.Clear(); }

  /// The session's compiled-plan cache: Answer() consults it (unless the
  /// caller wired their own into options.plan_cache), so a repeated query
  /// skips planning entirely. Exposed for stats, Clear(), and sharing one
  /// cache between mediators over the same catalog.
  planner::PlanCache& plan_cache() const { return *plan_cache_; }

  /// Replaces the session cache with an empty one of `capacity` plans
  /// (0 disables caching). Capacity is fixed per cache, so this drops the
  /// current contents and stats.
  void SetPlanCacheCapacity(std::size_t capacity) {
    plan_cache_ = std::make_unique<planner::PlanCache>(capacity);
  }

  const capability::SourceCatalog* catalog() const { return catalog_; }
  const planner::DomainMap& domains() const { return domains_; }

 private:
  const capability::SourceCatalog* catalog_;
  planner::DomainMap domains_;
  std::map<std::string, MediatorView> views_;
  /// Mutable: Answer() is logically const (the catalog and the view
  /// definitions never change) but accounts for what it did here.
  mutable obs::MetricsRegistry session_metrics_;
  /// Session plan cache, behind a pointer (the cache itself is pinned:
  /// it owns a mutex). Mutable for the same reason as the metrics.
  /// Generation reclamation — dropping entries of a retired catalog
  /// fingerprint when a source joins or leaves — lives in the cache
  /// itself (PlanCache::NoteCatalogGeneration), which Answer() calls
  /// before every answer, for caller-supplied caches too.
  mutable std::unique_ptr<planner::PlanCache> plan_cache_;
};

}  // namespace limcap::mediator

#endif  // LIMCAP_MEDIATOR_MEDIATOR_H_
