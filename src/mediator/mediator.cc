#include "mediator/mediator.h"

#include <algorithm>
#include <set>

namespace limcap::mediator {

Status Mediator::Define(MediatorView view) {
  if (view.name.empty()) {
    return Status::InvalidArgument("mediator view name is empty");
  }
  if (views_.count(view.name) > 0) {
    return Status::AlreadyExists("mediator view already defined: " +
                                 view.name);
  }
  if (view.definitions.empty()) {
    return Status::InvalidArgument("mediator view " + view.name +
                                   " has no definitions");
  }
  std::set<std::string> exported(view.exported_attributes.begin(),
                                 view.exported_attributes.end());
  if (exported.size() != view.exported_attributes.size()) {
    return Status::InvalidArgument("mediator view " + view.name +
                                   " exports a duplicate attribute");
  }
  if (exported.empty()) {
    return Status::InvalidArgument("mediator view " + view.name +
                                   " exports no attributes");
  }
  for (const planner::Connection& definition : view.definitions) {
    if (definition.size() == 0) {
      return Status::InvalidArgument("mediator view " + view.name +
                                     " has an empty definition");
    }
    std::set<std::string> seen;
    for (const std::string& source : definition.view_names()) {
      if (!catalog_->Contains(source)) {
        return Status::InvalidArgument(
            "mediator view " + view.name +
            " references unknown source view: " + source);
      }
      if (!seen.insert(source).second) {
        return Status::InvalidArgument("mediator view " + view.name +
                                       " repeats source view " + source +
                                       " within a definition");
      }
    }
    LIMCAP_ASSIGN_OR_RETURN(
        capability::AttributeSet attrs,
        planner::ConnectionAttributes(definition, *catalog_));
    for (const std::string& attribute : view.exported_attributes) {
      if (attrs.count(attribute) == 0) {
        return Status::InvalidArgument(
            "definition " + definition.ToString() + " of mediator view " +
            view.name + " does not cover exported attribute " + attribute);
      }
    }
  }
  views_.emplace(view.name, std::move(view));
  return Status::OK();
}

Result<const MediatorView*> Mediator::Find(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no mediator view named " + name);
  }
  return &it->second;
}

Result<planner::Query> Mediator::Expand(const MediatorQuery& query) const {
  LIMCAP_ASSIGN_OR_RETURN(const MediatorView* view, Find(query.view));
  std::set<std::string> exported(view->exported_attributes.begin(),
                                 view->exported_attributes.end());
  std::set<std::string> selected;
  for (const planner::InputAssignment& selection : query.selections) {
    if (exported.count(selection.attribute) == 0) {
      return Status::InvalidArgument("view " + query.view +
                                     " does not export selected attribute " +
                                     selection.attribute);
    }
    selected.insert(selection.attribute);
  }
  if (query.outputs.empty()) {
    return Status::InvalidArgument("mediator query returns no attributes");
  }
  for (const std::string& output : query.outputs) {
    if (exported.count(output) == 0) {
      return Status::InvalidArgument("view " + query.view +
                                     " does not export output attribute " +
                                     output);
    }
    if (selected.count(output) > 0) {
      return Status::InvalidArgument(
          "attribute both selected and returned: " + output);
    }
  }
  return planner::Query(query.selections, query.outputs, view->definitions);
}

Result<exec::AnswerReport> Mediator::Answer(
    const MediatorQuery& query, const exec::ExecOptions& options) const {
  LIMCAP_ASSIGN_OR_RETURN(planner::Query expanded, Expand(query));
  LIMCAP_RETURN_NOT_OK(expanded.Validate(*catalog_, domains_));
  exec::ExecOptions session_options = options;
  // Wire the session plan cache in (keeping a caller-supplied cache when
  // one was passed). Either way, report the catalog's current
  // fingerprint to the cache: when the catalog mutated since the last
  // answer — a source registered, or Deregister retired one — the stale
  // generation's entries can never be hit again, and the cache drops
  // them. The generation state lives in the (thread-safe) cache itself,
  // so caller-supplied caches (e.g. a ServeSession's) are reclaimed too,
  // not just the mediator's own.
  if (session_options.plan_cache == nullptr) {
    session_options.plan_cache = plan_cache_.get();
  }
  session_options.plan_cache->NoteCatalogGeneration(catalog_->fingerprint());
  // One context per answer: it owns the session dictionary every layer
  // of the pipeline encodes against (so the report stays decodable after
  // execution ends and no layer re-translates a tuple) and the query's
  // private metrics registry.
  exec::QueryContext context(session_options, expanded);
  Result<exec::AnswerReport> report = AnswerInContext(expanded, context);
  // Merge the private registry into the session registry (and into the
  // caller's, when one was passed) only on success, so a caller-supplied
  // registry's prior contents are never double-counted and failed
  // attempts stay out of session aggregates.
  if (report.ok()) context.PublishMetrics({&session_metrics_});
  return report;
}

Result<exec::AnswerReport> Mediator::AnswerInContext(
    const planner::Query& expanded, exec::QueryContext& context) const {
  context.IsolateMetrics();
  exec::QueryAnswerer answerer(catalog_, domains_);
  return answerer.Answer(expanded, context);
}

}  // namespace limcap::mediator
