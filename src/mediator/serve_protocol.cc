#include "mediator/serve_protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "planner/query_parser.h"

namespace limcap::mediator {

namespace {

/// The length prefix, big-endian so the wire format is byte-order
/// independent.
void PutLength(uint32_t length, char out[4]) {
  out[0] = static_cast<char>((length >> 24) & 0xFF);
  out[1] = static_cast<char>((length >> 16) & 0xFF);
  out[2] = static_cast<char>((length >> 8) & 0xFF);
  out[3] = static_cast<char>(length & 0xFF);
}

uint32_t GetLength(const char* in) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3]));
}

/// write(2) until done, retrying EINTR.
Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// read(2) until `size` bytes, retrying EINTR. `*eof_ok` reports a clean
/// EOF before the first byte (only meaningful when the caller allows it).
Status ReadAll(int fd, char* data, std::size_t size, bool* clean_eof) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  if (clean_eof != nullptr) *clean_eof = false;
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  char prefix[4];
  PutLength(static_cast<uint32_t>(payload.size()), prefix);
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(prefix, 4);
  frame.append(payload);
  return frame;
}

Result<std::string> DecodeFrame(std::string_view buffer,
                                std::size_t* consumed) {
  if (buffer.size() < 4) {
    return Status::OutOfRange("incomplete frame: no length prefix yet");
  }
  const uint32_t length = GetLength(buffer.data());
  if (length > kMaxFramePayload) {
    return Status::ProtocolError(
        "frame payload length " + std::to_string(length) +
        " exceeds the " + std::to_string(kMaxFramePayload) + " byte cap");
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(length)) {
    return Status::OutOfRange("incomplete frame: partial payload");
  }
  *consumed = 4 + static_cast<std::size_t>(length);
  return std::string(buffer.substr(4, length));
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds the size cap");
  }
  // One buffer, one write path: short frames are the norm, so the copy
  // is cheaper than risking a torn prefix/payload interleave from two
  // writers on one socket.
  const std::string frame = EncodeFrame(payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<std::string> ReadFrame(int fd) {
  char prefix[4];
  bool clean_eof = false;
  LIMCAP_RETURN_NOT_OK(ReadAll(fd, prefix, 4, &clean_eof));
  if (clean_eof) {
    return Status::NotFound("connection closed at a frame boundary");
  }
  const uint32_t length = GetLength(prefix);
  if (length > kMaxFramePayload) {
    // Do NOT read the declared payload: a hostile or corrupted prefix
    // would have us blocking on up-to-4 GiB that may never arrive. The
    // caller closes the connection on kProtocolError instead.
    return Status::ProtocolError(
        "frame payload length " + std::to_string(length) +
        " exceeds the " + std::to_string(kMaxFramePayload) + " byte cap");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    LIMCAP_RETURN_NOT_OK(ReadAll(fd, payload.data(), length, nullptr));
  }
  return payload;
}

Result<WireRequest> ParseWireRequest(const Json& message) {
  if (!message.is_object()) {
    return Status::InvalidArgument("frame payload is not a JSON object");
  }
  WireRequest wire;
  wire.id = static_cast<uint64_t>(message.GetNumber("id", 0));
  wire.query_text = message.GetString("query");
  if (wire.query_text.empty()) {
    return Status::InvalidArgument("query message carries no \"query\" text");
  }
  LIMCAP_ASSIGN_OR_RETURN(wire.request.query,
                          planner::ParseQuery(wire.query_text));
  const double budget = message.GetNumber("max_source_queries", 0);
  if (budget > 0) {
    wire.request.max_source_queries = static_cast<std::size_t>(budget);
  }
  const double min_answers = message.GetNumber("min_answers", 0);
  if (min_answers > 0) {
    wire.request.min_answers = static_cast<std::size_t>(min_answers);
  }
  wire.request.deadline_ms = message.GetNumber("deadline_ms", 0);
  return wire;
}

Json RenderResponse(uint64_t id, const ServeResponse& response) {
  Json reply = Json::MakeObject();
  reply.Set("id", id);
  if (!response.report.ok()) {
    const Status& status = response.report.status();
    reply.Set("type", "error");
    reply.Set("ok", false);
    reply.Set("code", static_cast<int>(status.code()));
    reply.Set("code_name", StatusCodeToString(status.code()));
    reply.Set("message", status.message());
    reply.Set("queue_ms", response.queue_ms);
    return reply;
  }
  const exec::AnswerReport& report = *response.report;
  reply.Set("type", "answer");
  reply.Set("ok", true);
  Json columns = Json::MakeArray();
  for (const std::string& attribute :
       report.exec.answer.schema().attributes()) {
    columns.Append(attribute);
  }
  reply.Set("columns", std::move(columns));
  Json rows = Json::MakeArray();
  for (const relational::Row& row : report.exec.answer.DecodedRows()) {
    Json out_row = Json::MakeArray();
    for (const Value& value : row) out_row.Append(value.ToString());
    rows.Append(std::move(out_row));
  }
  reply.Set("rows", std::move(rows));
  reply.Set("rounds", static_cast<uint64_t>(report.exec.rounds));
  reply.Set("source_queries",
            static_cast<uint64_t>(report.exec.log.total_queries()));
  reply.Set("degraded", report.exec.fetch_report.degraded());
  reply.Set("cache_hit", report.cache.hit);
  reply.Set("queue_ms", response.queue_ms);
  reply.Set("exec_ms", response.exec_ms);
  return reply;
}

Json RenderStatus(uint64_t id, const ServeSession& session) {
  const ServeSession::Stats stats = session.stats();
  Json reply = Json::MakeObject();
  reply.Set("type", "status");
  reply.Set("id", id);
  reply.Set("accepted", stats.accepted);
  reply.Set("rejected", stats.rejected);
  reply.Set("completed", stats.completed);
  reply.Set("failed", stats.failed);
  reply.Set("in_flight", static_cast<uint64_t>(stats.in_flight));
  reply.Set("queue_depth", static_cast<uint64_t>(stats.queue_depth));
  Json governor = Json::MakeObject();
  governor.Set("acquired", stats.governor.acquired);
  governor.Set("waited", stats.governor.waited);
  governor.Set("cross_query_coalesced", stats.governor.cross_query_coalesced);
  governor.Set("peak_in_flight",
               static_cast<uint64_t>(stats.governor.peak_in_flight));
  reply.Set("governor", std::move(governor));
  const planner::PlanCache::Stats cache =
      session.mediator().plan_cache().stats();
  Json plan_cache = Json::MakeObject();
  plan_cache.Set("size", static_cast<uint64_t>(cache.size));
  plan_cache.Set("capacity", static_cast<uint64_t>(cache.capacity));
  plan_cache.Set("hits", cache.hits);
  plan_cache.Set("misses", cache.misses);
  plan_cache.Set("inserts", cache.inserts);
  plan_cache.Set("evictions", cache.evictions);
  plan_cache.Set("invalidations", cache.invalidations);
  reply.Set("plan_cache", std::move(plan_cache));
  Json counters = Json::MakeObject();
  // Bound to a local on purpose: server_metrics() returns a snapshot by
  // value, and a range-for over a member of that temporary would iterate
  // freed memory (the temporary dies before the loop body).
  const obs::MetricsRegistry metrics = session.server_metrics();
  for (const auto& [name, value] : metrics.counters()) {
    counters.Set(name, value);
  }
  reply.Set("counters", std::move(counters));
  return reply;
}

}  // namespace limcap::mediator
