#ifndef LIMCAP_MEDIATOR_SERVE_PROTOCOL_H_
#define LIMCAP_MEDIATOR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/result.h"
#include "mediator/serve_session.h"

namespace limcap::mediator {

/// The limcap_serve wire protocol: length-prefixed JSON frames over a
/// byte stream.
///
/// Framing — each message is
///
///   [4-byte big-endian payload length][payload bytes]
///
/// with the payload a single JSON object carrying a "type" field.
/// Payloads are capped (kMaxFramePayload) so a corrupt length prefix
/// cannot make a peer allocate gigabytes.
///
/// Messages client → server:
///   {"type":"query","id":N,"query":"<paper notation>"}
///       optional: "max_source_queries", "min_answers", "deadline_ms"
///   {"type":"status","id":N}
///   {"type":"shutdown","id":N}   — drain the server, then reply
///
/// Messages server → client:
///   {"type":"answer","id":N,"ok":true,"columns":[...],"rows":[[...]],
///    "rounds":R,"source_queries":S,"degraded":B,"cache_hit":B,
///    "queue_ms":Q,"exec_ms":E}
///   {"type":"error","id":N,"ok":false,"code":C,"code_name":"...",
///    "message":"..."}        — C is the numeric StatusCode; a load-shed
///                              rejection carries StatusCode::kLoadShed
///   {"type":"status","id":N, ...stats and metrics...}
///   {"type":"bye","id":N}    — the shutdown reply, sent after the drain
///
/// Queries travel as text in the paper's connection-query notation —
/// exactly what planner::ParseQuery reads and Query::ToString prints, so
/// they round-trip without a parallel JSON schema.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Prepends the length prefix: the bytes to write for `payload`.
std::string EncodeFrame(std::string_view payload);

/// Extracts the first complete frame of `buffer`. Returns the payload
/// and sets `*consumed` to the bytes to drop from the front; returns
/// OutOfRange when the buffer does not yet hold a complete frame
/// (read more and retry), kProtocolError on an oversized length prefix
/// (the stream is unrecoverable: close it).
Result<std::string> DecodeFrame(std::string_view buffer,
                                std::size_t* consumed);

/// Blocking fd-level framing (sockets, pipes). ReadFrame returns
/// NotFound on clean EOF at a frame boundary, kProtocolError on a short
/// read mid-frame or an oversized length prefix (never blocks waiting
/// for an over-cap payload), Internal on an I/O error. Both retry on
/// EINTR.
Status WriteFrame(int fd, std::string_view payload);
Result<std::string> ReadFrame(int fd);

/// A parsed client "query" message.
struct WireRequest {
  uint64_t id = 0;
  std::string query_text;
  ServeRequest request;  ///< query parsed, budget overrides applied
};

/// Parses and validates a client frame payload of type "query".
Result<WireRequest> ParseWireRequest(const Json& message);

/// Builds the reply for one answered request: "answer" on an OK report,
/// "error" otherwise (including load-shed and queue-deadline failures).
Json RenderResponse(uint64_t id, const ServeResponse& response);

/// Builds a "status" reply from a stats snapshot plus the server
/// registry and plan-cache counters.
Json RenderStatus(uint64_t id, const ServeSession& session);

}  // namespace limcap::mediator

#endif  // LIMCAP_MEDIATOR_SERVE_PROTOCOL_H_
