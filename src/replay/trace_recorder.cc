#include "replay/trace_recorder.h"

#include "capability/catalog_fingerprint.h"
#include "exec/fingerprint.h"

namespace limcap::replay {

ReplayManifest MakeReplayManifest(const planner::Query& query,
                                  const capability::SourceCatalog& catalog,
                                  const planner::DomainMap& domains,
                                  const exec::ExecOptions& options) {
  ReplayManifest manifest;
  manifest.query_text = query.ToString();
  for (const capability::SourceView& view : catalog.Views()) {
    ReplayViewSpec spec;
    spec.name = view.name();
    spec.attributes = view.schema().attributes();
    for (const capability::BindingPattern& pattern : view.templates()) {
      spec.templates.push_back(pattern.ToString());
    }
    manifest.views.push_back(std::move(spec));
  }
  manifest.domains = domains.overrides();
  manifest.catalog_fingerprint = catalog.fingerprint();
  manifest.options = options;
  // The non-owning wires are this run's, not the replay's: the replay
  // attaches its own dictionary/cache/tracer and must see no governor or
  // recorder (and a manifest must not dangle into the recorded process).
  manifest.options.session_dict = nullptr;
  manifest.options.pruned_channels.clear();
  manifest.options.plan_cache = nullptr;
  manifest.options.tracer = nullptr;
  manifest.options.metrics = nullptr;
  manifest.options.runtime.governor = nullptr;
  manifest.options.runtime.recorder = nullptr;
  return manifest;
}

void StampExecution(const exec::ExecResult& exec, ReplayManifest* manifest) {
  manifest->recorded_fingerprint =
      capability::StableHash64(exec::OrderedFingerprint(exec));
  manifest->answer_rows = exec.answer.size();
  manifest->source_queries = exec.log.total_queries();
  manifest->rounds = exec.rounds;
  manifest->degraded = exec.fetch_report.degraded();
}

}  // namespace limcap::replay
