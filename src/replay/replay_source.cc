#include "replay/replay_source.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace limcap::replay {

namespace {

void AppendValueKey(std::string* key, const Value& value) {
  key->push_back(static_cast<char>('0' + static_cast<int>(value.kind())));
  key->push_back(':');
  switch (value.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt64:
      *key += std::to_string(value.int64());
      break;
    case Value::Kind::kDouble: {
      // Hexfloat: the exact bits, so 0.1 recorded and 0.1 replayed key
      // identically while genuinely different doubles never collide.
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%a", value.dbl());
      *key += buffer;
      break;
    }
    case Value::Kind::kString:
      *key += value.str();
      break;
  }
}

/// The canonical value-level identity of a source query. Positions are
/// ascending schema positions (SourceQuery's invariant), values are
/// exact, so the key is independent of binding order, dictionaries, and
/// variable names.
std::string CanonicalKey(const std::vector<uint32_t>& positions,
                         const std::vector<Value>& values) {
  std::string key;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    key += std::to_string(positions[i]);
    key.push_back('=');
    AppendValueKey(&key, values[i]);
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

void ReplaySource::AddCall(const runtime::FetchRecorder::Fetch& fetch) {
  Call call;
  call.attempts = fetch.attempts;
  recorded_[CanonicalKey(fetch.positions, fetch.values)].calls.push_back(
      std::move(call));
}

Result<relational::Relation> ReplaySource::ExecuteTimed(
    const capability::SourceQuery& query, Timing* timing) {
  std::vector<Value> values;
  values.reserve(query.ids.size());
  for (ValueId id : query.ids) values.push_back(query.dict->Get(id));
  const std::string key = CanonicalKey(query.positions, values);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = recorded_.find(key);
  if (it == recorded_.end()) {
    ++stats_.misses;
    return Status::NotFound(
        "replay miss: no recorded answer for " +
        view_.FormatQuery(query.DecodedBindings(view_)) +
        " (the recording holds " + std::to_string(recorded_.size()) +
        " distinct quer" + (recorded_.size() == 1 ? "y" : "ies") +
        " for this source) — the replayed planner issued a source query "
        "the recorded run never made; that is a behavior divergence to "
        "investigate, not a fallback to serve");
  }
  Recorded& rec = it->second;
  const Call& call = rec.calls[rec.call_index];
  const runtime::FetchRecorder::Attempt& attempt =
      call.attempts[std::min(rec.attempt_index, call.attempts.size() - 1)];
  // Advance: next attempt of this call, else first attempt of the next
  // recorded call, else stick on the last attempt (a replay retry loop
  // may probe once more than a synthesized single-attempt record holds).
  if (rec.attempt_index + 1 < call.attempts.size()) {
    ++rec.attempt_index;
  } else if (rec.call_index + 1 < rec.calls.size()) {
    ++rec.call_index;
    rec.attempt_index = 0;
  } else {
    rec.attempt_index = call.attempts.size();
  }

  ++stats_.calls;
  timing->added_latency_ms = attempt.added_latency_ms;
  if (attempt.discarded) {
    // The live run never saw this attempt's outcome (it blew the
    // deadline and was discarded); the scheduler will discard this one
    // too — same latency, same policy — so the content is irrelevant.
    return relational::Relation(view_.schema(), query.dict);
  }
  if (!attempt.ok) {
    ++stats_.replayed_faults;
    return Status(attempt.code, attempt.message);
  }
  relational::Relation tuples(view_.schema(), query.dict);
  for (const relational::Row& row : attempt.rows) {
    tuples.InsertUnsafe(row);
  }
  return tuples;
}

ReplaySource::Stats ReplaySource::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace limcap::replay
