#ifndef LIMCAP_REPLAY_REPLAY_SOURCE_H_
#define LIMCAP_REPLAY_REPLAY_SOURCE_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "capability/source_view.h"
#include "replay/replay_artifact.h"
#include "runtime/timed_source.h"

namespace limcap::replay {

/// A Source serving one view's recorded traffic back: results are keyed
/// by the canonical value-level query (ascending schema positions +
/// exact values — order- and rename-invariant by construction, the same
/// identity the scheduler's cross-query coalescing uses), recorded
/// faults are re-raised with their original status, and recorded latency
/// perturbations are replayed through the TimedSource interface so the
/// simulated clock evolves exactly as it did live.
///
/// A query with no recorded answer fails loudly (NotFound with a
/// diagnostic): the planner under replay diverged from the planner under
/// record, which is a finding, not a condition to paper over with empty
/// results. `stats().misses` counts these; replay reports assert zero.
class ReplaySource : public runtime::TimedSource {
 public:
  explicit ReplaySource(capability::SourceView view)
      : view_(std::move(view)) {}

  /// Registers one recorded call (dispatch order). Calls with the same
  /// canonical query queue up and are served in order; once exhausted,
  /// the last attempt is re-served (a replay retry loop may probe one
  /// more time than a synthesized single-attempt record holds).
  void AddCall(const runtime::FetchRecorder::Fetch& fetch);

  const capability::SourceView& view() const override { return view_; }

  Result<relational::Relation> ExecuteTimed(
      const capability::SourceQuery& query, Timing* timing) override;

  struct Stats {
    /// Execute calls served from the recording.
    std::size_t calls = 0;
    /// Execute calls with no recorded answer (each also returned the
    /// loud NotFound diagnostic).
    std::size_t misses = 0;
    /// Served attempts that re-raised a recorded fault status.
    std::size_t replayed_faults = 0;
  };
  Stats stats() const;

 private:
  struct Call {
    std::vector<runtime::FetchRecorder::Attempt> attempts;
  };
  struct Recorded {
    std::vector<Call> calls;
    std::size_t call_index = 0;
    std::size_t attempt_index = 0;
  };

  capability::SourceView view_;
  /// Canonical-query key → recorded calls + replay cursor. The mutex
  /// covers the cursors and stats: the scheduler may Execute one source
  /// from several workers at once (each with a private dictionary, so
  /// the relation building below never races on interning).
  mutable std::mutex mutex_;
  std::map<std::string, Recorded> recorded_;
  Stats stats_;
};

}  // namespace limcap::replay

#endif  // LIMCAP_REPLAY_REPLAY_SOURCE_H_
