#include "replay/replay_artifact.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "capability/catalog_fingerprint.h"

namespace limcap::replay {

namespace {

using capability::FingerprintToString;
using capability::StableHash64;
using runtime::FetchRecorder;

// --- exact scalar codecs ---------------------------------------------------

/// Doubles travel as hexfloat: "%a" renders the exact binary value and
/// strtod parses it back bit-for-bit, which decimal shortest-round-trip
/// printing only promises when both ends round correctly.
std::string DoubleToHex(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Result<double> DoubleFromHex(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty double payload");
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("bad double payload: " + text);
  }
  return value;
}

std::string U64ToString(uint64_t value) { return std::to_string(value); }

Result<uint64_t> U64FromString(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty uint64 payload");
  char* end = nullptr;
  uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("bad uint64 payload: " + text);
  }
  return value;
}

/// Fingerprints render "0x..." (the repo-wide convention) for human
/// greppability; parsed with base 16.
Result<uint64_t> FingerprintFromString(const std::string& text) {
  if (text.size() < 3 || text[0] != '0' || text[1] != 'x') {
    return Status::InvalidArgument("bad fingerprint: " + text);
  }
  char* end = nullptr;
  uint64_t value = std::strtoull(text.c_str() + 2, &end, 16);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("bad fingerprint: " + text);
  }
  return value;
}

/// Budgets use SIZE_MAX as "unlimited"; the artifact stores 0 for it (a
/// zero budget is meaningless, and JSON numbers cannot hold SIZE_MAX).
uint64_t BudgetToJson(std::size_t budget) {
  return budget == std::numeric_limits<std::size_t>::max() ? 0 : budget;
}

std::size_t BudgetFromJson(uint64_t value) {
  return value == 0 ? std::numeric_limits<std::size_t>::max()
                    : static_cast<std::size_t>(value);
}

/// Deadlines use +inf as "none"; stored as 0 (JSON has no infinities).
double DeadlineToJson(double deadline_ms) {
  return deadline_ms == std::numeric_limits<double>::infinity() ? 0
                                                                : deadline_ms;
}

double DeadlineFromJson(double value) {
  return value == 0 ? std::numeric_limits<double>::infinity() : value;
}

// --- retry policy / runtime options ----------------------------------------

Json RetryPolicyToJson(const runtime::RetryPolicy& policy) {
  Json json = Json::MakeObject();
  json.Set("attempts", static_cast<uint64_t>(policy.max_attempts));
  json.Set("backoff_base", DoubleToHex(policy.backoff_base_ms));
  json.Set("backoff_max", DoubleToHex(policy.backoff_max_ms));
  json.Set("jitter", DoubleToHex(policy.jitter));
  json.Set("deadline", DoubleToHex(DeadlineToJson(policy.deadline_ms)));
  json.Set("breaker_threshold",
           static_cast<uint64_t>(policy.breaker.failure_threshold));
  json.Set("breaker_cooldown", DoubleToHex(policy.breaker.cooldown_ms));
  return json;
}

Result<runtime::RetryPolicy> RetryPolicyFromJson(const Json& json) {
  runtime::RetryPolicy policy;
  policy.max_attempts =
      static_cast<std::size_t>(json.GetNumber("attempts", 1));
  LIMCAP_ASSIGN_OR_RETURN(policy.backoff_base_ms,
                          DoubleFromHex(json.GetString("backoff_base")));
  LIMCAP_ASSIGN_OR_RETURN(policy.backoff_max_ms,
                          DoubleFromHex(json.GetString("backoff_max")));
  LIMCAP_ASSIGN_OR_RETURN(policy.jitter,
                          DoubleFromHex(json.GetString("jitter")));
  LIMCAP_ASSIGN_OR_RETURN(double deadline,
                          DoubleFromHex(json.GetString("deadline")));
  policy.deadline_ms = DeadlineFromJson(deadline);
  policy.breaker.failure_threshold =
      static_cast<std::size_t>(json.GetNumber("breaker_threshold", 0));
  LIMCAP_ASSIGN_OR_RETURN(policy.breaker.cooldown_ms,
                          DoubleFromHex(json.GetString("breaker_cooldown")));
  return policy;
}

Json RuntimeOptionsToJson(const runtime::RuntimeOptions& runtime) {
  Json json = Json::MakeObject();
  json.Set("concurrent", runtime.concurrent);
  json.Set("max_in_flight", static_cast<uint64_t>(runtime.max_in_flight));
  json.Set("per_source_max_in_flight",
           static_cast<uint64_t>(runtime.per_source_max_in_flight));
  json.Set("coalesce", runtime.coalesce);
  json.Set("seed", U64ToString(runtime.seed));
  json.Set("retry", RetryPolicyToJson(runtime.retry));
  Json per_source = Json::MakeObject();
  for (const auto& [name, policy] : runtime.per_source) {
    per_source.Set(name, RetryPolicyToJson(policy));
  }
  json.Set("per_source", std::move(per_source));
  Json latency = Json::MakeObject();
  latency.Set("default", DoubleToHex(runtime.latency.default_latency_ms));
  Json per_source_ms = Json::MakeObject();
  for (const auto& [name, ms] : runtime.latency.per_source_ms) {
    per_source_ms.Set(name, DoubleToHex(ms));
  }
  latency.Set("per_source", std::move(per_source_ms));
  json.Set("latency", std::move(latency));
  if (runtime.adaptive.enabled) {
    // Written only when on, so pre-adaptive artifacts stay byte-stable.
    Json adaptive = Json::MakeObject();
    adaptive.Set("enabled", true);
    adaptive.Set("dynamic_pruning", runtime.adaptive.dynamic_pruning);
    adaptive.Set("reorder", runtime.adaptive.reorder);
    adaptive.Set("batch", runtime.adaptive.batch);
    adaptive.Set("hedge", runtime.adaptive.hedge);
    adaptive.Set("hedge_quantile", DoubleToHex(runtime.adaptive.hedge_quantile));
    adaptive.Set("hedge_min_samples",
                 static_cast<uint64_t>(runtime.adaptive.hedge_min_samples));
    adaptive.Set("hedge_min_delay",
                 DoubleToHex(runtime.adaptive.hedge_min_delay_ms));
    adaptive.Set("batch_marginal_fraction",
                 DoubleToHex(runtime.adaptive.batch_marginal_fraction));
    adaptive.Set("ewma_alpha", DoubleToHex(runtime.adaptive.ewma_alpha));
    json.Set("adaptive", std::move(adaptive));
  }
  return json;
}

Result<runtime::RuntimeOptions> RuntimeOptionsFromJson(const Json& json) {
  runtime::RuntimeOptions runtime;
  runtime.concurrent = json.GetBool("concurrent");
  runtime.max_in_flight =
      static_cast<std::size_t>(json.GetNumber("max_in_flight", 16));
  runtime.per_source_max_in_flight = static_cast<std::size_t>(
      json.GetNumber("per_source_max_in_flight", 4));
  runtime.coalesce = json.GetBool("coalesce", true);
  LIMCAP_ASSIGN_OR_RETURN(runtime.seed,
                          U64FromString(json.GetString("seed", "0")));
  LIMCAP_ASSIGN_OR_RETURN(runtime.retry,
                          RetryPolicyFromJson(json.Get("retry")));
  if (json.Get("per_source").is_object()) {
    for (const auto& [name, policy_json] : json.Get("per_source").object()) {
      LIMCAP_ASSIGN_OR_RETURN(runtime.per_source[name],
                              RetryPolicyFromJson(policy_json));
    }
  }
  const Json& latency = json.Get("latency");
  LIMCAP_ASSIGN_OR_RETURN(runtime.latency.default_latency_ms,
                          DoubleFromHex(latency.GetString("default")));
  if (latency.Get("per_source").is_object()) {
    for (const auto& [name, ms_json] : latency.Get("per_source").object()) {
      LIMCAP_ASSIGN_OR_RETURN(runtime.latency.per_source_ms[name],
                              DoubleFromHex(ms_json.AsString()));
    }
  }
  if (json.Get("adaptive").is_object()) {
    const Json& adaptive = json.Get("adaptive");
    runtime.adaptive.enabled = adaptive.GetBool("enabled");
    runtime.adaptive.dynamic_pruning =
        adaptive.GetBool("dynamic_pruning", true);
    runtime.adaptive.reorder = adaptive.GetBool("reorder", true);
    runtime.adaptive.batch = adaptive.GetBool("batch", true);
    runtime.adaptive.hedge = adaptive.GetBool("hedge", true);
    LIMCAP_ASSIGN_OR_RETURN(
        runtime.adaptive.hedge_quantile,
        DoubleFromHex(adaptive.GetString("hedge_quantile")));
    runtime.adaptive.hedge_min_samples =
        static_cast<std::size_t>(adaptive.GetNumber("hedge_min_samples", 8));
    LIMCAP_ASSIGN_OR_RETURN(
        runtime.adaptive.hedge_min_delay_ms,
        DoubleFromHex(adaptive.GetString("hedge_min_delay")));
    LIMCAP_ASSIGN_OR_RETURN(
        runtime.adaptive.batch_marginal_fraction,
        DoubleFromHex(adaptive.GetString("batch_marginal_fraction")));
    LIMCAP_ASSIGN_OR_RETURN(runtime.adaptive.ewma_alpha,
                            DoubleFromHex(adaptive.GetString("ewma_alpha")));
  }
  return runtime;
}

Json ExecOptionsToJson(const exec::ExecOptions& options) {
  Json json = Json::MakeObject();
  json.Set("goal", options.builder.goal_predicate);
  json.Set("alpha_suffix", options.builder.alpha_suffix);
  json.Set("per_connection_goals", options.builder.per_connection_goals);
  json.Set("max_rule_body_atoms",
           static_cast<uint64_t>(options.builder.max_rule_body_atoms));
  json.Set("static_analysis", static_cast<int>(options.static_analysis));
  json.Set("mode", static_cast<int>(options.mode));
  json.Set("eval_threads", static_cast<uint64_t>(options.eval_threads));
  json.Set("strategy", static_cast<int>(options.strategy));
  json.Set("max_source_queries", BudgetToJson(options.max_source_queries));
  json.Set("min_answers", BudgetToJson(options.min_answers));
  json.Set("continue_on_source_error", options.continue_on_source_error);
  json.Set("runtime", RuntimeOptionsToJson(options.runtime));
  return json;
}

Result<exec::ExecOptions> ExecOptionsFromJson(const Json& json) {
  exec::ExecOptions options;
  options.builder.goal_predicate = json.GetString("goal", "ans");
  options.builder.alpha_suffix = json.GetString("alpha_suffix", "^");
  options.builder.per_connection_goals =
      json.GetBool("per_connection_goals");
  options.builder.max_rule_body_atoms =
      static_cast<std::size_t>(json.GetNumber("max_rule_body_atoms", 3));
  options.static_analysis = static_cast<exec::StaticAnalysisMode>(
      static_cast<int>(json.GetNumber("static_analysis", 0)));
  options.mode = static_cast<datalog::Evaluator::Mode>(
      static_cast<int>(json.GetNumber("mode", 1)));
  options.eval_threads =
      static_cast<std::size_t>(json.GetNumber("eval_threads", 0));
  options.strategy = static_cast<exec::FetchStrategy>(
      static_cast<int>(json.GetNumber("strategy", 0)));
  options.max_source_queries = BudgetFromJson(
      static_cast<uint64_t>(json.GetNumber("max_source_queries", 0)));
  options.min_answers = BudgetFromJson(
      static_cast<uint64_t>(json.GetNumber("min_answers", 0)));
  options.continue_on_source_error =
      json.GetBool("continue_on_source_error");
  LIMCAP_ASSIGN_OR_RETURN(options.runtime,
                          RuntimeOptionsFromJson(json.Get("runtime")));
  return options;
}

// --- attempts --------------------------------------------------------------

Json AttemptToJson(const FetchRecorder::Attempt& attempt) {
  Json json = Json::MakeObject();
  json.Set("lat", DoubleToHex(attempt.added_latency_ms));
  if (attempt.discarded) {
    json.Set("to", true);
    return json;
  }
  if (attempt.ok) {
    json.Set("ok", true);
    Json rows = Json::MakeArray();
    for (const relational::Row& row : attempt.rows) {
      Json row_json = Json::MakeArray();
      for (const Value& value : row) row_json.Append(ValueToJson(value));
      rows.Append(std::move(row_json));
    }
    json.Set("rows", std::move(rows));
    return json;
  }
  json.Set("code", static_cast<int>(attempt.code));
  json.Set("msg", attempt.message);
  return json;
}

Result<FetchRecorder::Attempt> AttemptFromJson(const Json& json) {
  FetchRecorder::Attempt attempt;
  LIMCAP_ASSIGN_OR_RETURN(attempt.added_latency_ms,
                          DoubleFromHex(json.GetString("lat")));
  if (json.GetBool("to")) {
    attempt.discarded = true;
    return attempt;
  }
  if (json.GetBool("ok")) {
    attempt.ok = true;
    const Json& rows = json.Get("rows");
    if (!rows.is_array()) {
      return Status::InvalidArgument("ok attempt without rows");
    }
    for (const Json& row_json : rows.array()) {
      if (!row_json.is_array()) {
        return Status::InvalidArgument("row is not an array");
      }
      relational::Row row;
      row.reserve(row_json.array().size());
      for (const Json& value_json : row_json.array()) {
        LIMCAP_ASSIGN_OR_RETURN(Value value, ValueFromJson(value_json));
        row.push_back(std::move(value));
      }
      attempt.rows.push_back(std::move(row));
    }
    return attempt;
  }
  attempt.code =
      static_cast<StatusCode>(static_cast<int>(json.GetNumber("code")));
  attempt.message = json.GetString("msg");
  return attempt;
}

// --- header ----------------------------------------------------------------

constexpr char kMagic[4] = {'L', 'C', 'A', 'P'};
constexpr std::size_t kHeaderSize = 12;  // magic + version + manifest length

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>((value >> 24) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>(value & 0xff));
}

uint32_t GetU32(std::string_view bytes, std::size_t offset) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset]))
          << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
          << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
          << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]));
}

/// Splits header from body; validates magic/version/lengths and parses
/// the manifest JSON. Returns (manifest, body bytes).
Result<std::pair<ReplayManifest, std::string_view>> SplitArtifact(
    std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("replay artifact truncated: " +
                                   std::to_string(bytes.size()) +
                                   " bytes, header needs 12");
  }
  if (bytes.substr(0, 4) != std::string_view(kMagic, 4)) {
    return Status::InvalidArgument(
        "not a replay artifact: bad magic (want \"LCAP\")");
  }
  const uint32_t version = GetU32(bytes, 4);
  if (version != kReplayArtifactVersion) {
    return Status::Unsupported(
        "replay artifact version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kReplayArtifactVersion) + ")");
  }
  const uint32_t manifest_length = GetU32(bytes, 8);
  if (bytes.size() < kHeaderSize + manifest_length) {
    return Status::InvalidArgument(
        "replay artifact truncated: manifest declares " +
        std::to_string(manifest_length) + " bytes, " +
        std::to_string(bytes.size() - kHeaderSize) + " remain");
  }
  LIMCAP_ASSIGN_OR_RETURN(
      Json manifest_json,
      Json::Parse(bytes.substr(kHeaderSize, manifest_length)));
  LIMCAP_ASSIGN_OR_RETURN(ReplayManifest manifest,
                          ManifestFromJson(manifest_json));
  return std::make_pair(std::move(manifest),
                        bytes.substr(kHeaderSize + manifest_length));
}

Status CheckBody(const ReplayManifest& manifest, std::string_view body) {
  uint64_t lines = 0;
  for (char c : body) {
    if (c == '\n') ++lines;
  }
  if (lines != manifest.body_lines) {
    return Status::InvalidArgument(
        "replay artifact body corrupt: manifest declares " +
        std::to_string(manifest.body_lines) + " call(s), body holds " +
        std::to_string(lines));
  }
  const uint64_t hash = StableHash64(body);
  if (hash != manifest.body_hash) {
    return Status::InvalidArgument(
        "replay artifact body corrupt: hash " + FingerprintToString(hash) +
        " != manifest " + FingerprintToString(manifest.body_hash));
  }
  return Status::OK();
}

}  // namespace

Json ValueToJson(const Value& value) {
  Json json = Json::MakeObject();
  json.Set("k", static_cast<int>(value.kind()));
  switch (value.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt64:
      json.Set("v", std::to_string(value.int64()));
      break;
    case Value::Kind::kDouble:
      json.Set("v", DoubleToHex(value.dbl()));
      break;
    case Value::Kind::kString:
      json.Set("v", value.str());
      break;
  }
  return json;
}

Result<Value> ValueFromJson(const Json& json) {
  const int kind = static_cast<int>(json.GetNumber("k", -1));
  switch (kind) {
    case static_cast<int>(Value::Kind::kNull):
      return Value();
    case static_cast<int>(Value::Kind::kInt64): {
      const std::string text = json.GetString("v");
      char* end = nullptr;
      const long long parsed = std::strtoll(text.c_str(), &end, 10);
      if (text.empty() || end != text.c_str() + text.size()) {
        return Status::InvalidArgument("bad int64 payload: " + text);
      }
      return Value::Int64(parsed);
    }
    case static_cast<int>(Value::Kind::kDouble): {
      LIMCAP_ASSIGN_OR_RETURN(double parsed,
                              DoubleFromHex(json.GetString("v")));
      return Value::Double(parsed);
    }
    case static_cast<int>(Value::Kind::kString):
      return Value::String(json.GetString("v"));
    default:
      return Status::InvalidArgument("bad value kind: " +
                                     std::to_string(kind));
  }
}

Json FetchToJson(const runtime::FetchRecorder::Fetch& fetch) {
  Json json = Json::MakeObject();
  json.Set("s", fetch.source);
  Json positions = Json::MakeArray();
  for (uint32_t position : fetch.positions) {
    positions.Append(static_cast<uint64_t>(position));
  }
  json.Set("p", std::move(positions));
  Json values = Json::MakeArray();
  for (const Value& value : fetch.values) {
    values.Append(ValueToJson(value));
  }
  json.Set("v", std::move(values));
  if (fetch.cross_coalesced) json.Set("x", true);
  Json attempts = Json::MakeArray();
  for (const FetchRecorder::Attempt& attempt : fetch.attempts) {
    attempts.Append(AttemptToJson(attempt));
  }
  json.Set("a", std::move(attempts));
  return json;
}

Result<runtime::FetchRecorder::Fetch> FetchFromJson(const Json& json) {
  FetchRecorder::Fetch fetch;
  fetch.source = json.GetString("s");
  if (fetch.source.empty()) {
    return Status::InvalidArgument("recorded call without a source");
  }
  const Json& positions = json.Get("p");
  const Json& values = json.Get("v");
  if (!positions.is_array() || !values.is_array() ||
      positions.array().size() != values.array().size()) {
    return Status::InvalidArgument(
        "recorded call with mismatched positions/values");
  }
  for (const Json& position : positions.array()) {
    fetch.positions.push_back(
        static_cast<uint32_t>(position.AsNumber()));
  }
  for (const Json& value_json : values.array()) {
    LIMCAP_ASSIGN_OR_RETURN(Value value, ValueFromJson(value_json));
    fetch.values.push_back(std::move(value));
  }
  fetch.cross_coalesced = json.GetBool("x");
  const Json& attempts = json.Get("a");
  if (!attempts.is_array() || attempts.array().empty()) {
    return Status::InvalidArgument("recorded call without attempts");
  }
  for (const Json& attempt_json : attempts.array()) {
    LIMCAP_ASSIGN_OR_RETURN(FetchRecorder::Attempt attempt,
                            AttemptFromJson(attempt_json));
    fetch.attempts.push_back(std::move(attempt));
  }
  return fetch;
}

Json ManifestToJson(const ReplayManifest& manifest) {
  Json json = Json::MakeObject();
  json.Set("version", manifest.version);
  json.Set("query", manifest.query_text);
  Json views = Json::MakeArray();
  for (const ReplayViewSpec& view : manifest.views) {
    Json view_json = Json::MakeObject();
    view_json.Set("name", view.name);
    Json attributes = Json::MakeArray();
    for (const std::string& attribute : view.attributes) {
      attributes.Append(attribute);
    }
    view_json.Set("attrs", std::move(attributes));
    Json templates = Json::MakeArray();
    for (const std::string& pattern : view.templates) {
      templates.Append(pattern);
    }
    view_json.Set("templates", std::move(templates));
    views.Append(std::move(view_json));
  }
  json.Set("views", std::move(views));
  Json domains = Json::MakeObject();
  for (const auto& [attribute, domain] : manifest.domains) {
    domains.Set(attribute, domain);
  }
  json.Set("domains", std::move(domains));
  json.Set("catalog_fingerprint",
           FingerprintToString(manifest.catalog_fingerprint));
  json.Set("options", ExecOptionsToJson(manifest.options));
  json.Set("workload_seed", U64ToString(manifest.workload_seed));
  json.Set("scenario", manifest.scenario);
  json.Set("request_id", manifest.request_id);
  json.Set("recorded_fingerprint",
           FingerprintToString(manifest.recorded_fingerprint));
  json.Set("answer_rows", manifest.answer_rows);
  json.Set("source_queries", manifest.source_queries);
  json.Set("rounds", manifest.rounds);
  json.Set("degraded", manifest.degraded);
  json.Set("body_lines", manifest.body_lines);
  json.Set("body_hash", FingerprintToString(manifest.body_hash));
  return json;
}

Result<ReplayManifest> ManifestFromJson(const Json& json) {
  ReplayManifest manifest;
  manifest.version = static_cast<uint32_t>(json.GetNumber("version"));
  manifest.query_text = json.GetString("query");
  if (manifest.query_text.empty()) {
    return Status::InvalidArgument("manifest without a query");
  }
  const Json& views = json.Get("views");
  if (!views.is_array() || views.array().empty()) {
    return Status::InvalidArgument("manifest without views");
  }
  for (const Json& view_json : views.array()) {
    ReplayViewSpec view;
    view.name = view_json.GetString("name");
    for (const Json& attribute : view_json.Get("attrs").array()) {
      view.attributes.push_back(attribute.AsString());
    }
    for (const Json& pattern : view_json.Get("templates").array()) {
      view.templates.push_back(pattern.AsString());
    }
    if (view.name.empty() || view.attributes.empty() ||
        view.templates.empty()) {
      return Status::InvalidArgument("manifest view incomplete: " +
                                     view.name);
    }
    manifest.views.push_back(std::move(view));
  }
  if (json.Get("domains").is_object()) {
    for (const auto& [attribute, domain] : json.Get("domains").object()) {
      manifest.domains[attribute] = domain.AsString();
    }
  }
  LIMCAP_ASSIGN_OR_RETURN(
      manifest.catalog_fingerprint,
      FingerprintFromString(json.GetString("catalog_fingerprint")));
  LIMCAP_ASSIGN_OR_RETURN(manifest.options,
                          ExecOptionsFromJson(json.Get("options")));
  LIMCAP_ASSIGN_OR_RETURN(
      manifest.workload_seed,
      U64FromString(json.GetString("workload_seed", "0")));
  manifest.scenario = json.GetString("scenario");
  manifest.request_id = json.GetString("request_id");
  LIMCAP_ASSIGN_OR_RETURN(
      manifest.recorded_fingerprint,
      FingerprintFromString(json.GetString("recorded_fingerprint")));
  manifest.answer_rows =
      static_cast<uint64_t>(json.GetNumber("answer_rows"));
  manifest.source_queries =
      static_cast<uint64_t>(json.GetNumber("source_queries"));
  manifest.rounds = static_cast<uint64_t>(json.GetNumber("rounds"));
  manifest.degraded = json.GetBool("degraded");
  manifest.body_lines = static_cast<uint64_t>(json.GetNumber("body_lines"));
  LIMCAP_ASSIGN_OR_RETURN(manifest.body_hash,
                          FingerprintFromString(json.GetString("body_hash")));
  return manifest;
}

std::string EncodeArtifact(
    ReplayManifest manifest,
    const std::vector<runtime::FetchRecorder::Fetch>& calls) {
  std::string body;
  for (const FetchRecorder::Fetch& fetch : calls) {
    body += FetchToJson(fetch).Dump();
    body += '\n';
  }
  manifest.body_lines = calls.size();
  manifest.body_hash = StableHash64(body);
  const std::string manifest_bytes = ManifestToJson(manifest).Dump();
  std::string out;
  out.reserve(kHeaderSize + manifest_bytes.size() + body.size());
  out.append(kMagic, 4);
  PutU32(&out, kReplayArtifactVersion);
  PutU32(&out, static_cast<uint32_t>(manifest_bytes.size()));
  out += manifest_bytes;
  out += body;
  return out;
}

Result<ReplayManifest> VerifyManifest(std::string_view bytes) {
  LIMCAP_ASSIGN_OR_RETURN(auto split, SplitArtifact(bytes));
  LIMCAP_RETURN_NOT_OK(CheckBody(split.first, split.second));
  return std::move(split.first);
}

Result<ReplayArtifact> DecodeArtifact(std::string_view bytes) {
  LIMCAP_ASSIGN_OR_RETURN(auto split, SplitArtifact(bytes));
  LIMCAP_RETURN_NOT_OK(CheckBody(split.first, split.second));
  ReplayArtifact artifact;
  artifact.manifest = std::move(split.first);
  std::string_view body = split.second;
  std::size_t line_number = 0;
  while (!body.empty()) {
    const std::size_t newline = body.find('\n');
    std::string_view line = body.substr(0, newline);
    body.remove_prefix(newline + 1);
    ++line_number;
    LIMCAP_ASSIGN_OR_RETURN(Json line_json, Json::Parse(line));
    auto fetch = FetchFromJson(line_json);
    if (!fetch.ok()) {
      return Status::InvalidArgument(
          "replay artifact call " + std::to_string(line_number) + ": " +
          fetch.status().message());
    }
    artifact.calls.push_back(std::move(*fetch));
  }
  return artifact;
}

Status WriteArtifactFile(
    const std::string& path, const ReplayManifest& manifest,
    const std::vector<runtime::FetchRecorder::Fetch>& calls) {
  const std::string bytes = EncodeArtifact(manifest, calls);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<ReplayArtifact> ReadArtifactFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DecodeArtifact(buffer.str());
}

}  // namespace limcap::replay
