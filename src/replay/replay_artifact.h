#ifndef LIMCAP_REPLAY_REPLAY_ARTIFACT_H_
#define LIMCAP_REPLAY_REPLAY_ARTIFACT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "exec/source_driven_evaluator.h"
#include "runtime/fetch_recorder.h"

namespace limcap::replay {

/// The `.lcap` capture artifact: a versioned binary header
///
///   "LCAP" · version (4 bytes, big-endian) · manifest length (4 bytes,
///   big-endian) · canonical manifest JSON
///
/// followed by a JSON-lines body, one line per recorded source call in
/// dispatch (batch) order. The manifest carries everything needed to
/// rebuild the run's inputs — query text, catalog views, domains,
/// ExecOptions/RuntimeOptions, seeds — plus integrity fields (body line
/// count and hash) and the recorded OrderedFingerprint's hash, which the
/// replay asserts against. Values are recorded exactly: doubles travel
/// as hexfloat strings, 64-bit fingerprints/seeds as strings (JSON
/// numbers are doubles and would round them).
inline constexpr uint32_t kReplayArtifactVersion = 1;

/// Rebuildable description of one catalog view (capability surface only;
/// the extent lives behind the recorded calls).
struct ReplayViewSpec {
  std::string name;
  std::vector<std::string> attributes;
  /// Adornment strings, e.g. {"bff", "fbf"}.
  std::vector<std::string> templates;
};

/// The header's payload: inputs, provenance, integrity.
struct ReplayManifest {
  uint32_t version = kReplayArtifactVersion;
  /// planner::ParseQuery round-trip of the recorded query.
  std::string query_text;
  /// Catalog views in registration order (fixes rule order, and with it
  /// the execution order the replay must reproduce).
  std::vector<ReplayViewSpec> views;
  /// DomainMap overrides (attribute → domain predicate).
  std::map<std::string, std::string> domains;
  uint64_t catalog_fingerprint = 0;
  /// The recorded run's execution knobs. Only the serializable subset
  /// travels: builder options, static analysis mode, evaluator mode and
  /// threads, strategy, budgets, error policy, and the full
  /// RuntimeOptions (minus the non-owning pointers). session_dict,
  /// plan_cache, governor, tracer, metrics and recorder stay null — the
  /// replay wires its own.
  exec::ExecOptions options;
  /// Provenance, not replay input: the workload seed and scenario the
  /// run came from (when it came from one), and the serve request tag.
  uint64_t workload_seed = 0;
  std::string scenario;
  std::string request_id;
  /// StableHash64 of the recorded run's OrderedFingerprint — the value
  /// the replay must reproduce bit-identically.
  uint64_t recorded_fingerprint = 0;
  /// Human-facing echo of what the run produced.
  uint64_t answer_rows = 0;
  uint64_t source_queries = 0;
  uint64_t rounds = 0;
  bool degraded = false;
  /// Body integrity, stamped by EncodeArtifact: line count and
  /// StableHash64 over the body bytes.
  uint64_t body_lines = 0;
  uint64_t body_hash = 0;
};

/// A fully decoded artifact.
struct ReplayArtifact {
  ReplayManifest manifest;
  /// Recorded source calls in dispatch order.
  std::vector<runtime::FetchRecorder::Fetch> calls;
};

/// Exact-round-trip Value codec: {"k": kind} plus a payload string —
/// int64 decimal, double hexfloat ("%a"), string verbatim.
Json ValueToJson(const Value& value);
Result<Value> ValueFromJson(const Json& json);

/// One body line: the call's source, canonical positions/values, the
/// cross-coalesced flag, and the attempt list.
Json FetchToJson(const runtime::FetchRecorder::Fetch& fetch);
Result<runtime::FetchRecorder::Fetch> FetchFromJson(const Json& json);

Json ManifestToJson(const ReplayManifest& manifest);
Result<ReplayManifest> ManifestFromJson(const Json& json);

/// Serializes header + manifest + body. Stamps `manifest.body_lines` /
/// `body_hash` (the copy inside the returned bytes — the argument is
/// taken by value).
std::string EncodeArtifact(ReplayManifest manifest,
                           const std::vector<runtime::FetchRecorder::Fetch>&
                               calls);

/// Parses and integrity-checks the header + manifest without decoding
/// the body rows: magic, version, manifest JSON, body line count and
/// hash. This is the cheap half of DecodeArtifact.
Result<ReplayManifest> VerifyManifest(std::string_view bytes);

/// Full decode: VerifyManifest, then every body line.
Result<ReplayArtifact> DecodeArtifact(std::string_view bytes);

Status WriteArtifactFile(const std::string& path,
                         const ReplayManifest& manifest,
                         const std::vector<runtime::FetchRecorder::Fetch>&
                             calls);
Result<ReplayArtifact> ReadArtifactFile(const std::string& path);

}  // namespace limcap::replay

#endif  // LIMCAP_REPLAY_REPLAY_ARTIFACT_H_
