#include "replay/replay.h"

#include <memory>
#include <sstream>
#include <utility>

#include "capability/catalog_fingerprint.h"
#include "exec/fingerprint.h"
#include "planner/plan_cache.h"
#include "planner/query_parser.h"

namespace limcap::replay {

namespace {

using capability::FingerprintToString;

std::string RenderReplaySection(const ReplayRunReport& report) {
  const ReplayManifest& manifest = report.bundle.manifest;
  std::ostringstream out;
  out << "== Replay ==\n";
  out << "artifact version " << manifest.version << "  catalog "
      << FingerprintToString(manifest.catalog_fingerprint) << "  "
      << manifest.views.size() << " view(s)  " << manifest.body_lines
      << " recorded call(s)\n";
  if (!manifest.scenario.empty() || !manifest.request_id.empty()) {
    out << "captured from: "
        << (manifest.scenario.empty() ? "-" : manifest.scenario)
        << "  workload seed " << manifest.workload_seed;
    if (!manifest.request_id.empty()) {
      out << "  request " << manifest.request_id;
    }
    out << "\n";
  }
  out << "recorded: fingerprint "
      << FingerprintToString(manifest.recorded_fingerprint) << "  "
      << manifest.answer_rows << " answer row(s)  "
      << manifest.source_queries << " source quer(ies)  "
      << manifest.rounds << " round(s)"
      << (manifest.degraded ? "  [degraded]" : "") << "\n";
  out << "replayed: fingerprint "
      << FingerprintToString(report.replayed_fingerprint) << "  "
      << report.answer.exec.answer.size() << " answer row(s)  "
      << report.answer.exec.log.total_queries() << " source quer(ies)  "
      << report.answer.exec.rounds << " round(s)  [" << report.replay_calls
      << " call(s) served from recording, " << report.replayed_faults
      << " fault(s) re-raised, " << report.replay_misses << " miss(es)]\n";
  out << "verdict: "
      << (report.fingerprint_match
              ? "MATCH — the replay re-executed the recorded run "
                "bit-identically"
              : "MISMATCH — the replay diverged from the recorded run")
      << "\n\n";
  return out.str();
}

}  // namespace

Result<ReplayBundle> LoadBundle(const ReplayArtifact& artifact) {
  ReplayBundle bundle;
  bundle.manifest = artifact.manifest;
  LIMCAP_ASSIGN_OR_RETURN(bundle.query,
                          planner::ParseQuery(artifact.manifest.query_text));
  for (const auto& [attribute, domain] : artifact.manifest.domains) {
    bundle.domains.SetDomain(attribute, domain);
  }
  for (const ReplayViewSpec& spec : artifact.manifest.views) {
    std::vector<capability::BindingPattern> templates;
    for (const std::string& text : spec.templates) {
      LIMCAP_ASSIGN_OR_RETURN(capability::BindingPattern pattern,
                              capability::BindingPattern::Parse(text));
      templates.push_back(pattern);
    }
    LIMCAP_ASSIGN_OR_RETURN(
        capability::SourceView view,
        capability::SourceView::Make(
            spec.name, relational::Schema::MakeUnsafe(spec.attributes),
            std::move(templates)));
    auto source = std::make_unique<ReplaySource>(std::move(view));
    bundle.sources.push_back(source.get());
    LIMCAP_RETURN_NOT_OK(bundle.catalog.Register(std::move(source)));
  }
  if (bundle.catalog.fingerprint() != artifact.manifest.catalog_fingerprint) {
    return Status::InvalidArgument(
        "replay artifact inconsistent: rebuilt catalog fingerprint " +
        FingerprintToString(bundle.catalog.fingerprint()) +
        " != manifest " +
        FingerprintToString(artifact.manifest.catalog_fingerprint));
  }
  for (const runtime::FetchRecorder::Fetch& fetch : artifact.calls) {
    LIMCAP_ASSIGN_OR_RETURN(capability::Source * source,
                            bundle.catalog.Find(fetch.source));
    // Every registered source is a ReplaySource (we just built them).
    static_cast<ReplaySource*>(source)->AddCall(fetch);
  }
  return bundle;
}

Result<ReplayRunReport> ReplayArtifactData(const ReplayArtifact& artifact,
                                           bool include_timing) {
  LIMCAP_ASSIGN_OR_RETURN(ReplayBundle bundle, LoadBundle(artifact));

  ReplayRunReport report;
  exec::ExecOptions options = bundle.manifest.options;
  options.tracer = &report.tracer;
  options.metrics = &report.metrics;
  // A fresh one-shot cache: replay always plans cold, which the plan
  // cache's warm==cold bit-identity property makes equivalent to
  // whatever cache state the recorded run saw.
  planner::PlanCache local_cache;
  options.plan_cache = &local_cache;
  {
    // Scope the answerer so every span closes before rendering.
    exec::QueryAnswerer answerer(&bundle.catalog, bundle.domains);
    LIMCAP_ASSIGN_OR_RETURN(report.answer,
                            answerer.Answer(bundle.query, options));
  }
  report.replayed_fingerprint =
      capability::StableHash64(exec::OrderedFingerprint(report.answer.exec));
  report.fingerprint_match =
      report.replayed_fingerprint == bundle.manifest.recorded_fingerprint;
  for (const ReplaySource* source : bundle.sources) {
    const ReplaySource::Stats stats = source->stats();
    report.replay_calls += stats.calls;
    report.replay_misses += stats.misses;
    report.replayed_faults += stats.replayed_faults;
  }
  report.bundle = std::move(bundle);

  const std::vector<capability::SourceView> views =
      report.bundle.catalog.Views();
  exec::ExplainRenderInputs render;
  render.answer = &report.answer;
  render.query = &report.bundle.query;
  render.views = &views;
  render.domains = &report.bundle.domains;
  render.goal_predicate = options.builder.goal_predicate;
  render.cache_stats = local_cache.stats();
  render.tracer = &report.tracer;
  render.metrics = &report.metrics;
  render.include_timing = include_timing;
  render.adaptive = options.runtime.adaptive.enabled;
  render.preamble = RenderReplaySection(report);
  report.rendered = exec::RenderExplainText(render);
  return report;
}

Result<ReplayRunReport> ReplayFile(const std::string& path,
                                   bool include_timing) {
  LIMCAP_ASSIGN_OR_RETURN(ReplayArtifact artifact, ReadArtifactFile(path));
  return ReplayArtifactData(artifact, include_timing);
}

}  // namespace limcap::replay
