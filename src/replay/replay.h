#ifndef LIMCAP_REPLAY_REPLAY_H_
#define LIMCAP_REPLAY_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "capability/source_catalog.h"
#include "exec/explain.h"
#include "exec/query_answerer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/domain_map.h"
#include "planner/query.h"
#include "replay/replay_artifact.h"
#include "replay/replay_source.h"

namespace limcap::replay {

/// A decoded artifact turned back into runnable inputs: the catalog
/// rebuilt as ReplaySources holding the recorded traffic, the parsed
/// query, and the domain map. `sources` borrows from `catalog` (for
/// stats); the bundle is move-only like the catalog it owns.
struct ReplayBundle {
  ReplayManifest manifest;
  capability::SourceCatalog catalog;
  std::vector<ReplaySource*> sources;
  planner::Query query;
  planner::DomainMap domains;
};

/// Rebuilds the bundle. Fails when the query does not parse, a view spec
/// is malformed, or the rebuilt catalog's fingerprint differs from the
/// manifest's (the artifact is internally inconsistent).
Result<ReplayBundle> LoadBundle(const ReplayArtifact& artifact);

/// One offline re-execution of a captured run.
struct ReplayRunReport {
  ReplayBundle bundle;
  exec::AnswerReport answer;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  /// StableHash64 of the replayed OrderedFingerprint, against the
  /// manifest's recorded one.
  uint64_t replayed_fingerprint = 0;
  bool fingerprint_match = false;
  /// Aggregated ReplaySource stats: every source call the replay made
  /// was served from the recording (`calls`), `misses` counts planner
  /// divergences (must be 0 for a faithful replay), `replayed_faults`
  /// counts re-raised recorded errors.
  std::size_t replay_calls = 0;
  std::size_t replay_misses = 0;
  std::size_t replayed_faults = 0;
  /// The full explain report (Query through Answer) behind a "Replay"
  /// preamble echoing the manifest and the fingerprint verdict. No file
  /// paths appear, so the text is golden-testable.
  std::string rendered;
};

/// Re-executes `artifact` offline: zero live sources, recorded faults
/// re-raised, recorded latencies on the simulated clock. Returns an
/// error only when the bundle cannot be rebuilt or the execution itself
/// fails; a fingerprint MISMATCH is reported in the result (callers gate
/// on `fingerprint_match`), because the rendered divergence report is
/// exactly what the user asked to see.
Result<ReplayRunReport> ReplayArtifactData(const ReplayArtifact& artifact,
                                           bool include_timing = false);

/// ReadArtifactFile + ReplayArtifactData.
Result<ReplayRunReport> ReplayFile(const std::string& path,
                                   bool include_timing = false);

}  // namespace limcap::replay

#endif  // LIMCAP_REPLAY_REPLAY_H_
