#ifndef LIMCAP_REPLAY_TRACE_RECORDER_H_
#define LIMCAP_REPLAY_TRACE_RECORDER_H_

#include <string>
#include <vector>

#include "capability/source_catalog.h"
#include "exec/query_answerer.h"
#include "planner/domain_map.h"
#include "planner/query.h"
#include "replay/replay_artifact.h"
#include "runtime/fetch_recorder.h"

namespace limcap::replay {

/// The concrete capture sink: wire one into
/// `ExecOptions::runtime.recorder` before answering, and every dispatched
/// source call lands here in batch order. One recorder serves one
/// execution (the scheduler calls it from the driver thread only, so no
/// synchronization is needed); a multi-query server creates one per
/// request.
class TraceRecorder : public runtime::FetchRecorder {
 public:
  void RecordFetch(runtime::FetchRecorder::Fetch fetch) override {
    calls_.push_back(std::move(fetch));
  }

  const std::vector<runtime::FetchRecorder::Fetch>& calls() const {
    return calls_;
  }
  std::size_t call_count() const { return calls_.size(); }
  void Clear() { calls_.clear(); }

  /// Serializes the capture behind `manifest` (stamping body integrity).
  std::string EncodeArtifactBytes(ReplayManifest manifest) const {
    return EncodeArtifact(std::move(manifest), calls_);
  }

  /// Writes the `.lcap` file.
  Status WriteArtifact(const std::string& path,
                       const ReplayManifest& manifest) const {
    return WriteArtifactFile(path, manifest, calls_);
  }

 private:
  std::vector<runtime::FetchRecorder::Fetch> calls_;
};

/// Builds the manifest's input half from what is about to run: the query
/// text, the catalog's views and fingerprint, the domain overrides, and
/// the serializable ExecOptions subset. Stamp the result half with
/// StampExecution after the answer.
ReplayManifest MakeReplayManifest(const planner::Query& query,
                                  const capability::SourceCatalog& catalog,
                                  const planner::DomainMap& domains,
                                  const exec::ExecOptions& options);

/// Stamps the result half: the recorded OrderedFingerprint's hash and
/// the human-facing echo (answer rows, source queries, rounds,
/// degraded).
void StampExecution(const exec::ExecResult& exec, ReplayManifest* manifest);

}  // namespace limcap::replay

#endif  // LIMCAP_REPLAY_TRACE_RECORDER_H_
