#ifndef LIMCAP_RELATIONAL_SCHEMA_H_
#define LIMCAP_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace limcap::relational {

/// An ordered list of distinct attribute names. Following the paper's
/// universal-relation-like assumption (Section 2.1), attribute names are
/// global: two views sharing an attribute name share its meaning, and
/// natural joins equate attributes by name.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails if names repeat or are empty.
  static Result<Schema> Make(std::vector<std::string> attributes);

  /// Convenience for static catalogs; aborts on invalid input.
  static Schema MakeUnsafe(std::vector<std::string> attributes);

  const std::vector<std::string>& attributes() const { return attributes_; }
  std::size_t arity() const { return attributes_.size(); }
  const std::string& attribute(std::size_t i) const { return attributes_[i]; }

  /// Position of `name`, or nullopt.
  std::optional<std::size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  /// Attribute names shared with `other`, in this schema's order.
  std::vector<std::string> CommonAttributes(const Schema& other) const;

  /// Schema of the natural join with `other`: this schema's attributes
  /// followed by `other`'s attributes not already present.
  Schema NaturalJoinSchema(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// "(A, B, C)".
  std::string ToString() const;

 private:
  explicit Schema(std::vector<std::string> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<std::string> attributes_;
};

}  // namespace limcap::relational

#endif  // LIMCAP_RELATIONAL_SCHEMA_H_
