#ifndef LIMCAP_RELATIONAL_RELATION_H_
#define LIMCAP_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/value.h"
#include "common/value_dictionary.h"
#include "relational/schema.h"

namespace limcap::relational {

/// A row of values, positionally aligned with a Schema. The Value-typed
/// form exists for ingest, tests, and text rendering; engine hot paths
/// exchange dictionary-encoded id rows instead.
using Row = std::vector<Value>;

/// A dictionary-encoded row: ValueIds positionally aligned with a Schema.
using IdRow = std::vector<ValueId>;

/// A set-semantics relation with columnar dictionary-encoded storage: a
/// schema, a shared ValueDictionary, and one std::vector<ValueId> per
/// column. Rows are deduplicated in insertion order via an open-addressing
/// row set, and lazily-built ValueId-keyed column indexes support the
/// bound-attribute probes that dominate capability-restricted execution —
/// the same flat encoding the Datalog FactStore uses, so tuples cross the
/// relational/datalog seam without re-translation.
///
/// Dictionary sharing: every relation encodes against the dictionary given
/// at construction (a fresh private one by default). Relations sharing a
/// dictionary exchange rows as raw ids (InsertIdsUnsafe, ProbeEachIds);
/// mixed-dictionary operations go through the Value-typed accessors or
/// WithDictionary(), which re-interns — the translation the interned
/// execution path pays only at source ingest.
class Relation {
 public:
  Relation() : Relation(Schema()) {}
  explicit Relation(Schema schema)
      : Relation(std::move(schema), std::make_shared<ValueDictionary>()) {}
  Relation(Schema schema, ValueDictionaryPtr dict)
      : schema_(std::move(schema)),
        dict_(std::move(dict)),
        columns_(schema_.arity()) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// The dictionary this relation's ids refer to (never null).
  const ValueDictionaryPtr& dict_ptr() const { return dict_; }
  ValueDictionary& dict() const { return *dict_; }

  /// True when `other` encodes against the same dictionary, making raw id
  /// exchange between the two relations valid.
  bool SharesDictionaryWith(const Relation& other) const {
    return dict_ == other.dict_;
  }

  // --- interned-native API (the hot path) ---------------------------------

  /// Id at (row, column); no decode.
  ValueId IdAt(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }

  /// Non-owning view of one stored row over the columnar storage; valid
  /// until the next insert. Ids are free; values decode through the shared
  /// dictionary on demand.
  class RowView {
   public:
    RowView(const Relation* relation, std::size_t pos)
        : relation_(relation), pos_(pos) {}
    std::size_t size() const { return relation_->schema().arity(); }
    ValueId id(std::size_t col) const { return relation_->IdAt(pos_, col); }
    const Value& value(std::size_t col) const {
      return relation_->dict().Get(id(col));
    }
    std::size_t position() const { return pos_; }

   private:
    const Relation* relation_;
    std::size_t pos_;
  };

  RowView View(std::size_t row) const { return RowView(this, row); }

  /// One column's ids, in row order.
  const std::vector<ValueId>& ColumnIdsAt(std::size_t col) const {
    return columns_[col];
  }

  /// Copies row `row`'s ids into `out` (resized to the arity). Reuse `out`
  /// across calls to keep the loop allocation-free after warmup.
  void GatherRowIds(std::size_t row, IdRow* out) const;

  /// Inserts an already-encoded row (ids must come from this relation's
  /// dictionary); returns true when the row was new. Fails on arity
  /// mismatch.
  Result<bool> InsertIds(std::span<const ValueId> row);
  bool InsertIdsUnsafe(std::span<const ValueId> row);

  bool ContainsIds(std::span<const ValueId> row) const;

  /// Invokes `fn(pos)` for every row whose ids at `columns` equal `key`,
  /// in ascending row order; `fn` returns false to stop early. Uses (and
  /// builds on first use) the ValueId-keyed index on `columns` —
  /// allocation-free once the index exists, mirroring
  /// FactStore::ProbeEach. Empty `columns` enumerates every row.
  template <typename Fn>
  void ProbeEachIds(std::span<const std::size_t> columns,
                    std::span<const ValueId> key, Fn&& fn) const {
    if (num_rows_ == 0) return;
    if (columns.empty()) {
      for (std::size_t pos = 0; pos < num_rows_; ++pos) {
        if (!fn(pos)) return;
      }
      return;
    }
    const ColumnIndex& index = EnsureIndex(columns);
    const std::size_t slot = FindKeySlot(index, key);
    if (slot == kNoSlot) return;
    // Postings chains append in insertion order, so positions ascend.
    for (uint32_t p = index.slots[slot].head; p != kEmptySlot;
         p = index.postings[p].next) {
      if (!fn(index.postings[p].pos)) return;
    }
  }

  /// Row positions whose ids at `columns` equal `key`, ascending. The
  /// allocation-free form is ProbeEachIds.
  std::vector<std::size_t> ProbeIds(std::span<const std::size_t> columns,
                                    std::span<const ValueId> key) const;

  /// Distinct ids of the column at `index`, in first-seen order.
  std::vector<ValueId> ColumnDistinctIds(std::size_t index) const;

  // --- Value-typed accessors (ingest, tests, text rendering) --------------

  /// Interns and inserts a row; returns true when the row was new. This is
  /// the single ingest translation of the interned execution path. Fails
  /// when the arity does not match the schema.
  Result<bool> Insert(Row row);

  /// Insert for static data; aborts on arity mismatch.
  bool InsertUnsafe(Row row);

  /// Membership by value; translation-free miss for values the dictionary
  /// has never seen.
  bool Contains(const Row& row) const;

  /// Row positions whose values at `columns` equal `key` (positionally).
  /// Values absent from the dictionary match nothing.
  std::vector<std::size_t> Probe(const std::vector<std::size_t>& columns,
                                 const Row& key) const;

  /// Decodes one row.
  Row DecodeRow(std::size_t row) const;

  /// Decodes every row in insertion order.
  std::vector<Row> DecodedRows() const;

  /// Distinct values of the column at `index`.
  std::vector<Value> ColumnValues(std::size_t index) const;

  /// Rows sorted by value order — canonical order for printing and tests.
  std::vector<Row> SortedRows() const;

  /// Renders "{<a, b>, <c, d>}" in sorted order.
  std::string ToString() const;

  /// A copy of this relation re-encoded against `dict` (same object →
  /// cheap structural copy; different dictionary → one re-interning pass).
  Relation WithDictionary(ValueDictionaryPtr dict) const;

  /// Set equality over decoded rows; dictionaries need not be shared.
  bool operator==(const Relation& other) const;

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Open-addressing index over one column subset; slots hold the key
  /// hash plus the head/tail of a postings chain. Key bytes are never
  /// stored — equality compares the probe key against the chain head's
  /// row in the columnar storage.
  struct ColumnIndex {
    std::vector<std::size_t> columns;
    struct Slot {
      std::size_t hash = 0;
      uint32_t head = kEmptySlot;
      uint32_t tail = kEmptySlot;
    };
    struct Posting {
      uint32_t pos;
      uint32_t next;
    };
    std::vector<Slot> slots;  // power-of-two size
    std::vector<Posting> postings;
    std::size_t num_keys = 0;
  };

  std::size_t RowHash(std::size_t pos) const;
  bool RowEquals(std::size_t pos, std::span<const ValueId> row) const;
  /// True when `row` is present; *out_slot is its slot, or the empty slot
  /// where it would go.
  bool FindRowSlot(std::span<const ValueId> row, std::size_t* out_slot) const;
  void GrowRowSet();

  std::size_t KeyHashOfRow(const ColumnIndex& index, std::size_t pos) const;
  bool KeyEqualsRow(const ColumnIndex& index, std::size_t pos,
                    std::span<const ValueId> key) const;
  std::size_t FindKeySlot(const ColumnIndex& index,
                          std::span<const ValueId> key) const;
  /// Index over `columns`, built on first use. Const because probing is
  /// logically const, as with the pre-refactor lazy hash indexes.
  const ColumnIndex& EnsureIndex(std::span<const std::size_t> columns) const;
  void IndexInsert(ColumnIndex& index, std::size_t pos) const;
  void GrowIndex(ColumnIndex& index) const;

  /// Appends a row known to be absent, updating the set and indexes.
  void AppendRow(std::span<const ValueId> row, std::size_t slot);

  Schema schema_;
  ValueDictionaryPtr dict_;
  std::vector<std::vector<ValueId>> columns_;  // arity() columns
  std::size_t num_rows_ = 0;
  /// Duplicate-detection set: open addressing over row positions.
  std::vector<uint32_t> set_slots_;
  mutable std::vector<ColumnIndex> indexes_;
};

/// Renders a row as "<a, b, c>".
std::string RowToString(const Row& row);

}  // namespace limcap::relational

#endif  // LIMCAP_RELATIONAL_RELATION_H_
