#ifndef LIMCAP_RELATIONAL_RELATION_H_
#define LIMCAP_RELATIONAL_RELATION_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"

namespace limcap::relational {

/// A row of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// A set-semantics relation: a schema plus deduplicated rows in insertion
/// order. Lazily builds hash indexes keyed by column subsets to support
/// the bound-attribute probes that dominate capability-restricted
/// execution (a source query binds a subset of columns and scans the
/// matches).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(std::size_t i) const { return rows_[i]; }

  /// Inserts a row; returns true when the row was new. Fails when the
  /// arity does not match the schema.
  Result<bool> Insert(Row row);

  /// Insert for static data; aborts on arity mismatch.
  bool InsertUnsafe(Row row);

  bool Contains(const Row& row) const { return row_set_.count(row) > 0; }

  /// Rows whose values at `columns` equal `key` (positionally). Uses (and
  /// builds on first use) a hash index on `columns`. Returned indices are
  /// positions into rows().
  const std::vector<std::size_t>& Probe(const std::vector<std::size_t>& columns,
                                        const Row& key) const;

  /// Distinct values of the column at `index`.
  std::vector<Value> ColumnValues(std::size_t index) const;

  /// Rows sorted by value order — canonical order for printing and tests.
  std::vector<Row> SortedRows() const;

  /// Renders "{<a, b>, <c, d>}" in sorted order.
  std::string ToString() const;

  bool operator==(const Relation& other) const;

 private:
  struct IndexKeyHash {
    std::size_t operator()(const Row& row) const {
      std::size_t seed = 0x51ed2701a1b2c3d4ULL;
      for (const Value& v : row) HashCombine(seed, v.Hash());
      return seed;
    }
  };
  using HashIndex = std::unordered_map<Row, std::vector<std::size_t>, IndexKeyHash>;

  Schema schema_;
  std::vector<Row> rows_;
  std::unordered_set<Row, IndexKeyHash> row_set_;
  // Lazy indexes: column subset -> (key -> row positions). Mutable because
  // Probe is logically const.
  mutable std::map<std::vector<std::size_t>, HashIndex> indexes_;
};

/// Renders a row as "<a, b, c>".
std::string RowToString(const Row& row);

}  // namespace limcap::relational

#endif  // LIMCAP_RELATIONAL_RELATION_H_
