#ifndef LIMCAP_RELATIONAL_OPERATORS_H_
#define LIMCAP_RELATIONAL_OPERATORS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace limcap::relational {

/// An equality predicate `attribute = value` (the only selection form
/// connection queries need; paper Section 2.2).
struct EqualityCondition {
  std::string attribute;
  Value value;
};

/// σ: rows of `input` satisfying every condition. Fails if a condition
/// names an attribute absent from the schema.
Result<Relation> Select(const Relation& input,
                        const std::vector<EqualityCondition>& conditions);

/// π: projection onto `attributes` (in the given order) with set-semantics
/// deduplication. Fails on unknown attributes.
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes);

/// ⋈: natural join equating attributes by name. A hash join: builds a hash
/// index on the smaller input's shared attributes and probes with the
/// larger. When the inputs share no attributes this degenerates to a
/// cartesian product, as natural join requires.
Relation NaturalJoin(const Relation& left, const Relation& right);

/// Natural join of a list of relations, joined left to right; an empty
/// list yields the zero-column relation with one (empty) row, the join
/// identity.
Relation NaturalJoinAll(const std::vector<const Relation*>& inputs);

/// ∪: set union. Fails if schemas differ.
Result<Relation> Union(const Relation& left, const Relation& right);

/// Rows of `left` absent from `right` (schemas must match).
Result<Relation> Difference(const Relation& left, const Relation& right);

}  // namespace limcap::relational

#endif  // LIMCAP_RELATIONAL_OPERATORS_H_
