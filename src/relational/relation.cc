#include "relational/relation.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace limcap::relational {

namespace {

/// Initial power-of-two capacity for the row set and index slot arrays.
constexpr std::size_t kInitialSlots = 16;

/// Keeps open-addressing load factor under 0.7.
bool NeedsGrowth(std::size_t occupied, std::size_t capacity) {
  return 10 * (occupied + 1) > 7 * capacity;
}

}  // namespace

void Relation::GatherRowIds(std::size_t row, IdRow* out) const {
  out->resize(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    (*out)[c] = columns_[c][row];
  }
}

std::size_t Relation::RowHash(std::size_t pos) const {
  std::size_t seed = 0x51ed2701a1b2c3d4ULL;
  std::hash<ValueId> hasher;
  for (const std::vector<ValueId>& column : columns_) {
    HashCombine(seed, hasher(column[pos]));
  }
  return static_cast<std::size_t>(Mix64(seed));
}

bool Relation::RowEquals(std::size_t pos, std::span<const ValueId> row) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c][pos] != row[c]) return false;
  }
  return true;
}

bool Relation::FindRowSlot(std::span<const ValueId> row,
                           std::size_t* out_slot) const {
  if (set_slots_.empty()) {
    *out_slot = kNoSlot;
    return false;
  }
  const std::size_t mask = set_slots_.size() - 1;
  std::size_t slot = HashSpan(row.data(), row.size()) & mask;
  while (true) {
    const uint32_t occupant = set_slots_[slot];
    if (occupant == kEmptySlot) {
      *out_slot = slot;
      return false;
    }
    if (RowEquals(occupant, row)) {
      *out_slot = slot;
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

void Relation::GrowRowSet() {
  const std::size_t capacity =
      set_slots_.empty() ? kInitialSlots : set_slots_.size() * 2;
  set_slots_.assign(capacity, kEmptySlot);
  const std::size_t mask = capacity - 1;
  for (std::size_t pos = 0; pos < num_rows_; ++pos) {
    std::size_t slot = RowHash(pos) & mask;
    while (set_slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    set_slots_[slot] = static_cast<uint32_t>(pos);
  }
}

void Relation::AppendRow(std::span<const ValueId> row, std::size_t slot) {
  if (set_slots_.empty() || NeedsGrowth(num_rows_, set_slots_.size())) {
    GrowRowSet();
    FindRowSlot(row, &slot);  // recompute the target slot
  }
  const std::size_t pos = num_rows_;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(row[c]);
  }
  ++num_rows_;
  set_slots_[slot] = static_cast<uint32_t>(pos);
  for (ColumnIndex& index : indexes_) IndexInsert(index, pos);
}

Result<bool> Relation::InsertIds(std::span<const ValueId> row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  std::size_t slot;
  if (FindRowSlot(row, &slot)) return false;
  AppendRow(row, slot);
  return true;
}

bool Relation::InsertIdsUnsafe(std::span<const ValueId> row) {
  auto result = InsertIds(row);
  if (!result.ok()) std::abort();
  return result.value();
}

bool Relation::ContainsIds(std::span<const ValueId> row) const {
  if (row.size() != schema_.arity()) return false;
  std::size_t slot;
  return FindRowSlot(row, &slot);
}

Result<bool> Relation::Insert(Row row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  IdRow encoded;
  encoded.reserve(row.size());
  for (const Value& value : row) encoded.push_back(dict_->Intern(value));
  return InsertIds(encoded);
}

bool Relation::InsertUnsafe(Row row) {
  auto result = Insert(std::move(row));
  if (!result.ok()) std::abort();
  return result.value();
}

bool Relation::Contains(const Row& row) const {
  if (row.size() != schema_.arity()) return false;
  IdRow encoded;
  encoded.reserve(row.size());
  for (const Value& value : row) {
    ValueId id;
    if (!dict_->Lookup(value, &id)) return false;
    encoded.push_back(id);
  }
  return ContainsIds(encoded);
}

std::size_t Relation::KeyHashOfRow(const ColumnIndex& index,
                                   std::size_t pos) const {
  std::size_t seed = 0x51ed2701a1b2c3d4ULL;
  std::hash<ValueId> hasher;
  for (std::size_t c : index.columns) {
    HashCombine(seed, hasher(columns_[c][pos]));
  }
  // Must match HashSpan over the extracted key (same combine + Mix64).
  return static_cast<std::size_t>(Mix64(seed));
}

bool Relation::KeyEqualsRow(const ColumnIndex& index, std::size_t pos,
                            std::span<const ValueId> key) const {
  for (std::size_t c = 0; c < index.columns.size(); ++c) {
    if (columns_[index.columns[c]][pos] != key[c]) return false;
  }
  return true;
}

std::size_t Relation::FindKeySlot(const ColumnIndex& index,
                                  std::span<const ValueId> key) const {
  if (index.slots.empty()) return kNoSlot;
  const std::size_t mask = index.slots.size() - 1;
  const std::size_t hash = HashSpan(key.data(), key.size());
  std::size_t slot = hash & mask;
  while (true) {
    const ColumnIndex::Slot& s = index.slots[slot];
    if (s.head == kEmptySlot) return kNoSlot;
    if (s.hash == hash &&
        KeyEqualsRow(index, index.postings[s.head].pos, key)) {
      return slot;
    }
    slot = (slot + 1) & mask;
  }
}

const Relation::ColumnIndex& Relation::EnsureIndex(
    std::span<const std::size_t> columns) const {
  for (const ColumnIndex& index : indexes_) {
    if (index.columns.size() == columns.size() &&
        std::equal(columns.begin(), columns.end(), index.columns.begin())) {
      return index;
    }
  }
  indexes_.emplace_back();
  ColumnIndex& index = indexes_.back();
  index.columns.assign(columns.begin(), columns.end());
  index.postings.reserve(num_rows_);
  for (std::size_t pos = 0; pos < num_rows_; ++pos) {
    IndexInsert(index, pos);
  }
  return index;
}

void Relation::IndexInsert(ColumnIndex& index, std::size_t pos) const {
  if (index.slots.empty() || NeedsGrowth(index.num_keys, index.slots.size())) {
    GrowIndex(index);
  }
  const std::size_t mask = index.slots.size() - 1;
  const std::size_t hash = KeyHashOfRow(index, pos);
  std::size_t slot = hash & mask;
  while (true) {
    ColumnIndex::Slot& s = index.slots[slot];
    if (s.head == kEmptySlot) {
      // New key: open a chain.
      const uint32_t posting = static_cast<uint32_t>(index.postings.size());
      index.postings.push_back({static_cast<uint32_t>(pos), kEmptySlot});
      s.hash = hash;
      s.head = posting;
      s.tail = posting;
      ++index.num_keys;
      return;
    }
    if (s.hash == hash) {
      const std::size_t head_pos = index.postings[s.head].pos;
      bool equal = true;
      for (std::size_t c : index.columns) {
        if (columns_[c][head_pos] != columns_[c][pos]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        // Append at the tail so chains stay in ascending row order.
        const uint32_t posting = static_cast<uint32_t>(index.postings.size());
        index.postings.push_back({static_cast<uint32_t>(pos), kEmptySlot});
        index.postings[s.tail].next = posting;
        s.tail = posting;
        return;
      }
    }
    slot = (slot + 1) & mask;
  }
}

void Relation::GrowIndex(ColumnIndex& index) const {
  const std::size_t capacity =
      index.slots.empty() ? kInitialSlots : index.slots.size() * 2;
  std::vector<ColumnIndex::Slot> old = std::move(index.slots);
  index.slots.assign(capacity, ColumnIndex::Slot{});
  const std::size_t mask = capacity - 1;
  for (const ColumnIndex::Slot& s : old) {
    if (s.head == kEmptySlot) continue;
    std::size_t slot = s.hash & mask;
    while (index.slots[slot].head != kEmptySlot) slot = (slot + 1) & mask;
    index.slots[slot] = s;
  }
}

std::vector<std::size_t> Relation::ProbeIds(
    std::span<const std::size_t> columns,
    std::span<const ValueId> key) const {
  std::vector<std::size_t> positions;
  ProbeEachIds(columns, key, [&](std::size_t pos) {
    positions.push_back(pos);
    return true;
  });
  return positions;
}

std::vector<std::size_t> Relation::Probe(
    const std::vector<std::size_t>& columns, const Row& key) const {
  IdRow encoded;
  encoded.reserve(key.size());
  for (const Value& value : key) {
    ValueId id;
    if (!dict_->Lookup(value, &id)) return {};
    encoded.push_back(id);
  }
  return ProbeIds(columns, encoded);
}

std::vector<ValueId> Relation::ColumnDistinctIds(std::size_t index) const {
  std::vector<ValueId> ids;
  std::vector<uint32_t> seen;  // dense over ids: 1 == seen
  for (ValueId id : columns_[index]) {
    if (id >= seen.size()) seen.resize(id + 1, 0);
    if (seen[id] == 0) {
      seen[id] = 1;
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<Value> Relation::ColumnValues(std::size_t index) const {
  std::vector<Value> values;
  for (ValueId id : ColumnDistinctIds(index)) {
    values.push_back(dict_->Get(id));
  }
  return values;
}

Row Relation::DecodeRow(std::size_t row) const {
  Row decoded;
  decoded.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    decoded.push_back(dict_->Get(columns_[c][row]));
  }
  return decoded;
}

std::vector<Row> Relation::DecodedRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (std::size_t pos = 0; pos < num_rows_; ++pos) {
    rows.push_back(DecodeRow(pos));
  }
  return rows;
}

std::vector<Row> Relation::SortedRows() const {
  std::vector<Row> sorted = DecodedRows();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string Relation::ToString() const {
  return "{" +
         JoinMapped(SortedRows(), ", ",
                    [](const Row& row) { return RowToString(row); }) +
         "}";
}

Relation Relation::WithDictionary(ValueDictionaryPtr dict) const {
  if (dict == dict_) return *this;
  Relation out(schema_, std::move(dict));
  IdRow encoded(columns_.size());
  for (std::size_t pos = 0; pos < num_rows_; ++pos) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      encoded[c] = out.dict_->Intern(dict_->Get(columns_[c][pos]));
    }
    out.InsertIdsUnsafe(encoded);
  }
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (num_rows_ != other.num_rows_) return false;
  if (SharesDictionaryWith(other)) {
    IdRow row(columns_.size());
    for (std::size_t pos = 0; pos < num_rows_; ++pos) {
      GatherRowIds(pos, &row);
      if (!other.ContainsIds(row)) return false;
    }
    return true;
  }
  for (std::size_t pos = 0; pos < num_rows_; ++pos) {
    if (!other.Contains(DecodeRow(pos))) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  return "<" +
         JoinMapped(row, ", ", [](const Value& v) { return v.ToString(); }) +
         ">";
}

}  // namespace limcap::relational
