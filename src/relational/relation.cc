#include "relational/relation.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace limcap::relational {

namespace {

Row ExtractKey(const Row& row, const std::vector<std::size_t>& columns) {
  Row key;
  key.reserve(columns.size());
  for (std::size_t c : columns) key.push_back(row[c]);
  return key;
}

const std::vector<std::size_t>& EmptyMatches() {
  static const std::vector<std::size_t>* empty = new std::vector<std::size_t>();
  return *empty;
}

}  // namespace

Result<bool> Relation::Insert(Row row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  if (row_set_.count(row) > 0) return false;
  // Keep existing lazy indexes consistent with the new row.
  for (auto& [columns, index] : indexes_) {
    index[ExtractKey(row, columns)].push_back(rows_.size());
  }
  row_set_.insert(row);
  rows_.push_back(std::move(row));
  return true;
}

bool Relation::InsertUnsafe(Row row) {
  auto result = Insert(std::move(row));
  if (!result.ok()) std::abort();
  return result.value();
}

const std::vector<std::size_t>& Relation::Probe(
    const std::vector<std::size_t>& columns, const Row& key) const {
  auto it = indexes_.find(columns);
  if (it == indexes_.end()) {
    HashIndex index;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      index[ExtractKey(rows_[i], columns)].push_back(i);
    }
    it = indexes_.emplace(columns, std::move(index)).first;
  }
  auto match = it->second.find(key);
  if (match == it->second.end()) return EmptyMatches();
  return match->second;
}

std::vector<Value> Relation::ColumnValues(std::size_t index) const {
  std::vector<Value> values;
  std::unordered_set<Value> seen;
  for (const Row& row : rows_) {
    if (seen.insert(row[index]).second) values.push_back(row[index]);
  }
  return values;
}

std::vector<Row> Relation::SortedRows() const {
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string Relation::ToString() const {
  return "{" +
         JoinMapped(SortedRows(), ", ",
                    [](const Row& row) { return RowToString(row); }) +
         "}";
}

bool Relation::operator==(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const Row& row : rows_) {
    if (!other.Contains(row)) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  return "<" +
         JoinMapped(row, ", ", [](const Value& v) { return v.ToString(); }) +
         ">";
}

}  // namespace limcap::relational
