#include "relational/schema.h"

#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace limcap::relational {

Result<Schema> Schema::Make(std::vector<std::string> attributes) {
  std::unordered_set<std::string> seen;
  for (const std::string& name : attributes) {
    if (name.empty()) {
      return Status::InvalidArgument("schema attribute name is empty");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate schema attribute: " + name);
    }
  }
  return Schema(std::move(attributes));
}

Schema Schema::MakeUnsafe(std::vector<std::string> attributes) {
  auto result = Make(std::move(attributes));
  if (!result.ok()) {
    std::abort();
  }
  return std::move(result).value();
}

std::optional<std::size_t> Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Schema::CommonAttributes(const Schema& other) const {
  std::vector<std::string> common;
  for (const std::string& name : attributes_) {
    if (other.Contains(name)) common.push_back(name);
  }
  return common;
}

Schema Schema::NaturalJoinSchema(const Schema& other) const {
  std::vector<std::string> joined = attributes_;
  for (const std::string& name : other.attributes_) {
    if (!Contains(name)) joined.push_back(name);
  }
  return Schema(std::move(joined));
}

std::string Schema::ToString() const {
  return "(" + Join(attributes_, ", ") + ")";
}

}  // namespace limcap::relational
