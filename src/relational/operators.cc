#include "relational/operators.h"

namespace limcap::relational {

Result<Relation> Select(const Relation& input,
                        const std::vector<EqualityCondition>& conditions) {
  std::vector<std::pair<std::size_t, Value>> resolved;
  resolved.reserve(conditions.size());
  for (const EqualityCondition& cond : conditions) {
    auto index = input.schema().IndexOf(cond.attribute);
    if (!index.has_value()) {
      return Status::InvalidArgument("selection attribute not in schema: " +
                                     cond.attribute);
    }
    resolved.emplace_back(*index, cond.value);
  }
  Relation output(input.schema());
  for (const Row& row : input.rows()) {
    bool keep = true;
    for (const auto& [index, value] : resolved) {
      if (row[index] != value) {
        keep = false;
        break;
      }
    }
    if (keep) output.InsertUnsafe(row);
  }
  return output;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes) {
  std::vector<std::size_t> positions;
  positions.reserve(attributes.size());
  for (const std::string& name : attributes) {
    auto index = input.schema().IndexOf(name);
    if (!index.has_value()) {
      return Status::InvalidArgument("projection attribute not in schema: " +
                                     name);
    }
    positions.push_back(*index);
  }
  LIMCAP_ASSIGN_OR_RETURN(Schema schema, Schema::Make(attributes));
  Relation output(std::move(schema));
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(positions.size());
    for (std::size_t p : positions) projected.push_back(row[p]);
    output.InsertUnsafe(std::move(projected));
  }
  return output;
}

Relation NaturalJoin(const Relation& left, const Relation& right) {
  // Probe with the larger side into an index on the smaller side.
  const bool left_is_build = left.size() <= right.size();
  const Relation& build = left_is_build ? left : right;
  const Relation& probe = left_is_build ? right : left;

  std::vector<std::string> shared =
      build.schema().CommonAttributes(probe.schema());
  std::vector<std::size_t> build_cols;
  std::vector<std::size_t> probe_cols;
  for (const std::string& name : shared) {
    build_cols.push_back(*build.schema().IndexOf(name));
    probe_cols.push_back(*probe.schema().IndexOf(name));
  }
  // Output schema per the public contract: left's attributes then right's
  // new attributes.
  Schema out_schema = left.schema().NaturalJoinSchema(right.schema());
  Relation output(out_schema);

  // Positions in (left row, right row) for each output attribute.
  struct SourcePos {
    bool from_left;
    std::size_t index;
  };
  std::vector<SourcePos> mapping;
  for (const std::string& name : out_schema.attributes()) {
    if (auto li = left.schema().IndexOf(name); li.has_value()) {
      mapping.push_back({true, *li});
    } else {
      mapping.push_back({false, *right.schema().IndexOf(name)});
    }
  }

  for (const Row& probe_row : probe.rows()) {
    Row key;
    key.reserve(probe_cols.size());
    for (std::size_t c : probe_cols) key.push_back(probe_row[c]);
    for (std::size_t build_pos : build.Probe(build_cols, key)) {
      const Row& build_row = build.row(build_pos);
      const Row& left_row = left_is_build ? build_row : probe_row;
      const Row& right_row = left_is_build ? probe_row : build_row;
      Row out;
      out.reserve(mapping.size());
      for (const SourcePos& pos : mapping) {
        out.push_back(pos.from_left ? left_row[pos.index]
                                    : right_row[pos.index]);
      }
      output.InsertUnsafe(std::move(out));
    }
  }
  return output;
}

Relation NaturalJoinAll(const std::vector<const Relation*>& inputs) {
  Relation acc{Schema::MakeUnsafe({})};
  acc.InsertUnsafe({});
  for (const Relation* input : inputs) {
    acc = NaturalJoin(acc, *input);
  }
  return acc;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("union schemas differ: " +
                                   left.schema().ToString() + " vs " +
                                   right.schema().ToString());
  }
  Relation output = left;
  for (const Row& row : right.rows()) output.InsertUnsafe(row);
  return output;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("difference schemas differ: " +
                                   left.schema().ToString() + " vs " +
                                   right.schema().ToString());
  }
  Relation output(left.schema());
  for (const Row& row : left.rows()) {
    if (!right.Contains(row)) output.InsertUnsafe(row);
  }
  return output;
}

}  // namespace limcap::relational
