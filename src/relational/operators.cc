#include "relational/operators.h"

namespace limcap::relational {

Result<Relation> Select(const Relation& input,
                        const std::vector<EqualityCondition>& conditions) {
  std::vector<std::size_t> columns;
  IdRow key;
  bool unmatchable = false;
  for (const EqualityCondition& cond : conditions) {
    auto index = input.schema().IndexOf(cond.attribute);
    if (!index.has_value()) {
      return Status::InvalidArgument("selection attribute not in schema: " +
                                     cond.attribute);
    }
    ValueId id;
    if (!input.dict().Lookup(cond.value, &id)) {
      // The dictionary has never seen the value, so no row can match.
      unmatchable = true;
      continue;
    }
    columns.push_back(*index);
    key.push_back(id);
  }
  Relation output(input.schema(), input.dict_ptr());
  if (unmatchable) return output;
  IdRow row;
  input.ProbeEachIds(columns, key, [&](std::size_t pos) {
    input.GatherRowIds(pos, &row);
    output.InsertIdsUnsafe(row);
    return true;
  });
  return output;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes) {
  std::vector<std::size_t> positions;
  positions.reserve(attributes.size());
  for (const std::string& name : attributes) {
    auto index = input.schema().IndexOf(name);
    if (!index.has_value()) {
      return Status::InvalidArgument("projection attribute not in schema: " +
                                     name);
    }
    positions.push_back(*index);
  }
  LIMCAP_ASSIGN_OR_RETURN(Schema schema, Schema::Make(attributes));
  Relation output(std::move(schema), input.dict_ptr());
  IdRow projected(positions.size());
  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    for (std::size_t p = 0; p < positions.size(); ++p) {
      projected[p] = input.IdAt(pos, positions[p]);
    }
    output.InsertIdsUnsafe(projected);
  }
  return output;
}

Relation NaturalJoin(const Relation& left, const Relation& right) {
  // Mixed dictionaries re-intern the right side once; relations produced
  // inside one session share the session dictionary and skip this.
  if (!left.SharesDictionaryWith(right)) {
    return NaturalJoin(left, right.WithDictionary(left.dict_ptr()));
  }
  // Probe with the larger side into an index on the smaller side.
  const bool left_is_build = left.size() <= right.size();
  const Relation& build = left_is_build ? left : right;
  const Relation& probe = left_is_build ? right : left;

  std::vector<std::string> shared =
      build.schema().CommonAttributes(probe.schema());
  std::vector<std::size_t> build_cols;
  std::vector<std::size_t> probe_cols;
  for (const std::string& name : shared) {
    build_cols.push_back(*build.schema().IndexOf(name));
    probe_cols.push_back(*probe.schema().IndexOf(name));
  }
  // Output schema per the public contract: left's attributes then right's
  // new attributes.
  Schema out_schema = left.schema().NaturalJoinSchema(right.schema());
  Relation output(out_schema, left.dict_ptr());

  // Positions in (left row, right row) for each output attribute.
  struct SourcePos {
    bool from_left;
    std::size_t index;
  };
  std::vector<SourcePos> mapping;
  for (const std::string& name : out_schema.attributes()) {
    if (auto li = left.schema().IndexOf(name); li.has_value()) {
      mapping.push_back({true, *li});
    } else {
      mapping.push_back({false, *right.schema().IndexOf(name)});
    }
  }

  IdRow key(probe_cols.size());
  IdRow out(mapping.size());
  for (std::size_t probe_pos = 0; probe_pos < probe.size(); ++probe_pos) {
    for (std::size_t c = 0; c < probe_cols.size(); ++c) {
      key[c] = probe.IdAt(probe_pos, probe_cols[c]);
    }
    build.ProbeEachIds(build_cols, key, [&](std::size_t build_pos) {
      const std::size_t left_pos = left_is_build ? build_pos : probe_pos;
      const std::size_t right_pos = left_is_build ? probe_pos : build_pos;
      for (std::size_t m = 0; m < mapping.size(); ++m) {
        out[m] = mapping[m].from_left ? left.IdAt(left_pos, mapping[m].index)
                                      : right.IdAt(right_pos, mapping[m].index);
      }
      output.InsertIdsUnsafe(out);
      return true;
    });
  }
  return output;
}

Relation NaturalJoinAll(const std::vector<const Relation*>& inputs) {
  Relation acc = inputs.empty()
                     ? Relation(Schema::MakeUnsafe({}))
                     : Relation(Schema::MakeUnsafe({}),
                                inputs.front()->dict_ptr());
  acc.InsertIdsUnsafe({});
  for (const Relation* input : inputs) {
    acc = NaturalJoin(acc, *input);
  }
  return acc;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("union schemas differ: " +
                                   left.schema().ToString() + " vs " +
                                   right.schema().ToString());
  }
  Relation output = left;
  if (output.SharesDictionaryWith(right)) {
    IdRow row;
    for (std::size_t pos = 0; pos < right.size(); ++pos) {
      right.GatherRowIds(pos, &row);
      output.InsertIdsUnsafe(row);
    }
  } else {
    for (std::size_t pos = 0; pos < right.size(); ++pos) {
      output.InsertUnsafe(right.DecodeRow(pos));
    }
  }
  return output;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("difference schemas differ: " +
                                   left.schema().ToString() + " vs " +
                                   right.schema().ToString());
  }
  Relation output(left.schema(), left.dict_ptr());
  const bool shared = left.SharesDictionaryWith(right);
  IdRow row;
  for (std::size_t pos = 0; pos < left.size(); ++pos) {
    left.GatherRowIds(pos, &row);
    const bool present = shared ? right.ContainsIds(row)
                                : right.Contains(left.DecodeRow(pos));
    if (!present) output.InsertIdsUnsafe(row);
  }
  return output;
}

}  // namespace limcap::relational
