#include "analysis/analyzer.h"

#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "datalog/dependency_graph.h"
#include "datalog/safety.h"

namespace limcap::analysis {

namespace {

using capability::SourceView;
using datalog::Atom;
using datalog::DependencyGraph;
using datalog::Program;
using datalog::ProgramSourceMap;
using datalog::Rule;
using datalog::Term;

Location MakeLocation(const Program& program, const ProgramSourceMap* map,
                      std::size_t rule_index, int atom_index) {
  Location location;
  location.rule = static_cast<int>(rule_index);
  location.atom = atom_index;
  if (map != nullptr && rule_index < map->rules.size()) {
    const datalog::RuleSpan& span = map->rules[rule_index];
    const datalog::SourceSpan& pos =
        atom_index != Location::kNone &&
                static_cast<std::size_t>(atom_index) < span.body.size()
            ? span.body[atom_index]
            : span.rule;
    location.line = pos.line;
    location.column = pos.column;
  }
  location.context = program.rules()[rule_index].ToString();
  return location;
}

/// LC004 — body predicates that nothing can ever populate structurally:
/// no rule derives them and no catalog view backs them.
void CheckUndeclaredPredicates(const Program& program,
                               const std::vector<SourceView>& views,
                               const ProgramSourceMap* map,
                               DiagnosticBag* bag) {
  std::set<std::string> declared = program.IdbPredicates();
  for (const SourceView& view : views) declared.insert(view.name());
  std::set<std::string> reported;
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      const std::string& predicate = rule.body[i].predicate;
      if (declared.count(predicate) > 0) continue;
      if (!reported.insert(predicate).second) continue;
      bag->Report(Code::kUndeclaredPredicate,
                  "predicate '" + predicate +
                      "' has no rules, no facts, and no source view: its "
                      "relation is always empty",
                  MakeLocation(program, map, r, static_cast<int>(i)));
    }
  }
}

/// LC005 — variables occurring exactly once in their rule.
void CheckSingletonVariables(const Program& program,
                             const ProgramSourceMap* map, DiagnosticBag* bag) {
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    std::map<std::string, std::size_t> counts;
    auto count_atom = [&](const Atom& atom) {
      for (const Term& term : atom.terms) {
        if (term.is_variable()) ++counts[term.var()];
      }
    };
    count_atom(rule.head);
    for (const Atom& atom : rule.body) count_atom(atom);
    std::vector<std::string> singles;
    for (const auto& [var, count] : counts) {
      if (count == 1) singles.push_back(var);
    }
    if (singles.empty()) continue;
    bag->Report(Code::kSingletonVariable,
                (singles.size() == 1
                     ? "variable '" + singles.front() + "' occurs"
                     : "variables {" + Join(singles, ", ") + "} occur") +
                    " only once in this rule (projected away on arrival; in "
                    "hand-written rules, a possible typo)",
                MakeLocation(program, map, r, Location::kNone));
  }
}

/// LC006/LC007 — goal reachability and recursion, on the dependency
/// graph that Section 6's RemoveUselessRules walks.
///
/// One evaluator-semantics exception: a rule deriving the domain
/// predicate of a *bound* attribute of a view the program mentions is
/// never reported, even when graph-unreachable — the source-driven
/// evaluator forms source queries from those domain facts, a channel
/// the dependency graph cannot see (builder programs route it through
/// the alpha rules; hand-written ones often do not).
void CheckReachability(const Program& program,
                       const std::vector<SourceView>& views,
                       const AnalysisOptions& options,
                       const ProgramSourceMap* map, bool note_recursion,
                       DiagnosticBag* bag) {
  DependencyGraph graph(program);

  std::set<std::string> mentioned = program.AllPredicates();
  std::set<std::string> fetch_domains;
  for (const SourceView& view : views) {
    if (mentioned.count(view.name()) == 0) continue;
    for (std::size_t t = 0; t < view.templates().size(); ++t) {
      for (const std::string& attribute : view.BoundAttributes(t)) {
        fetch_domains.insert(options.domains.DomainOf(attribute));
      }
    }
  }

  if (note_recursion && graph.IsRecursive()) {
    std::size_t cyclic = 0;
    for (const std::string& predicate : program.AllPredicates()) {
      if (graph.IsRecursivePredicate(predicate)) ++cyclic;
    }
    bag->Report(Code::kRecursiveProgram,
                "program is recursive: " + std::to_string(cyclic) +
                    " predicate(s) participate in dependency cycles (Π(Q, V) "
                    "is recursive by construction)");
  }

  // The goal, plus the builder's tagged per-connection goals `<goal>$cK`.
  std::vector<std::string> goals;
  const std::string tagged_prefix = options.goal_predicate + "$";
  for (const std::string& predicate : program.AllPredicates()) {
    if (predicate == options.goal_predicate ||
        StartsWith(predicate, tagged_prefix)) {
      goals.push_back(predicate);
    }
  }
  if (goals.empty()) {
    bag->Report(Code::kGoalUnreachableRule,
                "goal predicate '" + options.goal_predicate +
                    "' is not defined anywhere in the program: the answer is "
                    "always empty");
    return;
  }
  std::set<std::string> reachable;
  for (const std::string& goal : goals) {
    std::set<std::string> from_goal = graph.ReachableFrom(goal);
    reachable.insert(from_goal.begin(), from_goal.end());
  }
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const std::string& head = program.rules()[r].head.predicate;
    if (reachable.count(head) > 0) continue;
    if (fetch_domains.count(head) > 0) continue;
    bag->Report(Code::kGoalUnreachableRule,
                "rule for '" + head + "' is unreachable from goal '" +
                    options.goal_predicate +
                    "': it cannot contribute to any answer (Section 6's "
                    "RemoveUselessRules drops it)",
                MakeLocation(program, map, r, Location::kNone));
  }
}

/// LC010 — atoms over catalog views must match the view's schema arity.
void CheckViewArities(const Program& program,
                      const std::vector<SourceView>& views,
                      const ProgramSourceMap* map, DiagnosticBag* bag) {
  std::unordered_map<std::string, std::size_t> arities;
  for (const SourceView& view : views) {
    arities.emplace(view.name(), view.schema().arity());
  }
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    auto check = [&](const Atom& atom, int atom_index) {
      auto it = arities.find(atom.predicate);
      if (it == arities.end() || it->second == atom.arity()) return;
      bag->Report(Code::kViewArityMismatch,
                  "atom '" + atom.ToString() + "' has arity " +
                      std::to_string(atom.arity()) + " but source view '" +
                      atom.predicate + "' has arity " +
                      std::to_string(it->second),
                  MakeLocation(program, map, r, atom_index));
    };
    check(rule.head, Location::kNone);
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      check(rule.body[i], static_cast<int>(i));
    }
  }
}

/// Attaches the Section 7 context to non-ground facts over domain
/// predicates: those are domain-knowledge facts and would poison source
/// query formation if a variable slipped in.
void AnnotateDomainFacts(const Program& program, const AnalysisOptions& options,
                         const std::vector<SourceView>& views,
                         DiagnosticBag* bag) {
  std::set<std::string> domain_predicates;
  for (const SourceView& view : views) {
    for (const std::string& attribute : view.schema().attributes()) {
      domain_predicates.insert(options.domains.DomainOf(attribute));
    }
  }
  for (Diagnostic& d : bag->mutable_diagnostics()) {
    if (d.code != Code::kNonGroundFact || d.location.rule == Location::kNone) {
      continue;
    }
    const std::string& head =
        program.rules()[d.location.rule].head.predicate;
    if (domain_predicates.count(head) == 0) continue;
    d.notes.push_back(
        "'" + head +
        "' is a domain predicate: this is a Section 7 domain-knowledge / "
        "cached-tuple fact, and the evaluator forms source queries from its "
        "values — it must be ground");
  }
}

}  // namespace

AnalysisResult AnalyzeProgram(const Program& program,
                              const std::vector<SourceView>& views,
                              const AnalysisOptions& options,
                              const ProgramSourceMap* source_map) {
  AnalysisResult result;
  DiagnosticBag& bag = result.diagnostics;

  datalog::AppendSafetyDiagnostics(program, source_map, &bag);
  AnnotateDomainFacts(program, options, views, &bag);
  CheckUndeclaredPredicates(program, views, source_map, &bag);
  if (options.note_singleton_variables) {
    CheckSingletonVariables(program, source_map, &bag);
  }
  if (options.check_goal_reachability) {
    CheckReachability(program, views, options, source_map,
                      options.note_recursion, &bag);
  }
  CheckViewArities(program, views, source_map, &bag);

  if (options.check_executability) {
    result.executability = AnalyzeExecutability(program, views, options.domains,
                                                options.executability);
    result.executability_ran = true;
    AppendExecutabilityDiagnostics(program, views, result.executability,
                                   source_map, &bag);
  }

  if (options.check_binding_flow) {
    BindingFlowOptions flow_options;
    flow_options.goal_predicate = options.goal_predicate;
    result.binding_flow =
        AnalyzeBindingFlow(program, views, options.domains, flow_options);
    result.binding_flow_ran = true;
    AppendBindingFlowDiagnostics(program, result.binding_flow, source_map,
                                 &bag);
  }

  bag.Sort();
  return result;
}

}  // namespace limcap::analysis
