#ifndef LIMCAP_ANALYSIS_DIAGNOSTICS_H_
#define LIMCAP_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace limcap::analysis {

/// Severity of a diagnostic. Errors make `limcap_lint` exit non-zero and
/// trip the strict mediator gate; warnings and notes are advisory.
enum class Severity { kError, kWarning, kNote };

/// "error" / "warning" / "note".
const char* SeverityToString(Severity severity);

/// Stable diagnostic codes. The numeric value is the code's LC number and
/// must never be reused or renumbered: golden files, CI greps and user
/// scripts key on them. Gaps group the codes by family (00x structural,
/// 01x catalog-aware, 02x executability).
enum class Code {
  /// A predicate is used with two different arities.
  kArityClash = 1,
  /// A head variable does not occur in the rule's (positive) body —
  /// range restriction, Ullman's safety used by Proposition 3.1.
  kUnsafeHeadVariable = 2,
  /// A fact (empty-body rule) contains a variable. Covers the Section 7
  /// requirement that cached-tuple and domain-knowledge facts be ground.
  kNonGroundFact = 3,
  /// A body predicate has no rules, no facts, and is not a catalog view:
  /// its relation is necessarily empty.
  kUndeclaredPredicate = 4,
  /// A variable occurs exactly once in its rule: either dead (projected
  /// away on arrival) or, in hand-written programs, a likely typo.
  kSingletonVariable = 5,
  /// The rule's head predicate is not reachable from the goal predicate
  /// in the dependency graph; Section 6's RemoveUselessRules drops it.
  kGoalUnreachableRule = 6,
  /// The program is recursive (informational; Π(Q, V) always is).
  kRecursiveProgram = 7,
  /// A body atom over a catalog view has the wrong number of arguments.
  kViewArityMismatch = 10,
  /// No body ordering binds a source-view atom's required-bound
  /// attributes (by head input adornment, constants, or earlier atoms)
  /// under any of the view's templates — the adorned executability
  /// failure of Sections 2-3.
  kUnbindableViewAtom = 20,
  /// The rule can never derive a fact: some body atom's relation is
  /// provably empty in every source-driven evaluation. Pruning such a
  /// rule never changes the answer.
  kRuleNeverFires = 21,
  /// An IDB predicate none of whose rules can ever fire.
  kUnproduciblePredicate = 22,
  /// A source view none of whose templates can ever be queried: some
  /// required-bound attribute's domain predicate is never populated.
  kUnfetchableView = 23,
  /// Binding-flow verdict (03x family): a fetch channel (view,
  /// template) is reachable — the evaluator will form queries for it —
  /// but nothing it returns can ever feed the goal. Strictly stronger
  /// than `can_fire`; carries a machine-checkable irrelevance
  /// certificate (the closed needed-set the channel's view is outside).
  kStaticallyIrrelevantChannel = 30,
  /// A fetch channel whose required-bound domains are never populated
  /// under the query's input bindings: no query can ever be formed for
  /// it. Carries an unreachability refutation (the forward-closed
  /// populated set missing a bound domain).
  kUnreachableChannel = 31,
  /// Static per-source bounds: frontier depth (first fetch wave a query
  /// for the source can be formed) and, when all feeding domains are
  /// constant-only, an upper bound on the number of distinct queries.
  kStaticBounds = 32,
};

/// "LC001", "LC020", ...
std::string CodeName(Code code);

/// The severity a code is reported at.
Severity DefaultSeverity(Code code);

/// Where a diagnostic points. All fields are optional; `rule` and `atom`
/// index into the analyzed program, `line`/`column` come from the parser
/// source map when the program was parsed from text (1-based, 0 =
/// unknown).
struct Location {
  static constexpr int kNone = -1;
  /// Rule index in program order, or kNone.
  int rule = kNone;
  /// Body atom index within the rule; kNone = the head or the whole rule.
  int atom = kNone;
  int line = 0;
  int column = 0;
  /// The rule (or other construct) rendered as text, for display.
  std::string context;
};

/// One diagnostic: a coded finding with a message, a location, and
/// optional attached notes (extra explanatory lines).
struct Diagnostic {
  Code code = Code::kArityClash;
  Severity severity = Severity::kError;
  std::string message;
  Location location;
  std::vector<std::string> notes;
};

/// An ordered collection of diagnostics with stable rendering. Passes
/// append in discovery order; `Sort()` orders by (rule, atom, code,
/// insertion) so renders are deterministic regardless of pass order.
class DiagnosticBag {
 public:
  /// Appends a fully built diagnostic.
  void Add(Diagnostic diagnostic);

  /// Appends `message` under `code` at its default severity.
  Diagnostic& Report(Code code, std::string message, Location location = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  /// Mutable access for post-processing passes that decorate earlier
  /// findings (e.g. attaching a domain-fact note to an LC003).
  std::vector<Diagnostic>& mutable_diagnostics() { return diagnostics_; }
  std::size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }

  std::size_t count(Severity severity) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  std::size_t notes() const { return count(Severity::kNote); }
  bool has_errors() const { return errors() > 0; }

  /// Stable-sorts by (rule index, atom index, code, insertion order).
  void Sort();

  /// Human-readable report, one block per diagnostic:
  ///
  ///   error[LC020] no body ordering binds ... of view atom v6(...)
  ///     --> rule 4, body atom 1 (line 5): v6^(Isbn, Price) :- ...
  ///     note: template 'bf' is missing {Isbn}
  ///   1 error, 0 warnings, 0 notes
  std::string RenderText() const;

  /// Machine-readable report:
  /// {"diagnostics":[{"code":"LC020","severity":"error",...}],
  ///  "errors":1,"warnings":0,"notes":0}
  std::string RenderJson() const;

  /// An error Status carrying the first error's message (prefixed with
  /// its code) and the total error count; OK when there are no errors.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_DIAGNOSTICS_H_
