#include "analysis/binding_flow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace limcap::analysis {

namespace {

using capability::BindingPattern;
using capability::SourceView;
using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

using ChannelKey = std::pair<std::string, std::size_t>;

/// The forward (reachability) fixpoint, staged to mirror the
/// evaluator's fetch/eval alternation.
struct ForwardState {
  /// Distinct ground tuples derivable per predicate while the predicate
  /// is still constant-only (facts plus ground rule heads).
  std::map<std::string, std::set<std::string>> constants;
  /// Predicates some firing rule derives with a variable head term.
  std::set<std::string> var_derived;
  /// Mentioned views with at least one active channel.
  std::set<std::string> populated_views;
  /// Active channels, mapped to the wave of first activation.
  std::map<ChannelKey, std::size_t> active;
  /// Per-rule: the rule abstractly fires at the fixpoint.
  std::vector<bool> fired;
  /// Mentioned catalog views, in catalog order.
  std::vector<const SourceView*> mentioned;
};

bool Populated(const ForwardState& state, const std::string& predicate) {
  return state.var_derived.count(predicate) > 0 ||
         state.constants.count(predicate) > 0 ||
         state.populated_views.count(predicate) > 0;
}

AbstractBinding ValueOf(const ForwardState& state,
                        const std::string& predicate) {
  if (state.var_derived.count(predicate) > 0 ||
      state.populated_views.count(predicate) > 0) {
    return AbstractBinding::kVariable;
  }
  if (state.constants.count(predicate) > 0) return AbstractBinding::kConstant;
  return AbstractBinding::kBottom;
}

std::string GroundTuple(const Atom& atom) {
  std::string out;
  for (const Term& term : atom.terms) {
    if (!out.empty()) out += ",";
    out += term.ToString();
  }
  return out;
}

/// Applies a firing rule's head effect; idempotent.
void JoinHead(const Atom& head, ForwardState* state) {
  bool ground = true;
  for (const Term& term : head.terms) {
    if (term.is_variable()) {
      ground = false;
      break;
    }
  }
  if (ground) {
    state->constants[head.predicate].insert(GroundTuple(head));
  } else {
    state->var_derived.insert(head.predicate);
  }
}

/// One rule-closure stage: fires every fireable rule to a fixpoint
/// without activating new channels.
void CloseRules(const Program& program, ForwardState* state) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < program.rules().size(); ++r) {
      if (state->fired[r]) continue;
      const Rule& rule = program.rules()[r];
      bool fireable = true;
      for (const Atom& atom : rule.body) {
        if (!Populated(*state, atom.predicate)) {
          fireable = false;
          break;
        }
      }
      if (!fireable) continue;
      state->fired[r] = true;
      JoinHead(rule.head, state);
      changed = true;
    }
  }
}

bool ChannelFormable(const ForwardState& state, const SourceView& view,
                     const BindingPattern& pattern,
                     const planner::DomainMap& domains) {
  for (std::size_t pos : pattern.BoundPositions()) {
    const std::string domain = domains.DomainOf(view.schema().attribute(pos));
    if (!Populated(state, domain)) return false;
  }
  return true;
}

ForwardState ComputeForward(const Program& program,
                            const std::vector<SourceView>& views,
                            const planner::DomainMap& domains) {
  ForwardState state;
  state.fired.assign(program.rules().size(), false);

  const std::set<std::string> predicates = program.AllPredicates();
  for (const SourceView& view : views) {
    if (predicates.count(view.name()) > 0) state.mentioned.push_back(&view);
  }

  // Wave k: close rules over what is populated, then activate every
  // channel whose bound domains are populated — the queries the
  // evaluator could form in fetch round k.
  std::size_t wave = 0;
  while (true) {
    CloseRules(program, &state);
    std::vector<ChannelKey> newly;
    for (const SourceView* view : state.mentioned) {
      for (std::size_t t = 0; t < view->templates().size(); ++t) {
        const ChannelKey key{view->name(), t};
        if (state.active.count(key) > 0) continue;
        if (ChannelFormable(state, *view, view->templates()[t], domains)) {
          newly.push_back(key);
        }
      }
    }
    if (newly.empty()) break;
    for (const ChannelKey& key : newly) {
      state.active.emplace(key, wave);
      state.populated_views.insert(key.first);
    }
    ++wave;
  }
  return state;
}

/// Parent pointer recorded during the backward closure: how a needed
/// predicate feeds its consumer on the way to the goal.
struct ParentLink {
  WitnessStep::Link link = WitnessStep::Link::kGoal;
  std::size_t rule_index = 0;
  std::string via_view;
  std::size_t via_template = 0;
  std::string consumer;
};

bool IsGoal(const std::string& predicate, const std::string& goal) {
  return predicate == goal ||
         (predicate.size() > goal.size() + 1 &&
          predicate.compare(0, goal.size(), goal) == 0 &&
          predicate[goal.size()] == '$');
}

struct BackwardState {
  std::set<std::string> needed;
  std::map<std::string, ParentLink> parent;
};

BackwardState ComputeBackward(const Program& program,
                              const ForwardState& forward,
                              const planner::DomainMap& domains,
                              const std::string& goal) {
  BackwardState state;
  std::deque<std::string> work;
  for (const std::string& predicate : program.AllPredicates()) {
    if (IsGoal(predicate, goal)) {
      state.needed.insert(predicate);
      work.push_back(predicate);
    }
  }
  std::unordered_map<std::string, const SourceView*> view_by_name;
  for (const SourceView* view : forward.mentioned) {
    view_by_name.emplace(view->name(), view);
  }
  auto need = [&](const std::string& predicate, ParentLink link) {
    if (state.needed.count(predicate) > 0) return;
    state.needed.insert(predicate);
    state.parent.emplace(predicate, std::move(link));
    work.push_back(predicate);
  };
  while (!work.empty()) {
    const std::string q = work.front();
    work.pop_front();
    for (std::size_t r = 0; r < program.rules().size(); ++r) {
      if (!forward.fired[r]) continue;
      const Rule& rule = program.rules()[r];
      if (rule.head.predicate != q) continue;
      for (const Atom& atom : rule.body) {
        ParentLink link;
        link.link = WitnessStep::Link::kRule;
        link.rule_index = r;
        link.consumer = q;
        need(atom.predicate, std::move(link));
      }
    }
    auto it = view_by_name.find(q);
    if (it != view_by_name.end()) {
      const SourceView& view = *it->second;
      for (std::size_t t = 0; t < view.templates().size(); ++t) {
        if (forward.active.count({view.name(), t}) == 0) continue;
        for (std::size_t pos : view.templates()[t].BoundPositions()) {
          ParentLink link;
          link.link = WitnessStep::Link::kChannel;
          link.via_view = view.name();
          link.via_template = t;
          link.consumer = q;
          need(domains.DomainOf(view.schema().attribute(pos)),
               std::move(link));
        }
      }
    }
  }
  return state;
}

std::vector<std::string> SortedPopulated(const ForwardState& state) {
  std::set<std::string> populated;
  for (const auto& [predicate, tuples] : state.constants) {
    populated.insert(predicate);
  }
  populated.insert(state.var_derived.begin(), state.var_derived.end());
  populated.insert(state.populated_views.begin(),
                   state.populated_views.end());
  return {populated.begin(), populated.end()};
}

std::vector<WitnessStep> BuildWitness(const BackwardState& backward,
                                      const std::string& start) {
  std::vector<WitnessStep> steps;
  std::string cur = start;
  while (true) {
    auto it = backward.parent.find(cur);
    if (it == backward.parent.end()) {
      WitnessStep step;
      step.predicate = cur;
      step.link = WitnessStep::Link::kGoal;
      steps.push_back(std::move(step));
      return steps;
    }
    WitnessStep step;
    step.predicate = cur;
    step.link = it->second.link;
    step.rule_index = it->second.rule_index;
    step.via_view = it->second.via_view;
    step.via_template = it->second.via_template;
    steps.push_back(std::move(step));
    cur = it->second.consumer;
  }
}

std::uint64_t SaturatingMul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a + b;
}

std::string ChannelLabel(const ChannelVerdict& verdict) {
  return "channel " + verdict.view + "[" +
         std::to_string(verdict.template_index) + "] '" + verdict.adornment +
         "'";
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const char* AbstractBindingToString(AbstractBinding binding) {
  switch (binding) {
    case AbstractBinding::kBottom:
      return "bottom";
    case AbstractBinding::kConstant:
      return "constant";
    case AbstractBinding::kVariable:
      return "variable";
  }
  return "bottom";
}

std::vector<std::pair<std::string, std::size_t>>
BindingFlowResult::PrunedChannels() const {
  std::vector<std::pair<std::string, std::size_t>> pruned;
  for (const ChannelVerdict& verdict : channels) {
    if (!verdict.relevant) {
      pruned.emplace_back(verdict.view, verdict.template_index);
    }
  }
  return pruned;
}

BindingFlowResult AnalyzeBindingFlow(const Program& program,
                                     const std::vector<SourceView>& views,
                                     const planner::DomainMap& domains,
                                     const BindingFlowOptions& options) {
  BindingFlowResult result;
  const ForwardState forward = ComputeForward(program, views, domains);
  const BackwardState backward =
      ComputeBackward(program, forward, domains, options.goal_predicate);

  result.needed_predicates = backward.needed;
  for (const std::string& predicate : SortedPopulated(forward)) {
    result.predicate_values[predicate] = ValueOf(forward, predicate);
  }

  const std::vector<std::string> populated = SortedPopulated(forward);
  const std::vector<std::string> needed_sorted(backward.needed.begin(),
                                               backward.needed.end());

  for (const SourceView* view : forward.mentioned) {
    for (std::size_t t = 0; t < view->templates().size(); ++t) {
      const BindingPattern& pattern = view->templates()[t];
      ChannelVerdict verdict;
      verdict.view = view->name();
      verdict.template_index = t;
      verdict.adornment = pattern.ToString();

      auto active = forward.active.find({view->name(), t});
      if (active == forward.active.end()) {
        // Never formable: certify with the forward-closed populated set
        // and the first missing bound domain.
        verdict.certificate.kind = PruningCertificate::Kind::kUnreachability;
        verdict.certificate.closed_set = populated;
        for (std::size_t pos : pattern.BoundPositions()) {
          const std::string domain =
              domains.DomainOf(view->schema().attribute(pos));
          if (!Populated(forward, domain)) {
            verdict.certificate.missing_domain = domain;
            break;
          }
        }
        result.channels.push_back(std::move(verdict));
        continue;
      }

      verdict.reachable = true;
      verdict.frontier_depth = active->second;
      verdict.reachable_pattern.reserve(view->schema().arity());
      bool all_constant = true;
      std::uint64_t bound = 1;
      for (std::size_t pos = 0; pos < view->schema().arity(); ++pos) {
        if (!pattern.IsBound(pos)) {
          verdict.reachable_pattern += 'f';
          continue;
        }
        const std::string domain =
            domains.DomainOf(view->schema().attribute(pos));
        const AbstractBinding value = ValueOf(forward, domain);
        if (value == AbstractBinding::kConstant) {
          verdict.reachable_pattern += 'c';
          bound = SaturatingMul(bound, forward.constants.at(domain).size());
        } else {
          verdict.reachable_pattern += 'v';
          all_constant = false;
        }
      }
      verdict.fetch_bound_finite = all_constant;
      if (all_constant) verdict.fetch_bound = bound;

      if (backward.needed.count(view->name()) > 0) {
        verdict.relevant = true;
        verdict.certificate.kind = PruningCertificate::Kind::kWitness;
        verdict.certificate.steps = BuildWitness(backward, view->name());
      } else {
        verdict.certificate.kind = PruningCertificate::Kind::kIrrelevance;
        verdict.certificate.closed_set = needed_sorted;
      }
      result.channels.push_back(std::move(verdict));
    }
  }

  // Per-source aggregation over reachable channels.
  for (const SourceView* view : forward.mentioned) {
    SourceBounds bounds;
    bounds.view = view->name();
    bounds.frontier_depth = ChannelVerdict::kNoDepth;
    bounds.fetch_bound_finite = true;
    bool any = false;
    for (const ChannelVerdict& verdict : result.channels) {
      if (verdict.view != view->name() || !verdict.reachable) continue;
      any = true;
      bounds.frontier_depth =
          std::min(bounds.frontier_depth, verdict.frontier_depth);
      if (verdict.fetch_bound_finite) {
        bounds.fetch_bound =
            SaturatingAdd(bounds.fetch_bound, verdict.fetch_bound);
      } else {
        bounds.fetch_bound_finite = false;
      }
    }
    if (any) result.sources.push_back(std::move(bounds));
  }
  return result;
}

void AppendBindingFlowDiagnostics(const Program& program,
                                  const BindingFlowResult& result,
                                  const datalog::ProgramSourceMap* source_map,
                                  DiagnosticBag* bag) {
  // Anchor a channel diagnostic at the first body atom mentioning its
  // view (the alpha rule in builder programs).
  auto channel_location = [&](const std::string& view) {
    Location location;
    for (std::size_t r = 0; r < program.rules().size(); ++r) {
      const Rule& rule = program.rules()[r];
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (rule.body[i].predicate != view) continue;
        location.rule = static_cast<int>(r);
        location.atom = static_cast<int>(i);
        location.context = rule.ToString();
        if (source_map != nullptr && r < source_map->rules.size() &&
            i < source_map->rules[r].body.size()) {
          location.line = source_map->rules[r].body[i].line;
          location.column = source_map->rules[r].body[i].column;
        }
        return location;
      }
    }
    return location;
  };

  for (const ChannelVerdict& verdict : result.channels) {
    if (!verdict.reachable) {
      Diagnostic& d = bag->Report(
          Code::kUnreachableChannel,
          ChannelLabel(verdict) + " is unreachable: bound domain '" +
              verdict.certificate.missing_domain +
              "' is never populated under the query's input bindings",
          channel_location(verdict.view));
      d.notes.push_back(
          "refutation: forward-closed populated set of " +
          std::to_string(verdict.certificate.closed_set.size()) +
          " predicate(s) excludes '" + verdict.certificate.missing_domain +
          "'");
    } else if (!verdict.relevant) {
      Diagnostic& d = bag->Report(
          Code::kStaticallyIrrelevantChannel,
          ChannelLabel(verdict) + " is statically irrelevant: reachable " +
              "pattern '" + verdict.reachable_pattern +
              "' can never feed the goal",
          channel_location(verdict.view));
      d.notes.push_back(
          "refutation: backward-closed needed set of " +
          std::to_string(verdict.certificate.closed_set.size()) +
          " predicate(s) excludes '" + verdict.view + "'");
    }
  }
  for (const SourceBounds& bounds : result.sources) {
    std::string message = "source " + bounds.view + ": frontier depth " +
                          std::to_string(bounds.frontier_depth);
    if (bounds.fetch_bound_finite) {
      message += ", at most " + std::to_string(bounds.fetch_bound) +
                 " source quer" + (bounds.fetch_bound == 1 ? "y" : "ies");
    } else {
      message += ", unbounded source queries";
    }
    bag->Report(Code::kStaticBounds, std::move(message),
                channel_location(bounds.view));
  }
}

Status VerifyCertificate(const Program& program,
                         const std::vector<SourceView>& views,
                         const planner::DomainMap& domains,
                         const BindingFlowOptions& options,
                         const ChannelVerdict& verdict) {
  const ForwardState forward = ComputeForward(program, views, domains);
  const PruningCertificate& certificate = verdict.certificate;

  std::unordered_map<std::string, const SourceView*> view_by_name;
  for (const SourceView* view : forward.mentioned) {
    view_by_name.emplace(view->name(), view);
  }
  auto find_view = [&](const std::string& name) -> const SourceView* {
    auto it = view_by_name.find(name);
    return it == view_by_name.end() ? nullptr : it->second;
  };

  switch (certificate.kind) {
    case PruningCertificate::Kind::kNone:
      return Status::InvalidArgument("certificate missing");

    case PruningCertificate::Kind::kWitness: {
      if (certificate.steps.empty()) {
        return Status::InvalidArgument("witness: empty chain");
      }
      if (certificate.steps.front().predicate != verdict.view) {
        return Status::InvalidArgument(
            "witness: chain does not start at the channel's view");
      }
      if (forward.active.count({verdict.view, verdict.template_index}) == 0) {
        return Status::InvalidArgument(
            "witness: the certified channel is not reachable");
      }
      for (std::size_t i = 0; i + 1 < certificate.steps.size(); ++i) {
        const WitnessStep& step = certificate.steps[i];
        const std::string& next = certificate.steps[i + 1].predicate;
        if (step.link == WitnessStep::Link::kRule) {
          if (step.rule_index >= program.rules().size()) {
            return Status::InvalidArgument("witness: rule index out of range");
          }
          const Rule& rule = program.rules()[step.rule_index];
          if (!forward.fired[step.rule_index]) {
            return Status::InvalidArgument(
                "witness: rule " + std::to_string(step.rule_index) +
                " can never fire");
          }
          if (rule.head.predicate != next) {
            return Status::InvalidArgument(
                "witness: rule " + std::to_string(step.rule_index) +
                " does not derive '" + next + "'");
          }
          bool in_body = false;
          for (const Atom& atom : rule.body) {
            if (atom.predicate == step.predicate) {
              in_body = true;
              break;
            }
          }
          if (!in_body) {
            return Status::InvalidArgument(
                "witness: '" + step.predicate + "' not in body of rule " +
                std::to_string(step.rule_index));
          }
        } else if (step.link == WitnessStep::Link::kChannel) {
          const SourceView* view = find_view(step.via_view);
          if (view == nullptr ||
              step.via_template >= view->templates().size()) {
            return Status::InvalidArgument("witness: unknown channel link");
          }
          if (step.via_view != next) {
            return Status::InvalidArgument(
                "witness: channel link does not feed '" + next + "'");
          }
          if (forward.active.count({step.via_view, step.via_template}) == 0) {
            return Status::InvalidArgument(
                "witness: channel " + step.via_view + "[" +
                std::to_string(step.via_template) + "] is not reachable");
          }
          bool feeds = false;
          for (std::size_t pos :
               view->templates()[step.via_template].BoundPositions()) {
            if (domains.DomainOf(view->schema().attribute(pos)) ==
                step.predicate) {
              feeds = true;
              break;
            }
          }
          if (!feeds) {
            return Status::InvalidArgument(
                "witness: '" + step.predicate +
                "' is not a bound domain of the channel link");
          }
        } else {
          return Status::InvalidArgument(
              "witness: goal link before end of chain");
        }
      }
      const WitnessStep& last = certificate.steps.back();
      if (last.link != WitnessStep::Link::kGoal ||
          !IsGoal(last.predicate, options.goal_predicate)) {
        return Status::InvalidArgument(
            "witness: chain does not terminate at the goal");
      }
      return Status::OK();
    }

    case PruningCertificate::Kind::kIrrelevance: {
      const std::set<std::string> closed(certificate.closed_set.begin(),
                                         certificate.closed_set.end());
      if (closed.count(verdict.view) > 0) {
        return Status::InvalidArgument(
            "irrelevance: closed set contains the channel's view");
      }
      for (const std::string& predicate : program.AllPredicates()) {
        if (IsGoal(predicate, options.goal_predicate) &&
            closed.count(predicate) == 0) {
          return Status::InvalidArgument(
              "irrelevance: goal '" + predicate + "' missing from closed set");
        }
      }
      for (std::size_t r = 0; r < program.rules().size(); ++r) {
        if (!forward.fired[r]) continue;
        const Rule& rule = program.rules()[r];
        if (closed.count(rule.head.predicate) == 0) continue;
        for (const Atom& atom : rule.body) {
          if (closed.count(atom.predicate) == 0) {
            return Status::InvalidArgument(
                "irrelevance: not closed under rule " + std::to_string(r) +
                " ('" + atom.predicate + "' missing)");
          }
        }
      }
      for (const SourceView* view : forward.mentioned) {
        if (closed.count(view->name()) == 0) continue;
        for (std::size_t t = 0; t < view->templates().size(); ++t) {
          if (forward.active.count({view->name(), t}) == 0) continue;
          for (std::size_t pos : view->templates()[t].BoundPositions()) {
            const std::string domain =
                domains.DomainOf(view->schema().attribute(pos));
            if (closed.count(domain) == 0) {
              return Status::InvalidArgument(
                  "irrelevance: not closed under channel " + view->name() +
                  "[" + std::to_string(t) + "] ('" + domain + "' missing)");
            }
          }
        }
      }
      return Status::OK();
    }

    case PruningCertificate::Kind::kUnreachability: {
      const std::set<std::string> closed(certificate.closed_set.begin(),
                                         certificate.closed_set.end());
      const SourceView* view = find_view(verdict.view);
      if (view == nullptr ||
          verdict.template_index >= view->templates().size()) {
        return Status::InvalidArgument("unreachability: unknown channel");
      }
      if (closed.count(certificate.missing_domain) > 0) {
        return Status::InvalidArgument(
            "unreachability: '" + certificate.missing_domain +
            "' is in the closed set");
      }
      bool is_bound_domain = false;
      for (std::size_t pos :
           view->templates()[verdict.template_index].BoundPositions()) {
        if (domains.DomainOf(view->schema().attribute(pos)) ==
            certificate.missing_domain) {
          is_bound_domain = true;
          break;
        }
      }
      if (!is_bound_domain) {
        return Status::InvalidArgument(
            "unreachability: '" + certificate.missing_domain +
            "' is not a bound domain of the channel");
      }
      for (std::size_t r = 0; r < program.rules().size(); ++r) {
        const Rule& rule = program.rules()[r];
        bool fireable = true;
        for (const Atom& atom : rule.body) {
          if (closed.count(atom.predicate) == 0) {
            fireable = false;
            break;
          }
        }
        if (fireable && closed.count(rule.head.predicate) == 0) {
          return Status::InvalidArgument(
              "unreachability: not closed under rule " + std::to_string(r));
        }
      }
      for (const SourceView* mentioned : forward.mentioned) {
        for (std::size_t t = 0; t < mentioned->templates().size(); ++t) {
          bool formable = true;
          for (std::size_t pos :
               mentioned->templates()[t].BoundPositions()) {
            if (closed.count(domains.DomainOf(
                    mentioned->schema().attribute(pos))) == 0) {
              formable = false;
              break;
            }
          }
          if (formable && closed.count(mentioned->name()) == 0) {
            return Status::InvalidArgument(
                "unreachability: not closed under channel " +
                mentioned->name() + "[" + std::to_string(t) + "]");
          }
        }
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown certificate kind");
}

namespace {

std::string WitnessChainText(const std::vector<WitnessStep>& steps) {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const WitnessStep& step = steps[i];
    out += step.predicate;
    if (i + 1 == steps.size()) break;
    if (step.link == WitnessStep::Link::kRule) {
      out += " -(rule " + std::to_string(step.rule_index) + ")-> ";
    } else {
      out += " -(channel " + step.via_view + "[" +
             std::to_string(step.via_template) + "])-> ";
    }
  }
  return out;
}

}  // namespace

std::string RenderBindingFlowText(const BindingFlowResult& result) {
  std::size_t relevant = 0, irrelevant = 0, unreachable = 0;
  for (const ChannelVerdict& verdict : result.channels) {
    if (!verdict.reachable) {
      ++unreachable;
    } else if (!verdict.relevant) {
      ++irrelevant;
    } else {
      ++relevant;
    }
  }
  std::ostringstream out;
  out << "binding flow: " << result.channels.size() << " channel(s), "
      << relevant << " relevant, " << irrelevant << " irrelevant, "
      << unreachable << " unreachable\n";
  for (const ChannelVerdict& verdict : result.channels) {
    out << ChannelLabel(verdict) << ": ";
    if (!verdict.reachable) {
      out << "unreachable\n  refutation: bound domain '"
          << verdict.certificate.missing_domain
          << "' is never populated; populated = {";
      for (std::size_t i = 0; i < verdict.certificate.closed_set.size();
           ++i) {
        if (i > 0) out << ", ";
        out << verdict.certificate.closed_set[i];
      }
      out << "}\n";
      continue;
    }
    out << "pattern=" << verdict.reachable_pattern << " depth="
        << verdict.frontier_depth;
    if (verdict.fetch_bound_finite) {
      out << " fetches<=" << verdict.fetch_bound;
    } else {
      out << " fetches=unbounded";
    }
    if (verdict.relevant) {
      out << " relevant\n  witness: "
          << WitnessChainText(verdict.certificate.steps) << "\n";
    } else {
      out << " irrelevant\n  refutation: needed = {";
      for (std::size_t i = 0; i < verdict.certificate.closed_set.size();
           ++i) {
        if (i > 0) out << ", ";
        out << verdict.certificate.closed_set[i];
      }
      out << "}; '" << verdict.view << "' is outside it\n";
    }
  }
  for (const SourceBounds& bounds : result.sources) {
    out << "source " << bounds.view << ": frontier depth "
        << bounds.frontier_depth << ", ";
    if (bounds.fetch_bound_finite) {
      out << "fetches<=" << bounds.fetch_bound << "\n";
    } else {
      out << "fetches=unbounded\n";
    }
  }
  return out.str();
}

std::string RenderBindingFlowJson(const BindingFlowResult& result) {
  std::ostringstream out;
  out << "{\"channels\":[";
  bool first = true;
  for (const ChannelVerdict& verdict : result.channels) {
    if (!first) out << ",";
    first = false;
    out << "{\"view\":\"" << JsonEscape(verdict.view) << "\""
        << ",\"template\":" << verdict.template_index << ",\"adornment\":\""
        << verdict.adornment << "\"" << ",\"reachable\":"
        << (verdict.reachable ? "true" : "false") << ",\"relevant\":"
        << (verdict.relevant ? "true" : "false");
    if (verdict.reachable) {
      out << ",\"pattern\":\"" << verdict.reachable_pattern << "\""
          << ",\"frontier_depth\":" << verdict.frontier_depth;
      if (verdict.fetch_bound_finite) {
        out << ",\"fetch_bound\":" << verdict.fetch_bound;
      }
    }
    out << ",\"certificate\":{";
    switch (verdict.certificate.kind) {
      case PruningCertificate::Kind::kNone:
        out << "\"kind\":\"none\"";
        break;
      case PruningCertificate::Kind::kWitness: {
        out << "\"kind\":\"witness\",\"steps\":[";
        bool first_step = true;
        for (const WitnessStep& step : verdict.certificate.steps) {
          if (!first_step) out << ",";
          first_step = false;
          out << "{\"predicate\":\"" << JsonEscape(step.predicate) << "\"";
          switch (step.link) {
            case WitnessStep::Link::kRule:
              out << ",\"link\":\"rule\",\"rule\":" << step.rule_index;
              break;
            case WitnessStep::Link::kChannel:
              out << ",\"link\":\"channel\",\"view\":\""
                  << JsonEscape(step.via_view) << "\",\"template\":"
                  << step.via_template;
              break;
            case WitnessStep::Link::kGoal:
              out << ",\"link\":\"goal\"";
              break;
          }
          out << "}";
        }
        out << "]";
        break;
      }
      case PruningCertificate::Kind::kIrrelevance:
      case PruningCertificate::Kind::kUnreachability: {
        out << "\"kind\":\""
            << (verdict.certificate.kind ==
                        PruningCertificate::Kind::kIrrelevance
                    ? "irrelevance"
                    : "unreachability")
            << "\",\"closed_set\":[";
        bool first_predicate = true;
        for (const std::string& predicate : verdict.certificate.closed_set) {
          if (!first_predicate) out << ",";
          first_predicate = false;
          out << "\"" << JsonEscape(predicate) << "\"";
        }
        out << "]";
        if (!verdict.certificate.missing_domain.empty()) {
          out << ",\"missing_domain\":\""
              << JsonEscape(verdict.certificate.missing_domain) << "\"";
        }
        break;
      }
    }
    out << "}}";
  }
  out << "],\"sources\":[";
  first = true;
  for (const SourceBounds& bounds : result.sources) {
    if (!first) out << ",";
    first = false;
    out << "{\"view\":\"" << JsonEscape(bounds.view) << "\""
        << ",\"frontier_depth\":" << bounds.frontier_depth;
    if (bounds.fetch_bound_finite) {
      out << ",\"fetch_bound\":" << bounds.fetch_bound;
    }
    out << "}";
  }
  out << "],\"needed\":[";
  first = true;
  for (const std::string& predicate : result.needed_predicates) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(predicate) << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace limcap::analysis
