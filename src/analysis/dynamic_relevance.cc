#include "analysis/dynamic_relevance.h"

#include <algorithm>
#include <map>
#include <utility>

namespace limcap::analysis {

namespace {

using datalog::Atom;
using datalog::Rule;
using datalog::Term;

/// The values the skipped combination forces on one body atom's
/// variables. `vacuous` means the atom itself contradicts the
/// combination (constant mismatch, or one variable forced two ways), so
/// no withheld fact can ever match it.
struct ComboBinding {
  bool vacuous = false;
  std::map<std::string, ValueId> vars;
};

ComboBinding BindCombo(const Atom& atom, const DynamicChannelInfo& channel,
                       const std::vector<ValueId>& combo,
                       const ValueDictionary& dict) {
  ComboBinding binding;
  for (std::size_t i = 0; i < channel.bound_positions.size(); ++i) {
    const std::size_t pos = channel.bound_positions[i];
    if (pos >= atom.terms.size()) {
      binding.vacuous = true;  // arity mismatch: nothing can match
      return binding;
    }
    const Term& term = atom.terms[pos];
    if (term.is_constant()) {
      ValueId id;
      if (!dict.Lookup(term.constant(), &id) || id != combo[i]) {
        binding.vacuous = true;
        return binding;
      }
      continue;  // constant equals the combo value: no constraint
    }
    auto [it, inserted] = binding.vars.emplace(term.var(), combo[i]);
    if (!inserted && it->second != combo[i]) {
      binding.vacuous = true;
      return binding;
    }
  }
  return binding;
}

}  // namespace

std::string SkipCertificate::ToString() const {
  std::string out = "skip " + view + "[" + std::to_string(template_index) +
                    "](";
  for (std::size_t i = 0; i < combo.size(); ++i) {
    if (i > 0) out += ", ";
    out += combo[i].ToString();
  }
  out += "): " + std::to_string(evidence.size()) + " occurrence";
  if (evidence.size() != 1) out += "s";
  out += " blocked";
  std::size_t vacuous = 0;
  for (const BlockingEvidence& e : evidence) {
    if (e.vacuous) ++vacuous;
  }
  if (vacuous > 0) out += " (" + std::to_string(vacuous) + " vacuous)";
  if (!frozen.empty()) {
    out += "; frozen:";
    for (const std::string& name : frozen) out += " " + name;
  }
  if (!tainted_domains.empty()) {
    out += "; withheld domains:";
    for (const std::string& name : tainted_domains) out += " " + name;
  }
  return out;
}

DynamicRelevanceChecker::DynamicRelevanceChecker(
    const datalog::Program* program, std::vector<DynamicChannelInfo> channels,
    const datalog::FactStore* store, DynamicRelevanceOptions options)
    : program_(program),
      channels_(std::move(channels)),
      store_(store),
      options_(std::move(options)) {}

void DynamicRelevanceChecker::BeginRound(
    const std::vector<bool>& has_pending) {
  round_begun_ = true;
  std::set<std::string> unfrozen;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      const DynamicChannelInfo& channel = channels_[i];
      if (!channel.fetchable || unfrozen.count(channel.view) > 0) continue;
      bool live = i < has_pending.size() && has_pending[i];
      for (std::size_t j = 0; !live && j < channel.bound_positions.size();
           ++j) {
        live = unfrozen.count(channel.domains[channel.bound_positions[j]]) > 0;
      }
      if (live) {
        unfrozen.insert(channel.view);
        changed = true;
      }
    }
    for (const Rule& rule : program_->rules()) {
      if (rule.is_fact() || unfrozen.count(rule.head.predicate) > 0) continue;
      for (const Atom& atom : rule.body) {
        if (unfrozen.count(atom.predicate) > 0) {
          unfrozen.insert(rule.head.predicate);
          changed = true;
          break;
        }
      }
    }
  }
  frozen_.clear();
  std::set<std::string> mentioned = program_->AllPredicates();
  for (const DynamicChannelInfo& channel : channels_) {
    mentioned.insert(channel.view);
    mentioned.insert(channel.domains.begin(), channel.domains.end());
  }
  for (const std::string& name : mentioned) {
    if (unfrozen.count(name) == 0) frozen_.insert(name);
  }
}

bool DynamicRelevanceChecker::HasMatchingFact(
    const std::string& predicate, const std::vector<uint32_t>& columns,
    const std::vector<ValueId>& values) const {
  const datalog::PredicateId pred = store_->FindPredicate(predicate);
  if (pred == datalog::kNoPredicate) return false;
  for (datalog::RowView row : store_->Facts(pred)) {
    bool match = true;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] >= row.size() || row[columns[i]] != values[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

namespace {

/// Internals shared by TrySkip and VerifySkipCertificate, operating on
/// the checker's public surface so the verifier stays independent of how
/// TrySkip found its evidence.
struct TaintAnalysis {
  const DynamicRelevanceChecker& checker;
  const datalog::Program& program;
  const DynamicRelevanceOptions& options;

  bool IsGoal(const std::string& predicate) const {
    if (predicate == options.goal_predicate) return true;
    const std::string tagged = options.goal_predicate + "$";
    return predicate.compare(0, tagged.size(), tagged) == 0;
  }

  bool IsDomainPred(const std::string& predicate) const {
    for (const DynamicChannelInfo& channel : checker.channels()) {
      for (const std::string& domain : channel.domains) {
        if (domain == predicate) return true;
      }
    }
    return false;
  }

  const DynamicChannelInfo* ChannelOf(const std::string& view,
                                      std::size_t template_index) const {
    for (const DynamicChannelInfo& channel : checker.channels()) {
      if (channel.view == view && channel.template_index == template_index) {
        return &channel;
      }
    }
    return nullptr;
  }

  /// Schema positions of `alpha`'s view that can carry withheld values:
  /// bound in some template with a currently-tainted domain.
  std::vector<std::size_t> JunkPositions(
      const std::string& view, const std::set<std::string>& tainted) const {
    std::vector<std::size_t> positions;
    for (const DynamicChannelInfo& channel : checker.channels()) {
      if (channel.view != view) continue;
      for (uint32_t pos : channel.bound_positions) {
        if (tainted.count(channel.domains[pos]) > 0 &&
            std::find(positions.begin(), positions.end(), pos) ==
                positions.end()) {
          positions.push_back(pos);
        }
      }
    }
    return positions;
  }

  /// Is `view + alpha_suffix` the name of some channel's alpha?
  const std::string* ViewOfAlpha(const std::string& predicate) const {
    const std::string& suffix = options.alpha_suffix;
    if (predicate.size() <= suffix.size() ||
        predicate.compare(predicate.size() - suffix.size(), suffix.size(),
                          suffix) != 0) {
      return nullptr;
    }
    const std::string view =
        predicate.substr(0, predicate.size() - suffix.size());
    for (const DynamicChannelInfo& channel : checker.channels()) {
      if (channel.view == view) return &channel.view;
    }
    return nullptr;
  }

  /// Can the occurrence `atom` fire on values the skip withheld? Junk
  /// variables: an alpha occurrence can carry withheld values only at
  /// positions bound from tainted domains (a withheld fact is new
  /// because its query used a withheld binding); any other tainted
  /// predicate is taken to be junk-feedable everywhere. A junk variable
  /// shared with an untainted co-atom is pinned: by attribute-global
  /// naming, the clean atom only holds cleanly derived values, so a
  /// withheld value at that position can never satisfy the join. The
  /// withheld value may sit at ANY junk position, so the firing is
  /// blocked only when EVERY junk variable is pinned; with no junk
  /// variables at all, no withheld value can enter through this
  /// occurrence.
  bool Unguarded(const Atom& atom, const std::vector<Atom>& body,
                 std::size_t atom_index,
                 const std::set<std::string>& tainted) const {
    std::vector<std::string> junk_vars;
    const std::string* alpha_view = ViewOfAlpha(atom.predicate);
    if (alpha_view != nullptr) {
      for (std::size_t pos : JunkPositions(*alpha_view, tainted)) {
        if (pos < atom.terms.size() && atom.terms[pos].is_variable()) {
          junk_vars.push_back(atom.terms[pos].var());
        }
      }
    } else {
      for (const Term& term : atom.terms) {
        if (term.is_variable()) junk_vars.push_back(term.var());
      }
    }
    for (const std::string& var : junk_vars) {
      bool guarded = false;
      for (std::size_t b = 0; b < body.size() && !guarded; ++b) {
        if (b == atom_index || tainted.count(body[b].predicate) > 0) continue;
        for (const Term& term : body[b].terms) {
          if (term.is_variable() && term.var() == var) {
            guarded = true;
            break;
          }
        }
      }
      if (!guarded) return true;
    }
    return false;
  }

  /// Seeds the taint set from the rules that consume the skipped view's
  /// raw EDB predicate, then closes it forward through fetchable
  /// channels and guarded rule firings. False = structural refusal (the
  /// EDB feeds a rule shape outside the built-program family).
  bool Compute(const DynamicChannelInfo& channel,
               const std::vector<ValueId>& combo,
               std::set<std::string>* tainted) const {
    const std::string alpha = channel.view + options.alpha_suffix;
    const ValueDictionary& dict = store_dict;
    for (const Rule& rule : program.rules()) {
      if (rule.is_fact()) continue;
      for (const Atom& atom : rule.body) {
        if (atom.predicate != channel.view) continue;
        if (rule.head.predicate == alpha) continue;
        if (rule.head.arity() != 1) return false;
        if (BindCombo(atom, channel, combo, dict).vacuous) continue;
        bool clean = false;
        const Term& head_term = rule.head.terms[0];
        if (head_term.is_variable()) {
          for (std::size_t i = 0; i < channel.bound_positions.size(); ++i) {
            const std::size_t pos = channel.bound_positions[i];
            const Term& term = atom.terms[pos];
            if (term.is_variable() && term.var() == head_term.var() &&
                channel.domains[pos] == rule.head.predicate) {
              // The head value is the queried binding itself, which the
              // evaluator drew from this very domain: nothing new.
              clean = true;
              break;
            }
          }
        }
        if (!clean) tainted->insert(rule.head.predicate);
      }
    }

    bool changed = true;
    while (changed) {
      changed = false;
      for (const DynamicChannelInfo& other : checker.channels()) {
        if (!other.fetchable) continue;
        bool reached = false;
        for (uint32_t pos : other.bound_positions) {
          if (tainted->count(other.domains[pos]) > 0) {
            reached = true;
            break;
          }
        }
        if (!reached) continue;
        if (tainted->insert(other.view).second) changed = true;
        for (std::size_t pos = 0; pos < other.domains.size(); ++pos) {
          const bool clean_bound =
              std::find(other.bound_positions.begin(),
                        other.bound_positions.end(),
                        pos) != other.bound_positions.end() &&
              tainted->count(other.domains[pos]) == 0;
          if (!clean_bound && tainted->insert(other.domains[pos]).second) {
            changed = true;
          }
        }
      }
      for (const Rule& rule : program.rules()) {
        if (rule.is_fact() || tainted->count(rule.head.predicate) > 0) {
          continue;
        }
        for (std::size_t a = 0; a < rule.body.size(); ++a) {
          if (tainted->count(rule.body[a].predicate) == 0) continue;
          if (Unguarded(rule.body[a], rule.body, a, *tainted)) {
            tainted->insert(rule.head.predicate);
            changed = true;
            break;
          }
        }
      }
    }
    for (const std::string& name : *tainted) {
      if (IsGoal(name)) return false;
    }
    return true;
  }

  const ValueDictionary& store_dict;
};

}  // namespace

std::optional<SkipCertificate> DynamicRelevanceChecker::TrySkip(
    std::size_t channel_index, const std::vector<ValueId>& combo) {
  if (!round_begun_ || channel_index >= channels_.size()) return std::nullopt;
  const DynamicChannelInfo& channel = channels_[channel_index];
  if (combo.size() != channel.bound_positions.size()) return std::nullopt;
  const std::string alpha = channel.view + options_.alpha_suffix;
  const ValueDictionary& dict = store_->dict();

  SkipCertificate certificate;
  certificate.view = channel.view;
  certificate.template_index = channel.template_index;
  for (ValueId id : combo) certificate.combo.push_back(dict.Get(id));
  std::set<std::string> frozen_used;

  // Level-one blocking: every body occurrence of the alpha predicate
  // must be unable to consume the withheld facts.
  const std::vector<Rule>& rules = program_->rules();
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& rule = rules[ri];
    for (std::size_t ai = 0; ai < rule.body.size(); ++ai) {
      const Atom& atom = rule.body[ai];
      if (atom.predicate != alpha) continue;
      if (atom.terms.size() != channel.attributes.size()) return std::nullopt;
      SkipCertificate::BlockingEvidence evidence;
      evidence.rule_index = ri;
      evidence.atom_index = ai;
      const ComboBinding binding = BindCombo(atom, channel, combo, dict);
      if (binding.vacuous) {
        evidence.vacuous = true;
        certificate.evidence.push_back(evidence);
        continue;
      }
      bool blocked = false;
      for (std::size_t bi = 0; bi < rule.body.size() && !blocked; ++bi) {
        if (bi == ai || !IsFrozen(rule.body[bi].predicate)) continue;
        const Atom& blocker = rule.body[bi];
        std::vector<uint32_t> columns;
        std::vector<ValueId> values;
        bool impossible = false;
        for (std::size_t t = 0; t < blocker.terms.size(); ++t) {
          const Term& term = blocker.terms[t];
          ValueId id;
          if (term.is_constant()) {
            if (!dict.Lookup(term.constant(), &id)) {
              // The constant was never interned, so no stored fact can
              // carry it: the frozen atom can never match at all.
              impossible = true;
              break;
            }
          } else {
            auto it = binding.vars.find(term.var());
            if (it == binding.vars.end()) continue;
            id = it->second;
          }
          columns.push_back(static_cast<uint32_t>(t));
          values.push_back(id);
        }
        if (impossible || !HasMatchingFact(blocker.predicate, columns,
                                           values)) {
          blocked = true;
          evidence.blocking_atom_index = bi;
          evidence.blocking_predicate = blocker.predicate;
          frozen_used.insert(blocker.predicate);
        }
      }
      if (!blocked) return std::nullopt;
      certificate.evidence.push_back(evidence);
    }
  }

  // Goal isolation: the withheld bindings' forward closure must miss
  // the goal.
  std::set<std::string> tainted;
  TaintAnalysis taint{*this, *program_, options_, dict};
  if (!taint.Compute(channel, combo, &tainted)) return std::nullopt;

  certificate.frozen.assign(frozen_used.begin(), frozen_used.end());
  for (const std::string& name : tainted) {
    if (taint.IsDomainPred(name)) certificate.tainted_domains.push_back(name);
  }
  return certificate;
}

Status VerifySkipCertificate(const DynamicRelevanceChecker& checker,
                             const SkipCertificate& certificate) {
  if (!checker.round_begun_) {
    return Status::InvalidArgument("checker has no active round");
  }
  const DynamicChannelInfo* channel = nullptr;
  for (const DynamicChannelInfo& candidate : checker.channels_) {
    if (candidate.view == certificate.view &&
        candidate.template_index == certificate.template_index) {
      channel = &candidate;
      break;
    }
  }
  if (channel == nullptr) {
    return Status::InvalidArgument("certificate names an unknown channel: " +
                                   certificate.view);
  }
  if (certificate.combo.size() != channel->bound_positions.size()) {
    return Status::InvalidArgument("combo arity mismatch for " +
                                   certificate.view);
  }
  const ValueDictionary& dict = checker.store_->dict();
  std::vector<ValueId> combo;
  for (const Value& value : certificate.combo) {
    ValueId id;
    if (!dict.Lookup(value, &id)) {
      return Status::InvalidArgument("combo value never observed: " +
                                     value.ToString());
    }
    combo.push_back(id);
  }
  const std::string alpha = channel->view + checker.options_.alpha_suffix;

  // The evidence must cover every alpha occurrence, exactly.
  const std::vector<Rule>& rules = checker.program_->rules();
  std::set<std::pair<std::size_t, std::size_t>> expected;
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    for (std::size_t ai = 0; ai < rules[ri].body.size(); ++ai) {
      if (rules[ri].body[ai].predicate == alpha) expected.insert({ri, ai});
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> covered;
  for (const SkipCertificate::BlockingEvidence& evidence :
       certificate.evidence) {
    covered.insert({evidence.rule_index, evidence.atom_index});
  }
  if (covered != expected) {
    return Status::InvalidArgument(
        "evidence does not cover the alpha occurrences of " + alpha);
  }

  const std::set<std::string> frozen_claimed(certificate.frozen.begin(),
                                             certificate.frozen.end());
  for (const SkipCertificate::BlockingEvidence& evidence :
       certificate.evidence) {
    const Rule& rule = rules[evidence.rule_index];
    const Atom& atom = rule.body[evidence.atom_index];
    const ComboBinding binding = BindCombo(atom, *channel, combo, dict);
    if (evidence.vacuous) {
      if (!binding.vacuous) {
        return Status::InvalidArgument(
            "occurrence claimed vacuous can match the combination (rule " +
            std::to_string(evidence.rule_index) + ")");
      }
      continue;
    }
    if (binding.vacuous) continue;  // stronger than claimed; still blocked
    if (evidence.blocking_atom_index >= rule.body.size() ||
        evidence.blocking_atom_index == evidence.atom_index) {
      return Status::InvalidArgument("blocking atom index out of range");
    }
    const Atom& blocker = rule.body[evidence.blocking_atom_index];
    if (blocker.predicate != evidence.blocking_predicate) {
      return Status::InvalidArgument("blocking predicate mismatch: " +
                                     evidence.blocking_predicate);
    }
    if (!checker.IsFrozen(blocker.predicate)) {
      return Status::InvalidArgument("blocking predicate is not frozen: " +
                                     blocker.predicate);
    }
    if (frozen_claimed.count(blocker.predicate) == 0) {
      return Status::InvalidArgument(
          "blocking predicate missing from the frozen list: " +
          blocker.predicate);
    }
    std::vector<uint32_t> columns;
    std::vector<ValueId> values;
    bool impossible = false;
    for (std::size_t t = 0; t < blocker.terms.size(); ++t) {
      const Term& term = blocker.terms[t];
      ValueId id;
      if (term.is_constant()) {
        if (!dict.Lookup(term.constant(), &id)) {
          impossible = true;
          break;
        }
      } else {
        auto it = binding.vars.find(term.var());
        if (it == binding.vars.end()) continue;
        id = it->second;
      }
      columns.push_back(static_cast<uint32_t>(t));
      values.push_back(id);
    }
    if (!impossible &&
        checker.HasMatchingFact(blocker.predicate, columns, values)) {
      return Status::InvalidArgument(
          "blocking atom has a matching fact in " + blocker.predicate);
    }
  }

  std::set<std::string> tainted;
  TaintAnalysis taint{checker, *checker.program_, checker.options_, dict};
  if (!taint.Compute(*channel, combo, &tainted)) {
    return Status::InvalidArgument(
        "taint closure reaches the goal (or the program is outside the "
        "analyzable family)");
  }
  std::vector<std::string> tainted_domains;
  for (const std::string& name : tainted) {
    if (taint.IsDomainPred(name)) tainted_domains.push_back(name);
  }
  if (tainted_domains != certificate.tainted_domains) {
    return Status::InvalidArgument(
        "withheld-domain set does not match the taint closure");
  }
  return Status::OK();
}

std::string RenderSkipCertificates(
    const std::vector<SkipCertificate>& certificates) {
  std::string out;
  for (const SkipCertificate& certificate : certificates) {
    out += certificate.ToString() + "\n";
  }
  return out;
}

}  // namespace limcap::analysis
