#ifndef LIMCAP_ANALYSIS_EXECUTABILITY_H_
#define LIMCAP_ANALYSIS_EXECUTABILITY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "capability/source_view.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "planner/domain_map.h"

namespace limcap::analysis {

/// Options for the executability analysis.
struct ExecutabilityOptions {
  /// Input adornments for head predicates, top-down seeds for the
  /// ordering search: for a listed predicate, the argument positions
  /// mapped `true` are considered bound on rule entry (the caller
  /// supplies the binding, like a goal invoked with its inputs). Unlisted
  /// predicates have all-free heads — the bottom-up default, where every
  /// binding must come from constants or earlier body atoms.
  std::map<std::string, std::vector<bool>> input_adornments;
};

/// Verdict for one rule.
struct RuleVerdict {
  /// A sideways-information-passing order exists: some body ordering
  /// binds every source-view atom's required-bound attributes (under at
  /// least one template) using only the head's input adornment, the
  /// rule's constants, and earlier atoms — and every non-view body
  /// predicate is producible. This is the paper's Sections 2-3 notion of
  /// an executable adorned rule.
  bool sip_executable = false;
  /// The rule can derive at least one fact in *some* source-driven
  /// evaluation: every body atom's relation can be non-empty (IDB
  /// predicates producible, view predicates fetchable). A rule with
  /// `can_fire == false` is evaluation-inert: pruning it never changes
  /// any answer (the analyzer's soundness property, asserted by the
  /// property tests).
  bool can_fire = false;
  /// A witness body ordering (body indices) when sip_executable.
  std::vector<std::size_t> sip_order;
  /// Variables bound at the ordering search's fixpoint (all rule
  /// variables when sip_executable; the maximal achievable bound set
  /// otherwise — the unbindable atoms' requirements fall outside it).
  std::set<std::string> sip_bound_variables;
  /// Body indices of source-view atoms whose binding requirements no
  /// ordering can satisfy (the LC020 findings).
  std::vector<std::size_t> unbindable_atoms;
  /// Body indices of atoms whose relation is provably always empty (the
  /// reason can_fire is false).
  std::vector<std::size_t> dead_atoms;
};

/// The program-level fixpoint result.
struct ExecutabilityResult {
  /// One verdict per program rule, in program order.
  std::vector<RuleVerdict> rules;
  /// IDB predicates with at least one sip-executable rule.
  std::set<std::string> sip_producible;
  /// Predicates that can hold at least one fact in some evaluation
  /// (IDB with a firing rule, or ground facts).
  std::set<std::string> producible;
  /// Catalog views (mentioned by the program) with at least one
  /// fetchable template — the source-driven evaluator can form at least
  /// one query for them.
  std::set<std::string> fetchable_views;
  /// Views mentioned by the program, in catalog order (the universe
  /// `fetchable_views` is judged against).
  std::vector<std::string> mentioned_views;
};

/// The adorned executability analysis (the tentpole pass): decides, for
/// every rule of `program`, whether it admits an executable
/// sideways-information-passing order and whether it can ever fire under
/// the source-driven evaluation of Section 3.3, iterated to a
/// program-level fixpoint so a rule is executable only if its feeders
/// are.
///
/// Model (mirrors exec::SourceDrivenEvaluator):
///   * a view atom's facts come from source queries the evaluator forms
///     out of the *domain predicates* of a template's bound attributes —
///     a view is fetchable iff some template has every bound attribute's
///     domain predicate producible;
///   * an IDB predicate is producible iff some rule deriving it can
///     fire; a ground fact rule always fires;
///   * a rule can fire iff every body atom can hold facts.
///
/// Soundness: `can_fire == false` implies the rule derives nothing in
/// any evaluation of the program (its facts, its queries, its answers
/// are unaffected by pruning the rule). The sip_executable verdict is
/// stricter than can_fire for rules that ride on fetches driven by
/// *other* rules' domain atoms; it is the right notion for bind-join
/// style execution and holds for every builder-generated Π(Q, V).
ExecutabilityResult AnalyzeExecutability(
    const datalog::Program& program,
    const std::vector<capability::SourceView>& views,
    const planner::DomainMap& domains,
    const ExecutabilityOptions& options = {});

/// Appends LC020/LC021/LC022/LC023 diagnostics for `result` to `bag`.
/// `source_map` (optional) supplies line numbers.
void AppendExecutabilityDiagnostics(
    const datalog::Program& program,
    const std::vector<capability::SourceView>& views,
    const ExecutabilityResult& result,
    const datalog::ProgramSourceMap* source_map, DiagnosticBag* bag);

/// The program with every rule whose verdict is `can_fire == false`
/// removed. By the soundness property this transformation preserves the
/// program's answer under source-driven evaluation; it subsumes and
/// cross-checks Section 6's RemoveUselessRules from the capability side.
datalog::Program PruneNeverFiringRules(const datalog::Program& program,
                                       const ExecutabilityResult& result);

/// Catalog-level cold-start reachability: which views could ever be
/// queried when evaluation starts with the attributes in `seeded` bound
/// (pass the query's input attributes; empty = nothing known). A view
/// becomes reachable when some template's bound attributes are all
/// seeded or delivered by free positions of already-reachable views
/// sharing the same domain. Views outside the returned set can never be
/// accessed by any query whose inputs are limited to `seeded`.
std::set<std::string> ReachableViews(
    const std::vector<capability::SourceView>& views,
    const planner::DomainMap& domains,
    const capability::AttributeSet& seeded = {});

}  // namespace limcap::analysis

#endif  // LIMCAP_ANALYSIS_EXECUTABILITY_H_
