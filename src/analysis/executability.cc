#include "analysis/executability.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace limcap::analysis {

namespace {

using capability::BindingPattern;
using capability::SourceView;
using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

/// Shared per-program context for both fixpoints.
struct Context {
  const Program* program;
  const planner::DomainMap* domains;
  const ExecutabilityOptions* options;
  /// Catalog views mentioned by the program, by predicate name.
  std::unordered_map<std::string, const SourceView*> views;

  bool IsView(const std::string& predicate) const {
    return views.count(predicate) > 0;
  }
};

/// True when template `pattern` of `view` has every bound attribute's
/// domain predicate in `producible` — the source-driven evaluator can
/// then form queries for it out of the domain relations.
bool TemplateFetchable(const SourceView& view, const BindingPattern& pattern,
                       const planner::DomainMap& domains,
                       const std::set<std::string>& producible) {
  for (std::size_t i : pattern.BoundPositions()) {
    if (producible.count(domains.DomainOf(view.schema().attribute(i))) == 0) {
      return false;
    }
  }
  return true;
}

bool ViewFetchable(const SourceView& view, const planner::DomainMap& domains,
                   const std::set<std::string>& producible) {
  for (const BindingPattern& pattern : view.templates()) {
    if (TemplateFetchable(view, pattern, domains, producible)) return true;
  }
  return false;
}

/// The variables a head's input adornment binds on rule entry.
std::unordered_set<std::string> AdornedHeadVars(
    const Rule& rule, const ExecutabilityOptions& options) {
  std::unordered_set<std::string> bound;
  auto it = options.input_adornments.find(rule.head.predicate);
  if (it == options.input_adornments.end()) return bound;
  const std::vector<bool>& adornment = it->second;
  for (std::size_t i = 0;
       i < rule.head.terms.size() && i < adornment.size(); ++i) {
    if (adornment[i] && rule.head.terms[i].is_variable()) {
      bound.insert(rule.head.terms[i].var());
    }
  }
  return bound;
}

/// True when some template of `view` has all its bound positions covered
/// by constants of `atom` or variables in `bound`.
bool AtomBindable(const Atom& atom, const SourceView& view,
                  const std::unordered_set<std::string>& bound) {
  for (const BindingPattern& pattern : view.templates()) {
    bool ok = true;
    for (std::size_t i : pattern.BoundPositions()) {
      if (i >= atom.terms.size()) {  // arity mismatch; flagged by LC010
        ok = false;
        break;
      }
      const Term& term = atom.terms[i];
      if (term.is_constant()) continue;
      if (bound.count(term.var()) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

/// Greedy sideways-information-passing search for one rule: repeatedly
/// places any placeable body atom (placing only grows the bound-variable
/// set, so placeability is monotone and greedy placement finds an
/// executable ordering iff one exists). Returns true when every atom was
/// placed; `order` receives the witness ordering and `bound` the final
/// bound-variable set either way.
bool GreedySipSearch(const Context& ctx, const Rule& rule,
                     const std::set<std::string>& sip_producible,
                     std::vector<std::size_t>* order,
                     std::unordered_set<std::string>* bound) {
  order->clear();
  *bound = AdornedHeadVars(rule, *ctx.options);
  std::vector<bool> placed(rule.body.size(), false);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (placed[i]) continue;
      const Atom& atom = rule.body[i];
      auto view_it = ctx.views.find(atom.predicate);
      bool placeable;
      if (view_it != ctx.views.end()) {
        placeable = sip_producible.count(atom.predicate) > 0 ||
                    AtomBindable(atom, *view_it->second, *bound);
      } else {
        placeable = sip_producible.count(atom.predicate) > 0;
      }
      if (!placeable) continue;
      placed[i] = true;
      order->push_back(i);
      for (const Term& term : atom.terms) {
        if (term.is_variable()) bound->insert(term.var());
      }
      progressed = true;
    }
  }
  return order->size() == rule.body.size();
}

/// Whether the rule can fire under source-driven evaluation with the
/// given producible/fetchable sets; fills `dead_atoms` with the body
/// indices whose relation is provably always empty.
bool RuleCanFire(const Context& ctx, const Rule& rule,
                 const std::set<std::string>& producible,
                 const std::set<std::string>& fetchable,
                 std::vector<std::size_t>* dead_atoms) {
  if (dead_atoms != nullptr) dead_atoms->clear();
  bool fires = true;
  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& atom = rule.body[i];
    bool alive = producible.count(atom.predicate) > 0 ||
                 (ctx.IsView(atom.predicate) &&
                  fetchable.count(atom.predicate) > 0);
    if (alive) continue;
    fires = false;
    if (dead_atoms == nullptr) return false;
    dead_atoms->push_back(i);
  }
  return fires;
}

}  // namespace

ExecutabilityResult AnalyzeExecutability(const Program& program,
                                         const std::vector<SourceView>& views,
                                         const planner::DomainMap& domains,
                                         const ExecutabilityOptions& options) {
  Context ctx;
  ctx.program = &program;
  ctx.domains = &domains;
  ctx.options = &options;

  ExecutabilityResult result;
  std::set<std::string> mentioned = program.AllPredicates();
  for (const SourceView& view : views) {
    if (mentioned.count(view.name()) == 0) continue;
    ctx.views.emplace(view.name(), &view);
    result.mentioned_views.push_back(view.name());
  }

  const std::vector<Rule>& rules = program.rules();
  result.rules.resize(rules.size());

  // Fixpoint 1 — can_fire / producible / fetchable (the evaluator-sound
  // semantics used for pruning). Firing is monotone in (producible,
  // fetchable), both of which only grow, so each rule is re-examined
  // only until it first fires.
  {
    std::vector<bool> fires(rules.size(), false);
    bool changed = true;
    while (changed) {
      changed = false;
      result.fetchable_views.clear();
      for (const auto& [name, view] : ctx.views) {
        if (ViewFetchable(*view, domains, result.producible)) {
          result.fetchable_views.insert(name);
        }
      }
      for (std::size_t r = 0; r < rules.size(); ++r) {
        if (fires[r]) continue;
        if (!RuleCanFire(ctx, rules[r], result.producible,
                         result.fetchable_views, nullptr)) {
          continue;
        }
        fires[r] = true;
        changed |= result.producible.insert(rules[r].head.predicate).second;
        // A newly firing rule matters even when its head predicate was
        // already producible only for its own verdict, which `fires`
        // already records.
      }
    }
    for (std::size_t r = 0; r < rules.size(); ++r) {
      result.rules[r].can_fire = fires[r];
      if (!fires[r]) {
        RuleCanFire(ctx, rules[r], result.producible, result.fetchable_views,
                    &result.rules[r].dead_atoms);
      }
    }
  }

  // Fixpoint 2 — sip_executable / sip_producible (the adorned
  // sideways-information-passing semantics of Sections 2-3: each rule
  // must carry its own bindings). Same monotone structure.
  {
    std::vector<bool> executable(rules.size(), false);
    std::vector<std::size_t> order;
    std::unordered_set<std::string> bound;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t r = 0; r < rules.size(); ++r) {
        if (executable[r]) continue;
        if (!GreedySipSearch(ctx, rules[r], result.sip_producible, &order,
                             &bound)) {
          continue;
        }
        executable[r] = true;
        result.sip_producible.insert(rules[r].head.predicate);
        changed = true;
      }
    }
    for (std::size_t r = 0; r < rules.size(); ++r) {
      RuleVerdict& verdict = result.rules[r];
      verdict.sip_executable = executable[r];
      // Re-run at the final fixpoint for the witness ordering (or, on
      // failure, the stuck atoms at the maximal bound set).
      GreedySipSearch(ctx, rules[r], result.sip_producible, &verdict.sip_order,
                      &bound);
      verdict.sip_bound_variables.insert(bound.begin(), bound.end());
      if (executable[r]) continue;
      std::vector<bool> placed(rules[r].body.size(), false);
      for (std::size_t i : verdict.sip_order) placed[i] = true;
      for (std::size_t i = 0; i < rules[r].body.size(); ++i) {
        if (placed[i]) continue;
        const Atom& atom = rules[r].body[i];
        auto view_it = ctx.views.find(atom.predicate);
        if (view_it == ctx.views.end()) continue;
        if (!AtomBindable(atom, *view_it->second, bound)) {
          verdict.unbindable_atoms.push_back(i);
        }
      }
    }
  }

  return result;
}

void AppendExecutabilityDiagnostics(const Program& program,
                                    const std::vector<SourceView>& views,
                                    const ExecutabilityResult& result,
                                    const datalog::ProgramSourceMap* source_map,
                                    DiagnosticBag* bag) {
  std::unordered_map<std::string, const SourceView*> view_by_name;
  for (const SourceView& view : views) view_by_name.emplace(view.name(), &view);

  auto rule_location = [&](std::size_t r, int atom) {
    Location location;
    location.rule = static_cast<int>(r);
    location.atom = atom;
    if (source_map != nullptr && r < source_map->rules.size()) {
      const datalog::RuleSpan& span = source_map->rules[r];
      const datalog::SourceSpan& pos =
          atom != Location::kNone &&
                  static_cast<std::size_t>(atom) < span.body.size()
              ? span.body[atom]
              : span.rule;
      location.line = pos.line;
      location.column = pos.column;
    }
    location.context = program.rules()[r].ToString();
    return location;
  };

  // LC023 — views the program mentions that can never be queried.
  for (const std::string& name : result.mentioned_views) {
    if (result.fetchable_views.count(name) > 0) continue;
    const SourceView& view = *view_by_name.at(name);
    Diagnostic& d = bag->Report(
        Code::kUnfetchableView,
        "source view '" + view.ToString() +
            "' can never be queried: every template has a required-bound "
            "attribute whose domain predicate is never populated");
    d.location.context = view.ToString();
  }

  // LC022 — IDB predicates none of whose rules can fire.
  {
    std::map<std::string, std::size_t> rule_counts;
    for (const datalog::Rule& rule : program.rules()) {
      ++rule_counts[rule.head.predicate];
    }
    for (const auto& [predicate, count] : rule_counts) {
      if (result.producible.count(predicate) > 0) continue;
      bag->Report(Code::kUnproduciblePredicate,
                  "predicate '" + predicate + "' is never derivable: none of " +
                      "its " + std::to_string(count) + " rule(s) can fire");
    }
  }

  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    const RuleVerdict& verdict = result.rules[r];
    const datalog::Rule& rule = program.rules()[r];

    // LC020 — view atoms no ordering can bind.
    for (std::size_t i : verdict.unbindable_atoms) {
      const Atom& atom = rule.body[i];
      auto it = view_by_name.find(atom.predicate);
      Diagnostic& d = bag->Report(
          Code::kUnbindableViewAtom,
          "no body ordering binds the required attributes of source-view "
          "atom '" +
              atom.ToString() + "'",
          rule_location(r, static_cast<int>(i)));
      if (it != view_by_name.end()) {
        const SourceView& view = *it->second;
        for (std::size_t t = 0; t < view.templates().size(); ++t) {
          const BindingPattern& pattern = view.templates()[t];
          std::vector<std::string> missing;
          for (std::size_t pos : pattern.BoundPositions()) {
            if (pos < atom.terms.size()) {
              const Term& term = atom.terms[pos];
              if (term.is_constant()) continue;
              if (verdict.sip_bound_variables.count(term.var()) > 0) continue;
            }
            missing.push_back(view.schema().attribute(pos));
          }
          d.notes.push_back(
              "template '" + pattern.ToString() + "' requires {" +
              Join(missing, ", ") +
              "} bound, and no ordering of the other body atoms binds them");
        }
      }
    }

    // LC021 — rules that can never fire.
    if (!verdict.can_fire) {
      Diagnostic& d =
          bag->Report(Code::kRuleNeverFires,
                      "rule for '" + rule.head.predicate +
                          "' can never fire; pruning it cannot change any "
                          "answer",
                      rule_location(r, Location::kNone));
      for (std::size_t i : verdict.dead_atoms) {
        const Atom& atom = rule.body[i];
        d.notes.push_back(
            "body atom '" + atom.ToString() + "' is always empty (" +
            (result.fetchable_views.count(atom.predicate) == 0 &&
                     view_by_name.count(atom.predicate) > 0
                 ? "the view can never be queried"
                 : "the predicate is never derivable") +
            ")");
      }
    }
  }
}

datalog::Program PruneNeverFiringRules(const Program& program,
                                       const ExecutabilityResult& result) {
  Program pruned;
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    if (r < result.rules.size() && !result.rules[r].can_fire) continue;
    pruned.AddRule(program.rules()[r]);
  }
  return pruned;
}

std::set<std::string> ReachableViews(const std::vector<SourceView>& views,
                                     const planner::DomainMap& domains,
                                     const capability::AttributeSet& seeded) {
  std::set<std::string> available;  // populated domain predicates
  for (const std::string& attribute : seeded) {
    available.insert(domains.DomainOf(attribute));
  }
  std::set<std::string> reachable;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SourceView& view : views) {
      for (const BindingPattern& pattern : view.templates()) {
        if (!TemplateFetchable(view, pattern, domains, available)) continue;
        changed |= reachable.insert(view.name()).second;
        // The answered tuples populate the domains of the template's
        // free positions (the builder's domain rules).
        for (std::size_t i : pattern.FreePositions()) {
          changed |=
              available.insert(domains.DomainOf(view.schema().attribute(i)))
                  .second;
        }
      }
    }
  }
  return reachable;
}

}  // namespace limcap::analysis
